"""Win32 Process Primitives (38 MuTs).

Crash mechanics reproduced here (paper Table 3 / Listing 1):

* ``GetThreadContext`` writes the CONTEXT through the caller pointer in
  kernel mode, unprotected on Windows 95/98/98 SE/CE -- so the paper's
  Listing 1, ``GetThreadContext(GetCurrentThread(), NULL)``, crashes
  those variants on the very first call.
* ``MsgWaitForMultipleObjects`` reads the handle array in kernel mode,
  unprotected on 9x/CE; the ``Ex`` variant corrupts on 98/98 SE.
* ``CreateThread`` writes the thread id back through ``lpThreadId``,
  misdirected into the shared arena on 98 SE and CE (``*CreateThread``).
* ``ReadProcessMemory`` misdirects its destination-buffer write on 95
  and CE.
* The ``Interlocked*`` family is kernel-assisted on Windows CE (no
  atomic CPU instructions on its cores), so a bad pointer there is a
  kernel-mode access -- corrupting shared state (Table 3's CE entries).
"""

from __future__ import annotations

from repro.sim.guarded import crt_read, crt_write
from repro.win32 import errors as W

_U32 = 0xFFFF_FFFF
INFINITE = 0xFFFF_FFFF
STILL_ACTIVE = 259
CONTEXT_SIZE = 64
ERROR_NOT_OWNER = 288


class ProcessApiMixin:
    """Processes, threads, synchronisation, and atomic primitives."""

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def CreateProcessA(
        self,
        lpApplicationName: int,
        lpCommandLine: int,
        lpProcessAttributes: int,
        lpThreadAttributes: int,
        bInheritHandles: int,
        dwCreationFlags: int,
        lpEnvironment: int,
        lpCurrentDirectory: int,
        lpStartupInfo: int,
        lpProcessInformation: int,
    ) -> int:
        from repro.sim.objects import ProcessObject

        application = self._scan_string(lpApplicationName) if lpApplicationName else ""
        command = self._scan_string(lpCommandLine) if lpCommandLine else ""
        if not application and not command:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if not self._read_security_attributes(lpProcessAttributes):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if not self._read_security_attributes(lpThreadAttributes):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if lpCurrentDirectory:
            directory = self._scan_string(lpCurrentDirectory)
            node = self.machine.fs.lookup(directory)
            if node is None or not node.is_directory:
                return self.fail(W.ERROR_PATH_NOT_FOUND)
        if lpStartupInfo == 0:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        self.mem.read_u32(lpStartupInfo)  # user-mode STARTUPINFO pickup (cb)
        image = application or command.split(" ", 1)[0]
        if self.machine.fs.lookup(image) is None:
            return self.fail(W.ERROR_FILE_NOT_FOUND)
        child = ProcessObject(self.process.pid + 1, name=image)
        thread = self.process.spawn_thread()
        process_handle = self.process.handles.insert(child)
        thread_handle = self.process.handles.insert(thread)
        info = (
            process_handle.to_bytes(4, "little")
            + thread_handle.to_bytes(4, "little")
            + child.pid.to_bytes(4, "little")
            + thread.tid.to_bytes(4, "little")
        )
        if not self.copy_out("CreateProcessA", lpProcessInformation, info):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def OpenProcess(self, dwDesiredAccess: int, bInheritHandle: int, dwProcessId: int) -> int:
        if (dwProcessId & _U32) == self.process.pid:
            return self.process.handles.insert(self.process.kernel_object)
        return self.fail(W.ERROR_INVALID_PARAMETER)

    def TerminateProcess(self, hProcess: int, uExitCode: int) -> int:
        target = self._process_or_fail(hProcess)
        if target is None:
            return 1 if self.lax_handles else 0
        target.exit_code = uExitCode & _U32
        target.signaled = True
        return 1

    def GetExitCodeProcess(self, hProcess: int, lpExitCode: int) -> int:
        target = self._process_or_fail(hProcess)
        if target is None:
            return 1 if self.lax_handles else 0
        code = STILL_ACTIVE if target.exit_code is None else target.exit_code
        if not self.copy_out(
            "GetExitCodeProcess", lpExitCode, code.to_bytes(4, "little")
        ):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def GetPriorityClass(self, hProcess: int) -> int:
        target = self._process_or_fail(hProcess)
        if target is None:
            return 0x20 if self.lax_handles else 0
        return 0x20  # NORMAL_PRIORITY_CLASS

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def CreateThread(
        self,
        lpThreadAttributes: int,
        dwStackSize: int,
        lpStartAddress: int,
        lpParameter: int,
        dwCreationFlags: int,
        lpThreadId: int,
    ) -> int:
        if not self._read_security_attributes(lpThreadAttributes):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if not self._flags_valid(dwCreationFlags, 0x0001_0004):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if (dwStackSize & _U32) > 0x0400_0000:
            return self.fail(W.ERROR_NOT_ENOUGH_MEMORY)
        # A bogus start address is accepted -- the thread would crash
        # later, which is precisely a Silent robustness failure here.
        thread = self.process.spawn_thread(
            suspended=bool(dwCreationFlags & 0x4)
        )
        thread.context["eip"] = lpStartAddress & _U32
        handle = self.process.handles.insert(thread)
        if lpThreadId:
            # Kernel writes the new thread id back: misdirected into the
            # shared arena on Windows 98 SE and CE (*CreateThread).
            if not self.copy_out(
                "CreateThread", lpThreadId, thread.tid.to_bytes(4, "little")
            ):
                self.process.handles.close(handle)
                return self.fail(W.ERROR_NOACCESS)
        return handle

    def TerminateThread(self, hThread: int, dwExitCode: int) -> int:
        thread = self._thread_or_fail(hThread)
        if thread is None:
            return 1 if self.lax_handles else 0
        thread.exit_code = dwExitCode & _U32
        thread.signaled = True
        return 1

    def SuspendThread(self, hThread: int) -> int:
        thread = self._thread_or_fail(hThread)
        if thread is None:
            return 0 if self.lax_handles else _U32
        previous = thread.suspend_count
        thread.suspend_count += 1
        return previous

    def ResumeThread(self, hThread: int) -> int:
        thread = self._thread_or_fail(hThread)
        if thread is None:
            return 0 if self.lax_handles else _U32
        previous = thread.suspend_count
        if thread.suspend_count > 0:
            thread.suspend_count -= 1
        return previous

    def GetExitCodeThread(self, hThread: int, lpExitCode: int) -> int:
        thread = self._thread_or_fail(hThread)
        if thread is None:
            return 1 if self.lax_handles else 0
        code = STILL_ACTIVE if thread.exit_code is None else thread.exit_code
        if not self.copy_out(
            "GetExitCodeThread", lpExitCode, code.to_bytes(4, "little")
        ):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def GetThreadPriority(self, hThread: int) -> int:
        thread = self._thread_or_fail(hThread)
        if thread is None:
            return 0 if self.lax_handles else 0x7FFF_FFFF  # THREAD_PRIORITY_ERROR_RETURN
        return 0  # THREAD_PRIORITY_NORMAL

    def SetThreadPriority(self, hThread: int, nPriority: int) -> int:
        thread = self._thread_or_fail(hThread)
        if thread is None:
            return 1 if self.lax_handles else 0
        if nPriority not in (-15, -2, -1, 0, 1, 2, 15):
            if not self.personality.lax_flag_validation:
                return self.fail(W.ERROR_INVALID_PARAMETER)
        return 1

    def SetThreadAffinityMask(self, hThread: int, dwThreadAffinityMask: int) -> int:
        thread = self._thread_or_fail(hThread)
        if thread is None:
            return 1 if self.lax_handles else 0
        if (dwThreadAffinityMask & _U32) == 0:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        return 1

    # ------------------------------------------------------------------
    # Thread contexts (Listing 1)
    # ------------------------------------------------------------------

    _CONTEXT_REGS = (
        "eax", "ebx", "ecx", "edx", "esi", "edi",
        "ebp", "esp", "eip", "eflags",
    )

    def GetThreadContext(self, hThread: int, lpContext: int) -> int:
        thread = self._thread_or_fail(hThread)
        if thread is None:
            return 1 if self.lax_handles else 0
        blob = bytearray(CONTEXT_SIZE)
        blob[0:4] = (0x1003F).to_bytes(4, "little")  # ContextFlags FULL
        for index, reg in enumerate(self._CONTEXT_REGS):
            offset = 4 + index * 4
            blob[offset : offset + 4] = (thread.context[reg] & _U32).to_bytes(
                4, "little"
            )
        # The kernel writes the CONTEXT through the caller pointer:
        # unprotected on Windows 95/98/98 SE/CE (paper Listing 1).
        if not self.copy_out("GetThreadContext", lpContext, bytes(blob)):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def SetThreadContext(self, hThread: int, lpContext: int) -> int:
        thread = self._thread_or_fail(hThread)
        if thread is None:
            return 1 if self.lax_handles else 0
        raw = self.copy_in("SetThreadContext", lpContext, CONTEXT_SIZE)
        if raw is None:
            return self.fail(W.ERROR_NOACCESS)
        for index, reg in enumerate(self._CONTEXT_REGS):
            offset = 4 + index * 4
            thread.context[reg] = int.from_bytes(raw[offset : offset + 4], "little")
        return 1

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------

    def _consume_wait(self, obj) -> None:
        """Take ownership/decrement for auto-reset waitables."""
        from repro.sim.objects import EventObject, MutexObject, SemaphoreObject

        if isinstance(obj, EventObject) and not obj.manual_reset:
            obj.signaled = False
        elif isinstance(obj, MutexObject):
            obj.owner_tid = self.process.main_thread.tid
            obj.recursion += 1
            obj.signaled = False
        elif isinstance(obj, SemaphoreObject):
            obj.count -= 1
            obj.signaled = obj.count > 0

    def _wait_single(self, obj, dwMilliseconds: int) -> int:
        if obj.signaled:
            self._consume_wait(obj)
            return W.WAIT_OBJECT_0
        timeout = dwMilliseconds & _U32
        if timeout == INFINITE:
            self.machine.clock.block_forever()
        self.machine.clock.advance(timeout)
        return W.WAIT_TIMEOUT

    def WaitForSingleObject(self, hHandle: int, dwMilliseconds: int) -> int:
        obj = self.object_or_fail(hHandle)
        if obj is None:
            return W.WAIT_OBJECT_0 if self.lax_handles else W.WAIT_FAILED
        return self._wait_single(obj, dwMilliseconds)

    def _read_handle_array(self, func: str, nCount: int, lpHandles: int):
        """Kernel-mode pickup of the handle array (unprotected on 9x/CE
        for the MsgWait* entry points)."""
        raw = self.copy_in(func, lpHandles, 4 * nCount)
        if raw is None:
            return None
        return [
            int.from_bytes(raw[i : i + 4], "little") for i in range(0, len(raw), 4)
        ]

    def _wait_multiple(
        self, func: str, nCount: int, lpHandles: int, bWaitAll: int, timeout: int
    ) -> int:
        nCount &= _U32
        if nCount == 0 or nCount > 64:
            return self.fail(W.ERROR_INVALID_PARAMETER, ret=W.WAIT_FAILED)
        handles = self._read_handle_array(func, nCount, lpHandles)
        if handles is None:
            return self.fail(W.ERROR_NOACCESS, ret=W.WAIT_FAILED)
        objects = []
        for handle in handles:
            obj = self.object_or_fail(handle)
            if obj is None:
                if self.lax_handles:
                    return W.WAIT_OBJECT_0
                return self.fail(W.ERROR_INVALID_HANDLE, ret=W.WAIT_FAILED)
            objects.append(obj)
        signaled = [i for i, obj in enumerate(objects) if obj.signaled]
        satisfied = len(signaled) == len(objects) if bWaitAll else bool(signaled)
        if satisfied:
            for index in signaled:
                self._consume_wait(objects[index])
            return W.WAIT_OBJECT_0 + (0 if bWaitAll else signaled[0])
        timeout &= _U32
        if timeout == INFINITE:
            self.machine.clock.block_forever()
        self.machine.clock.advance(timeout)
        return W.WAIT_TIMEOUT

    def WaitForMultipleObjects(
        self, nCount: int, lpHandles: int, bWaitAll: int, dwMilliseconds: int
    ) -> int:
        return self._wait_multiple(
            "WaitForMultipleObjects", nCount, lpHandles, bWaitAll, dwMilliseconds
        )

    def MsgWaitForMultipleObjects(
        self,
        nCount: int,
        pHandles: int,
        fWaitAll: int,
        dwMilliseconds: int,
        dwWakeMask: int,
    ) -> int:
        if not self._flags_valid(dwWakeMask, 0x04FF):
            return self.fail(W.ERROR_INVALID_PARAMETER, ret=W.WAIT_FAILED)
        return self._wait_multiple(
            "MsgWaitForMultipleObjects", nCount, pHandles, fWaitAll, dwMilliseconds
        )

    def MsgWaitForMultipleObjectsEx(
        self,
        nCount: int,
        pHandles: int,
        dwMilliseconds: int,
        dwWakeMask: int,
        dwFlags: int,
    ) -> int:
        # The Ex entry point marshals the handle array before validating
        # the wake mask and flags -- which is exactly why its misdirected
        # array pickup could corrupt 98/98 SE even with bogus flags.
        nCount &= _U32
        if nCount == 0 or nCount > 64:
            return self.fail(W.ERROR_INVALID_PARAMETER, ret=W.WAIT_FAILED)
        handles = self._read_handle_array(
            "MsgWaitForMultipleObjectsEx", nCount, pHandles
        )
        if handles is None:
            return self.fail(W.ERROR_NOACCESS, ret=W.WAIT_FAILED)
        if not self._flags_valid(dwWakeMask, 0x04FF) or not self._flags_valid(
            dwFlags, 0x6
        ):
            return self.fail(W.ERROR_INVALID_PARAMETER, ret=W.WAIT_FAILED)
        return self._wait_multiple(
            "MsgWaitForMultipleObjectsEx", nCount, pHandles, 0, dwMilliseconds
        )

    def SignalObjectAndWait(
        self, hObjectToSignal: int, hObjectToWaitOn: int, dwMilliseconds: int, bAlertable: int
    ) -> int:
        from repro.sim.objects import EventObject, MutexObject, SemaphoreObject

        to_signal = self.object_or_fail(hObjectToSignal)
        if to_signal is None:
            return W.WAIT_OBJECT_0 if self.lax_handles else W.WAIT_FAILED
        if not isinstance(to_signal, (EventObject, MutexObject, SemaphoreObject)):
            return self.fail(W.ERROR_INVALID_HANDLE, ret=W.WAIT_FAILED)
        to_wait = self.object_or_fail(hObjectToWaitOn)
        if to_wait is None:
            return W.WAIT_OBJECT_0 if self.lax_handles else W.WAIT_FAILED
        to_signal.signaled = True
        return self._wait_single(to_wait, dwMilliseconds)

    # ------------------------------------------------------------------
    # Events / mutexes / semaphores / timers
    # ------------------------------------------------------------------

    def CreateEventA(
        self, lpEventAttributes: int, bManualReset: int, bInitialState: int, lpName: int
    ) -> int:
        from repro.sim.objects import EventObject

        if not self._read_security_attributes(lpEventAttributes):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        name = self._scan_string(lpName) if lpName else None
        event = EventObject(bool(bManualReset), bool(bInitialState), name=name)
        return self.process.handles.insert(event)

    def _event_or_fail(self, hEvent: int):
        from repro.sim.objects import EventObject

        return self.object_or_fail(hEvent, EventObject)

    def SetEvent(self, hEvent: int) -> int:
        event = self._event_or_fail(hEvent)
        if event is None:
            return 1 if self.lax_handles else 0
        event.signaled = True
        return 1

    def ResetEvent(self, hEvent: int) -> int:
        event = self._event_or_fail(hEvent)
        if event is None:
            return 1 if self.lax_handles else 0
        event.signaled = False
        return 1

    def PulseEvent(self, hEvent: int) -> int:
        event = self._event_or_fail(hEvent)
        if event is None:
            return 1 if self.lax_handles else 0
        event.signaled = False
        return 1

    def OpenEventA(self, dwDesiredAccess: int, bInheritHandle: int, lpName: int) -> int:
        if lpName == 0:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        self._scan_string(lpName)
        return self.fail(W.ERROR_FILE_NOT_FOUND)  # no named objects exist

    def CreateMutexA(
        self, lpMutexAttributes: int, bInitialOwner: int, lpName: int
    ) -> int:
        from repro.sim.objects import MutexObject

        if not self._read_security_attributes(lpMutexAttributes):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if lpName:
            self._scan_string(lpName)
        mutex = MutexObject(bool(bInitialOwner))
        if bInitialOwner:
            mutex.owner_tid = self.process.main_thread.tid
        return self.process.handles.insert(mutex)

    def ReleaseMutex(self, hMutex: int) -> int:
        from repro.sim.objects import MutexObject

        mutex = self.object_or_fail(hMutex, MutexObject)
        if mutex is None:
            return 1 if self.lax_handles else 0
        if mutex.owner_tid != self.process.main_thread.tid:
            return self.fail(ERROR_NOT_OWNER)
        mutex.recursion -= 1
        if mutex.recursion <= 0:
            mutex.owner_tid = None
            mutex.signaled = True
        return 1

    def CreateSemaphoreA(
        self, lpSemaphoreAttributes: int, lInitialCount: int, lMaximumCount: int, lpName: int
    ) -> int:
        from repro.sim.objects import SemaphoreObject

        if not self._read_security_attributes(lpSemaphoreAttributes):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if lMaximumCount <= 0 or lInitialCount < 0 or lInitialCount > lMaximumCount:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if lpName:
            self._scan_string(lpName)
        return self.process.handles.insert(
            SemaphoreObject(lInitialCount, lMaximumCount)
        )

    def ReleaseSemaphore(
        self, hSemaphore: int, lReleaseCount: int, lpPreviousCount: int
    ) -> int:
        from repro.sim.objects import SemaphoreObject

        semaphore = self.object_or_fail(hSemaphore, SemaphoreObject)
        if semaphore is None:
            return 1 if self.lax_handles else 0
        if lReleaseCount <= 0:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if semaphore.count + lReleaseCount > semaphore.maximum:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if lpPreviousCount and not self.copy_out(
            "ReleaseSemaphore", lpPreviousCount, semaphore.count.to_bytes(4, "little")
        ):
            return self.fail(W.ERROR_NOACCESS)
        semaphore.count += lReleaseCount
        semaphore.signaled = True
        return 1

    def CreateWaitableTimerA(
        self, lpTimerAttributes: int, bManualReset: int, lpTimerName: int
    ) -> int:
        from repro.sim.objects import EventObject

        if not self._read_security_attributes(lpTimerAttributes):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if lpTimerName:
            self._scan_string(lpTimerName)
        timer = EventObject(bool(bManualReset), initial_state=False)
        timer.kind = "timer"
        return self.process.handles.insert(timer)

    # ------------------------------------------------------------------
    # Sleeping
    # ------------------------------------------------------------------

    def Sleep(self, dwMilliseconds: int) -> int:
        timeout = dwMilliseconds & _U32
        if timeout == INFINITE:
            self.machine.clock.block_forever()
        self.machine.clock.advance(timeout)
        return 0

    def SleepEx(self, dwMilliseconds: int, bAlertable: int) -> int:
        return self.Sleep(dwMilliseconds)

    # ------------------------------------------------------------------
    # Interlocked operations (kernel-assisted on Windows CE)
    # ------------------------------------------------------------------

    def _interlocked_read(self, func: str, address: int) -> int | None:
        raw = crt_read(self.machine, self.mem, func, address, 4)
        return None if raw is None else int.from_bytes(raw, "little")

    def _interlocked_write(self, func: str, address: int, value: int) -> bool:
        return crt_write(
            self.machine, self.mem, func, address, (value & _U32).to_bytes(4, "little")
        )

    def InterlockedIncrement(self, lpAddend: int) -> int:
        value = self._interlocked_read("InterlockedIncrement", lpAddend)
        if value is None:
            return 0
        value = (value + 1) & _U32
        self._interlocked_write("InterlockedIncrement", lpAddend, value)
        return value

    def InterlockedDecrement(self, lpAddend: int) -> int:
        value = self._interlocked_read("InterlockedDecrement", lpAddend)
        if value is None:
            return 0
        value = (value - 1) & _U32
        self._interlocked_write("InterlockedDecrement", lpAddend, value)
        return value

    def InterlockedExchange(self, lpTarget: int, lValue: int) -> int:
        value = self._interlocked_read("InterlockedExchange", lpTarget)
        if value is None:
            return 0
        self._interlocked_write("InterlockedExchange", lpTarget, lValue)
        return value

    def InterlockedCompareExchange(
        self, lpDestination: int, lExchange: int, lComparand: int
    ) -> int:
        value = self._interlocked_read("InterlockedCompareExchange", lpDestination)
        if value is None:
            return 0
        if value == (lComparand & _U32):
            self._interlocked_write(
                "InterlockedCompareExchange", lpDestination, lExchange
            )
        return value

    # ------------------------------------------------------------------
    # Cross-process memory
    # ------------------------------------------------------------------

    def ReadProcessMemory(
        self,
        hProcess: int,
        lpBaseAddress: int,
        lpBuffer: int,
        nSize: int,
        lpNumberOfBytesRead: int,
    ) -> int:
        target = self._process_or_fail(hProcess)
        if target is None:
            return 1 if self.lax_handles else 0
        count = min(nSize & _U32, 1 << 16)
        data = self.copy_in("ReadProcessMemory", lpBaseAddress, count)
        if data is None:
            return self.fail(W.ERROR_NOACCESS)
        # Destination write: misdirected into the shared arena on
        # Windows 95 and CE (*ReadProcessMemory).
        if not self.copy_out("ReadProcessMemory", lpBuffer, data):
            return self.fail(W.ERROR_NOACCESS)
        if lpNumberOfBytesRead and not self.copy_out(
            "ReadProcessMemory", lpNumberOfBytesRead, len(data).to_bytes(4, "little")
        ):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def WriteProcessMemory(
        self,
        hProcess: int,
        lpBaseAddress: int,
        lpBuffer: int,
        nSize: int,
        lpNumberOfBytesWritten: int,
    ) -> int:
        target = self._process_or_fail(hProcess)
        if target is None:
            return 1 if self.lax_handles else 0
        count = min(nSize & _U32, 1 << 16)
        data = self.copy_in("WriteProcessMemory", lpBuffer, count)
        if data is None:
            return self.fail(W.ERROR_NOACCESS)
        if not self.copy_out("WriteProcessMemory", lpBaseAddress, data):
            return self.fail(W.ERROR_NOACCESS)
        if lpNumberOfBytesWritten and not self.copy_out(
            "WriteProcessMemory",
            lpNumberOfBytesWritten,
            len(data).to_bytes(4, "little"),
        ):
            return self.fail(W.ERROR_NOACCESS)
        return 1
