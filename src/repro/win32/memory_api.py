"""Win32 Memory Management API (20 MuTs).

Crash mechanics reproduced here:

* ``HeapCreate`` on Windows 95 (Table 3): 9x heap arenas are carved out
  of the shared system arena; an exceptional initial size places the
  arena header outside the shared mapping, and the 95 kernel writes it
  unprotected (RAW) -- immediate crash.  Windows 98 probes that
  particular path (the paper found the bug fixed), NT keeps heaps in
  private memory.
* ``VirtualAlloc`` on Windows CE (Table 3): with a single shared address
  space, an explicit ``lpAddress`` indexes the system page tables that
  live in shared memory; exceptional addresses index off their end.
"""

from __future__ import annotations

from repro.sim.errors import ResourceExhausted
from repro.win32 import errors as W

_U32 = 0xFFFF_FFFF

MEM_COMMIT = 0x1000
MEM_RESERVE = 0x2000
MEM_RELEASE = 0x8000
MEM_DECOMMIT = 0x4000

PAGE_FLAG_TO_PROTECTION = {
    0x01: 0,  # PAGE_NOACCESS
    0x02: 1,  # PAGE_READONLY
    0x04: 3,  # PAGE_READWRITE
    0x10: 5,  # PAGE_EXECUTE... (mapped to READ|EXECUTE)
    0x20: 5,
    0x40: 7,  # PAGE_EXECUTE_READWRITE
}

#: Largest single allocation the simulated kernel will grant.
MAX_VIRTUAL_ALLOC = 0x40_0000


class MemoryApiMixin:
    """VirtualAlloc/Heap*/Global*/Local* families."""

    # ------------------------------------------------------------------
    # Virtual memory
    # ------------------------------------------------------------------

    def VirtualAlloc(
        self, lpAddress: int, dwSize: int, flAllocationType: int, flProtect: int
    ) -> int:
        from repro.sim.memory import Protection

        dwSize &= _U32
        if not self._flags_valid(flAllocationType, 0xFFF000) or (
            flAllocationType & (MEM_COMMIT | MEM_RESERVE)
        ) == 0:
            if not self.personality.lax_flag_validation:
                return self.fail(W.ERROR_INVALID_PARAMETER)
        if flProtect not in PAGE_FLAG_TO_PROTECTION:
            if not self.personality.lax_flag_validation:
                return self.fail(W.ERROR_INVALID_PARAMETER)
            flProtect = 0x04
        if dwSize == 0 or dwSize > MAX_VIRTUAL_ALLOC:
            return self.fail(
                W.ERROR_INVALID_PARAMETER if dwSize == 0 else W.ERROR_NOT_ENOUGH_MEMORY
            )
        if lpAddress and self.machine.shared_region is not None:
            # Windows CE: page tables live in the shared address space;
            # an explicit placement address indexes them directly.
            table_offset = ((lpAddress & _U32) >> 12) * 4
            if not self.copy_out(
                "VirtualAlloc",
                self.machine.shared_region.start + table_offset,
                (1).to_bytes(4, "little"),
            ):
                return self.fail(W.ERROR_INVALID_ADDRESS)
        protection = Protection(PAGE_FLAG_TO_PROTECTION[flProtect] or 1)
        try:
            region = self.mem.map(dwSize, protection, tag="virtual")
        except ResourceExhausted:
            return self.fail(W.ERROR_NOT_ENOUGH_MEMORY)
        return region.start

    def VirtualFree(self, lpAddress: int, dwSize: int, dwFreeType: int) -> int:
        if dwFreeType not in (MEM_RELEASE, MEM_DECOMMIT):
            if not self.personality.lax_flag_validation:
                return self.fail(W.ERROR_INVALID_PARAMETER)
        if dwFreeType == MEM_RELEASE and dwSize != 0:
            if not self.personality.lax_flag_validation:
                return self.fail(W.ERROR_INVALID_PARAMETER)
        region = self.mem.find(lpAddress)
        if region is None or region.start != (lpAddress & _U32) or region.tag != "virtual":
            if self.lax_handles:
                return 1
            return self.fail(W.ERROR_INVALID_ADDRESS)
        self.mem.unmap(region)
        return 1

    def VirtualProtect(
        self, lpAddress: int, dwSize: int, flNewProtect: int, lpflOldProtect: int
    ) -> int:
        from repro.sim.memory import Protection

        if flNewProtect not in PAGE_FLAG_TO_PROTECTION:
            if not self.personality.lax_flag_validation:
                return self.fail(W.ERROR_INVALID_PARAMETER)
            flNewProtect = 0x04
        region = self.mem.find(lpAddress)
        if region is None:
            return self.fail(W.ERROR_INVALID_ADDRESS)
        old = region.protection
        if not self.copy_out(
            "VirtualProtect", lpflOldProtect, int(old).to_bytes(4, "little")
        ):
            return self.fail(W.ERROR_NOACCESS)
        region.protection = Protection(PAGE_FLAG_TO_PROTECTION[flNewProtect] or 1)
        return 1

    def VirtualQuery(self, lpAddress: int, lpBuffer: int, dwLength: int) -> int:
        dwLength &= _U32
        if dwLength < 28:
            return self.fail(W.ERROR_INSUFFICIENT_BUFFER)
        region = self.mem.find(lpAddress)
        base = region.start if region else (lpAddress & _U32) & ~0xFFF
        size = region.size if region else 0x1000
        state = 0x1000 if region else 0x10000  # MEM_COMMIT / MEM_FREE
        info = (
            base.to_bytes(4, "little")
            + base.to_bytes(4, "little")
            + (0x04).to_bytes(4, "little")
            + size.to_bytes(4, "little")
            + state.to_bytes(4, "little")
            + (0x04).to_bytes(4, "little")
            + (0x20000).to_bytes(4, "little")
        )
        if not self.copy_out("VirtualQuery", lpBuffer, info):
            return self.fail(W.ERROR_NOACCESS)
        return 28

    def VirtualLock(self, lpAddress: int, dwSize: int) -> int:
        region = self.mem.find(lpAddress)
        if region is None or (lpAddress & _U32) + (dwSize & _U32) > region.end:
            return self.fail(W.ERROR_INVALID_ADDRESS)
        return 1

    def VirtualUnlock(self, lpAddress: int, dwSize: int) -> int:
        region = self.mem.find(lpAddress)
        if region is None:
            return self.fail(W.ERROR_NOT_LOCKED)
        return 1

    # ------------------------------------------------------------------
    # Heaps
    # ------------------------------------------------------------------

    def HeapCreate(self, flOptions: int, dwInitialSize: int, dwMaximumSize: int) -> int:
        from repro.sim.objects import HeapObject

        dwInitialSize &= _U32
        dwMaximumSize &= _U32
        if not self._flags_valid(flOptions, 0x0004_0005):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if self.machine.shared_region is not None:
            # 9x: the heap arena header is written into the shared
            # system arena at an offset derived from the initial size.
            header_at = self.machine.shared_region.start + (dwInitialSize >> 4)
            if not self.copy_out(
                "HeapCreate", header_at, b"HEAP" + dwMaximumSize.to_bytes(4, "little")
            ):
                return self.fail(W.ERROR_NOT_ENOUGH_MEMORY)
        if dwMaximumSize and dwInitialSize > dwMaximumSize:
            if not self.personality.lax_flag_validation:
                return self.fail(W.ERROR_INVALID_PARAMETER)
        if dwInitialSize > MAX_VIRTUAL_ALLOC * 4:
            return self.fail(W.ERROR_NOT_ENOUGH_MEMORY)
        heap = HeapObject(dwInitialSize, dwMaximumSize)
        return self.process.handles.insert(heap)

    def _heap_or_fail(self, hHeap: int):
        from repro.sim.objects import HeapObject

        return self.object_or_fail(hHeap, HeapObject)

    def HeapDestroy(self, hHeap: int) -> int:
        heap = self._heap_or_fail(hHeap)
        if heap is None:
            return 1 if self.lax_handles else 0
        for region in heap.blocks.values():
            self.mem.unmap(region)
        heap.blocks.clear()
        self.process.handles.close(hHeap & _U32)
        return 1

    def HeapAlloc(self, hHeap: int, dwFlags: int, dwBytes: int) -> int:
        heap = self._heap_or_fail(hHeap)
        if heap is None:
            return 0
        dwBytes &= _U32
        if dwBytes > MAX_VIRTUAL_ALLOC or (
            heap.maximum_size and dwBytes > heap.maximum_size
        ):
            if dwFlags & 0x4:  # HEAP_GENERATE_EXCEPTIONS
                self.throw(0xC0000017, recoverable=True)  # STATUS_NO_MEMORY
            return self.fail(W.ERROR_NOT_ENOUGH_MEMORY)
        try:
            region = self.mem.map(max(dwBytes, 1), tag="heap32")
        except ResourceExhausted:
            if dwFlags & 0x4:  # HEAP_GENERATE_EXCEPTIONS
                self.throw(0xC0000017, recoverable=True)  # STATUS_NO_MEMORY
            return self.fail(W.ERROR_NOT_ENOUGH_MEMORY)
        heap.blocks[region.start] = region
        return region.start

    def HeapFree(self, hHeap: int, dwFlags: int, lpMem: int) -> int:
        heap = self._heap_or_fail(hHeap)
        if heap is None:
            return 1 if self.lax_handles else 0
        region = heap.blocks.pop(lpMem & _U32, None)
        if region is None:
            if self.lax_handles:
                return 1  # 9x: claims success for foreign pointers
            return self.fail(W.ERROR_INVALID_PARAMETER)
        self.mem.unmap(region)
        return 1

    def HeapReAlloc(self, hHeap: int, dwFlags: int, lpMem: int, dwBytes: int) -> int:
        heap = self._heap_or_fail(hHeap)
        if heap is None:
            return 0
        region = heap.blocks.get(lpMem & _U32)
        if region is None:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        dwBytes &= _U32
        if dwBytes > MAX_VIRTUAL_ALLOC:
            return self.fail(W.ERROR_NOT_ENOUGH_MEMORY)
        new_region = self.mem.map(max(dwBytes, 1), tag="heap32")
        data = self.mem.read(region.start, min(region.size, dwBytes))
        self.mem.write(new_region.start, data)
        del heap.blocks[region.start]
        heap.blocks[new_region.start] = new_region
        self.mem.unmap(region)
        return new_region.start

    def HeapSize(self, hHeap: int, dwFlags: int, lpMem: int) -> int:
        heap = self._heap_or_fail(hHeap)
        if heap is None:
            return _U32
        region = heap.blocks.get(lpMem & _U32)
        if region is None:
            return self.fail(W.ERROR_INVALID_PARAMETER, ret=_U32)
        return region.size

    def HeapValidate(self, hHeap: int, dwFlags: int, lpMem: int) -> int:
        heap = self._heap_or_fail(hHeap)
        if heap is None:
            return 0
        if lpMem == 0:
            return 1
        return 1 if (lpMem & _U32) in heap.blocks else 0

    def HeapCompact(self, hHeap: int, dwFlags: int) -> int:
        heap = self._heap_or_fail(hHeap)
        if heap is None:
            return 0
        return max((r.size for r in heap.blocks.values()), default=0x1000)

    # ------------------------------------------------------------------
    # Global / Local allocators (legacy, user-mode header walks)
    # ------------------------------------------------------------------

    def _legacy_alloc(self, tag: str, size: int) -> int:
        size &= _U32
        if size > MAX_VIRTUAL_ALLOC:
            return self.fail(W.ERROR_NOT_ENOUGH_MEMORY)
        return self.mem.map(max(size, 1), tag=tag).start

    def _legacy_lookup(self, func: str, hMem: int, tag: str):
        # The legacy allocators read the block header in user mode
        # before validating -- the mechanistic source of their Abort
        # failures on every desktop Windows variant.
        self.mem.read(hMem, 4)
        region = self.mem.find(hMem)
        if region is None or region.start != (hMem & _U32) or region.tag != tag:
            return None
        return region

    def GlobalAlloc(self, uFlags: int, dwBytes: int) -> int:
        if not self._flags_valid(uFlags, 0x2042):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        return self._legacy_alloc("global", dwBytes)

    def GlobalFree(self, hMem: int) -> int:
        region = self._legacy_lookup("GlobalFree", hMem, "global")
        if region is None:
            if self.lax_handles:
                return 0  # success (returns NULL)
            return self.fail(W.ERROR_INVALID_HANDLE, ret=hMem & _U32)
        self.mem.unmap(region)
        return 0

    def GlobalReAlloc(self, hMem: int, dwBytes: int, uFlags: int) -> int:
        region = self._legacy_lookup("GlobalReAlloc", hMem, "global")
        if region is None:
            return self.fail(W.ERROR_INVALID_HANDLE)
        dwBytes &= _U32
        if dwBytes > MAX_VIRTUAL_ALLOC:
            return self.fail(W.ERROR_NOT_ENOUGH_MEMORY)
        new_region = self.mem.map(max(dwBytes, 1), tag="global")
        self.mem.write(
            new_region.start, self.mem.read(region.start, min(region.size, dwBytes))
        )
        self.mem.unmap(region)
        return new_region.start

    def GlobalSize(self, hMem: int) -> int:
        region = self._legacy_lookup("GlobalSize", hMem, "global")
        if region is None:
            return self.fail(W.ERROR_INVALID_HANDLE)
        return region.size

    def LocalAlloc(self, uFlags: int, uBytes: int) -> int:
        if not self._flags_valid(uFlags, 0x1042):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        return self._legacy_alloc("local", uBytes)

    def LocalFree(self, hMem: int) -> int:
        if hMem == 0:
            return 0
        region = self._legacy_lookup("LocalFree", hMem, "local")
        if region is None:
            if self.lax_handles:
                return 0
            return self.fail(W.ERROR_INVALID_HANDLE, ret=hMem & _U32)
        self.mem.unmap(region)
        return 0
