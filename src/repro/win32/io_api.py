"""Win32 I/O Primitives (the paper's 15-call group).

"{AttachThreadInput CloseHandle DuplicateHandle FlushFileBuffers
GetStdHandle LockFile LockFileEx ReadFile ReadFileEx SetFilePointer
SetStdHandle UnlockFile UnlockFileEx WriteFile WriteFileEx}"

Crash mechanics reproduced here: ``DuplicateHandle`` writes the new
handle value through ``lpTargetHandle`` in kernel mode; on Windows
95/98/98 SE that write is misdirected into the shared arena (CORRUPT),
crashing only after repeated tests -- the paper's ``*DuplicateHandle``.
"""

from __future__ import annotations

from repro.sim.filesystem import FileSystemError
from repro.win32 import errors as W

_U32 = 0xFFFF_FFFF

STD_INPUT_HANDLE = 0xFFFF_FFF6  # (DWORD)-10
STD_OUTPUT_HANDLE = 0xFFFF_FFF5  # (DWORD)-11
STD_ERROR_HANDLE = 0xFFFF_FFF4  # (DWORD)-12


class IoApiMixin:
    """Handle-level I/O primitives."""

    # ------------------------------------------------------------------
    # Handles
    # ------------------------------------------------------------------

    def CloseHandle(self, hObject: int) -> int:
        if self.process.handles.close(hObject & _U32):
            return 1
        if self.lax_handles:
            return 1  # 9x: closing garbage "succeeds" (Silent failure)
        return self.fail(W.ERROR_INVALID_HANDLE)

    def DuplicateHandle(
        self,
        hSourceProcessHandle: int,
        hSourceHandle: int,
        hTargetProcessHandle: int,
        lpTargetHandle: int,
        dwDesiredAccess: int,
        bInheritHandle: int,
        dwOptions: int,
    ) -> int:
        from repro.sim.objects import ProcessObject

        source_process = self.object_or_fail(hSourceProcessHandle, ProcessObject)
        if source_process is None and not self.lax_handles:
            return 0
        target_process = self.object_or_fail(hTargetProcessHandle, ProcessObject)
        if target_process is None and not self.lax_handles:
            return 0
        if not self._flags_valid(dwOptions, 0x3):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        source = self.resolve_handle(hSourceHandle)
        if source is None:
            if self.lax_handles:
                source = self.process.kernel_object
            else:
                return self.fail(W.ERROR_INVALID_HANDLE)
        new_handle = self.process.handles.insert(source)
        # Kernel writes the duplicated handle value back through the
        # caller pointer: misdirected into the shared arena on 9x.
        if not self.copy_out(
            "DuplicateHandle", lpTargetHandle, new_handle.to_bytes(4, "little")
        ):
            self.process.handles.close(new_handle)
            return self.fail(W.ERROR_NOACCESS)
        if dwOptions & 0x1:  # DUPLICATE_CLOSE_SOURCE
            self.process.handles.close(hSourceHandle & _U32)
        return 1

    def AttachThreadInput(self, idAttach: int, idAttachTo: int, fAttach: int) -> int:
        known = {t.tid for t in (self.process.main_thread,)}
        if (idAttach & _U32) in known or (idAttachTo & _U32) in known:
            return 1
        if self.lax_handles:
            return 1
        return self.fail(W.ERROR_INVALID_PARAMETER)

    # ------------------------------------------------------------------
    # Std handles
    # ------------------------------------------------------------------

    def _ensure_std_handle(self, slot: int) -> int:
        from repro.sim.objects import FileObject

        if slot not in self._std_handles:
            fd = {STD_INPUT_HANDLE: 0, STD_OUTPUT_HANDLE: 1, STD_ERROR_HANDLE: 2}[slot]
            open_file = self.process.fds.get(fd)
            obj = FileObject(open_file, name=f"<std:{fd}>")
            self._std_handles[slot] = self.process.handles.insert(obj)
        return self._std_handles[slot]

    def GetStdHandle(self, nStdHandle: int) -> int:
        slot = nStdHandle & _U32
        if slot not in (STD_INPUT_HANDLE, STD_OUTPUT_HANDLE, STD_ERROR_HANDLE):
            return self.fail(W.ERROR_INVALID_PARAMETER, ret=_U32)
        return self._ensure_std_handle(slot)

    def SetStdHandle(self, nStdHandle: int, hHandle: int) -> int:
        slot = nStdHandle & _U32
        if slot not in (STD_INPUT_HANDLE, STD_OUTPUT_HANDLE, STD_ERROR_HANDLE):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if self.resolve_handle(hHandle) is None and not self.lax_handles:
            return self.fail(W.ERROR_INVALID_HANDLE)
        self._std_handles[slot] = hHandle & _U32
        return 1

    # ------------------------------------------------------------------
    # Read / write / seek
    # ------------------------------------------------------------------

    def _open_file_or_fail(self, func: str, hFile: int):
        from repro.sim.objects import FileObject

        obj = self.object_or_fail(hFile, FileObject)
        return obj

    def ReadFile(
        self,
        hFile: int,
        lpBuffer: int,
        nNumberOfBytesToRead: int,
        lpNumberOfBytesRead: int,
        lpOverlapped: int,
    ) -> int:
        obj = self._open_file_or_fail("ReadFile", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0
        if lpNumberOfBytesRead == 0 and lpOverlapped == 0:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if lpOverlapped:
            self.mem.read_u32(lpOverlapped)  # user-mode OVERLAPPED pickup
        count = nNumberOfBytesToRead & _U32
        try:
            data = obj.open_file.read(min(count, 1 << 20))
        except FileSystemError as exc:
            return self._fs_fail(exc)
        if data and not self.copy_out("ReadFile", lpBuffer, data):
            return self.fail(W.ERROR_NOACCESS)
        if lpNumberOfBytesRead and not self.copy_out(
            "ReadFile", lpNumberOfBytesRead, len(data).to_bytes(4, "little")
        ):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def ReadFileEx(
        self,
        hFile: int,
        lpBuffer: int,
        nNumberOfBytesToRead: int,
        lpOverlapped: int,
        lpCompletionRoutine: int,
    ) -> int:
        obj = self._open_file_or_fail("ReadFileEx", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0
        if lpOverlapped == 0:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        self.mem.read_u32(lpOverlapped)  # user-mode OVERLAPPED pickup
        count = nNumberOfBytesToRead & _U32
        try:
            data = obj.open_file.read(min(count, 1 << 20))
        except FileSystemError as exc:
            return self._fs_fail(exc)
        if data and not self.copy_out("ReadFileEx", lpBuffer, data):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def WriteFile(
        self,
        hFile: int,
        lpBuffer: int,
        nNumberOfBytesToWrite: int,
        lpNumberOfBytesWritten: int,
        lpOverlapped: int,
    ) -> int:
        obj = self._open_file_or_fail("WriteFile", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0
        if lpNumberOfBytesWritten == 0 and lpOverlapped == 0:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if lpOverlapped:
            self.mem.read_u32(lpOverlapped)
        count = min(nNumberOfBytesToWrite & _U32, 1 << 20)
        data = self.copy_in("WriteFile", lpBuffer, count)
        if data is None:
            return self.fail(W.ERROR_NOACCESS)
        try:
            written = obj.open_file.write(data)
        except FileSystemError as exc:
            return self._fs_fail(exc)
        if lpNumberOfBytesWritten and not self.copy_out(
            "WriteFile", lpNumberOfBytesWritten, written.to_bytes(4, "little")
        ):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def WriteFileEx(
        self,
        hFile: int,
        lpBuffer: int,
        nNumberOfBytesToWrite: int,
        lpOverlapped: int,
        lpCompletionRoutine: int,
    ) -> int:
        obj = self._open_file_or_fail("WriteFileEx", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0
        if lpOverlapped == 0:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        self.mem.read_u32(lpOverlapped)
        count = min(nNumberOfBytesToWrite & _U32, 1 << 20)
        data = self.copy_in("WriteFileEx", lpBuffer, count)
        if data is None:
            return self.fail(W.ERROR_NOACCESS)
        try:
            obj.open_file.write(data)
        except FileSystemError as exc:
            return self._fs_fail(exc)
        return 1

    def SetFilePointer(
        self,
        hFile: int,
        lDistanceToMove: int,
        lpDistanceToMoveHigh: int,
        dwMoveMethod: int,
    ) -> int:
        obj = self._open_file_or_fail("SetFilePointer", hFile)
        if obj is None:
            return 0 if self.lax_handles else W.INVALID_SET_FILE_POINTER
        if dwMoveMethod not in (0, 1, 2):
            if not self.personality.lax_flag_validation:
                return self.fail(
                    W.ERROR_INVALID_PARAMETER, ret=W.INVALID_SET_FILE_POINTER
                )
            dwMoveMethod = 0
        distance = lDistanceToMove
        if lpDistanceToMoveHigh:
            # 64-bit seek: kernel32 reads and writes the high part in
            # user mode.
            high = self.mem.read_i32(lpDistanceToMoveHigh)
            distance += high << 32
        try:
            position = obj.open_file.seek(distance, dwMoveMethod)
        except FileSystemError:
            return self.fail(
                W.ERROR_NEGATIVE_SEEK, ret=W.INVALID_SET_FILE_POINTER
            )
        if lpDistanceToMoveHigh:
            self.mem.write_u32(lpDistanceToMoveHigh, (position >> 32) & _U32)
        return position & _U32

    def FlushFileBuffers(self, hFile: int) -> int:
        obj = self._open_file_or_fail("FlushFileBuffers", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0
        return 1

    # ------------------------------------------------------------------
    # Locks
    # ------------------------------------------------------------------

    def LockFile(
        self,
        hFile: int,
        dwFileOffsetLow: int,
        dwFileOffsetHigh: int,
        nNumberOfBytesToLockLow: int,
        nNumberOfBytesToLockHigh: int,
    ) -> int:
        obj = self._open_file_or_fail("LockFile", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0
        start = (dwFileOffsetHigh << 32) | (dwFileOffsetLow & _U32)
        length = (nNumberOfBytesToLockHigh << 32) | (nNumberOfBytesToLockLow & _U32)
        if length == 0:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        for lock_start, lock_length, _exclusive in obj.locks:
            if start < lock_start + lock_length and lock_start < start + length:
                return self.fail(W.ERROR_LOCK_VIOLATION)
        obj.locks.append((start, length, True))
        return 1

    def LockFileEx(
        self,
        hFile: int,
        dwFlags: int,
        dwReserved: int,
        nNumberOfBytesToLockLow: int,
        nNumberOfBytesToLockHigh: int,
        lpOverlapped: int,
    ) -> int:
        obj = self._open_file_or_fail("LockFileEx", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0
        if dwReserved != 0 or not self._flags_valid(dwFlags, 0x3):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if lpOverlapped == 0:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        offset = self.mem.read_u32(lpOverlapped + 8)  # user-mode OVERLAPPED read
        length = (nNumberOfBytesToLockHigh << 32) | (nNumberOfBytesToLockLow & _U32)
        if length == 0:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        obj.locks.append((offset, length, bool(dwFlags & 0x2)))
        return 1

    def UnlockFile(
        self,
        hFile: int,
        dwFileOffsetLow: int,
        dwFileOffsetHigh: int,
        nNumberOfBytesToUnlockLow: int,
        nNumberOfBytesToUnlockHigh: int,
    ) -> int:
        obj = self._open_file_or_fail("UnlockFile", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0
        start = (dwFileOffsetHigh << 32) | (dwFileOffsetLow & _U32)
        length = (nNumberOfBytesToUnlockHigh << 32) | (
            nNumberOfBytesToUnlockLow & _U32
        )
        entry = (start, length, True)
        if entry in obj.locks:
            obj.locks.remove(entry)
            return 1
        loose = [(s, n, x) for (s, n, x) in obj.locks if s == start and n == length]
        if loose:
            obj.locks.remove(loose[0])
            return 1
        if self.lax_handles:
            return 1
        return self.fail(W.ERROR_NOT_LOCKED)

    def UnlockFileEx(
        self,
        hFile: int,
        dwReserved: int,
        nNumberOfBytesToUnlockLow: int,
        nNumberOfBytesToUnlockHigh: int,
        lpOverlapped: int,
    ) -> int:
        obj = self._open_file_or_fail("UnlockFileEx", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0
        if dwReserved != 0:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        if lpOverlapped == 0:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        offset = self.mem.read_u32(lpOverlapped + 8)
        length = (nNumberOfBytesToUnlockHigh << 32) | (
            nNumberOfBytesToUnlockLow & _U32
        )
        loose = [(s, n, x) for (s, n, x) in obj.locks if s == offset and n == length]
        if loose:
            obj.locks.remove(loose[0])
            return 1
        if self.lax_handles:
            return 1
        return self.fail(W.ERROR_NOT_LOCKED)
