"""The simulated Win32 API (143 system-call MuTs) and the six Windows
variant personalities.

The API implementations are shared; per-variant behaviour comes from the
:class:`~repro.sim.personality.Personality` (see
:mod:`repro.win32.variants`): NT/2000 probe user pointers at the kernel
boundary, the 9x family leaves specific calls unprotected (the paper's
Table 3 crash functions), and Windows CE shares one address space with
the OS.
"""

from repro.win32.registration import register
from repro.win32.system import Win32System
from repro.win32.variants import (
    WIN2000,
    WIN95,
    WIN98,
    WIN98SE,
    WINCE,
    WINDOWS_VARIANTS,
    WINNT,
)

__all__ = [
    "WIN2000",
    "WIN95",
    "WIN98",
    "WIN98SE",
    "WINCE",
    "WINDOWS_VARIANTS",
    "WINNT",
    "Win32System",
    "register",
]
