"""The six Windows variant personalities (paper section 4).

Each personality encodes only *mechanisms*: which functions' kernel-side
pointer accesses are unprotected (RAW -> immediate crash on a bad
pointer) or misdirected into shared system memory (CORRUPT -> the
paper's ``*`` inter-test-interference crashes), plus family-level
validation style.  The per-variant crash-function sets are transcribed
from the paper's Table 3.
"""

from __future__ import annotations

from repro.sim.personality import Personality

#: The ten Win32 calls Windows 95 does not implement ("10 Win32 system
#: calls were not supported by Windows 95, but were tested on the other
#: desktop Windows platforms").
WIN95_MISSING = frozenset(
    {
        "MsgWaitForMultipleObjectsEx",
        "SignalObjectAndWait",
        "CreateWaitableTimerA",
        "InterlockedCompareExchange",
        "GetFileAttributesExA",
        "MoveFileExA",
        "GetProcessTimes",
        "GetThreadTimes",
        "GetSystemTimeAsFileTime",
        "SleepEx",
    }
)

WIN95 = Personality(
    key="win95",
    name="Windows 95",
    api="win32",
    family="9x",
    crt_flavor="msvcrt",
    kernel_probes_pointers=False,
    raw_kernel_access=frozenset(
        {
            "GetThreadContext",
            "GetFileInformationByHandle",
            "FileTimeToSystemTime",
            "HeapCreate",
            "MsgWaitForMultipleObjects",
        }
    ),
    corrupting_access=frozenset({"DuplicateHandle", "ReadProcessMemory"}),
    lax_handle_validation=True,
    lax_flag_validation=True,
    confuses_path_errors=True,
    shared_system_memory=True,
    missing_functions=WIN95_MISSING,
)

WIN98 = Personality(
    key="win98",
    name="Windows 98",
    api="win32",
    family="9x",
    crt_flavor="msvcrt",
    kernel_probes_pointers=False,
    raw_kernel_access=frozenset(
        {
            "GetThreadContext",
            "GetFileInformationByHandle",
            "MsgWaitForMultipleObjects",
        }
    ),
    corrupting_access=frozenset(
        {
            "DuplicateHandle",
            "MsgWaitForMultipleObjectsEx",
            "fwrite",
            "strncpy",
        }
    ),
    lax_handle_validation=True,
    lax_flag_validation=True,
    confuses_path_errors=True,
    shared_system_memory=True,
)

WIN98SE = Personality(
    key="win98se",
    name="Windows 98 SE",
    api="win32",
    family="9x",
    crt_flavor="msvcrt",
    kernel_probes_pointers=False,
    raw_kernel_access=frozenset(
        {
            "GetThreadContext",
            "GetFileInformationByHandle",
            "MsgWaitForMultipleObjects",
        }
    ),
    corrupting_access=frozenset(
        {
            "DuplicateHandle",
            "MsgWaitForMultipleObjectsEx",
            "CreateThread",
            "strncpy",
        }
    ),
    lax_handle_validation=True,
    lax_flag_validation=True,
    confuses_path_errors=True,
    shared_system_memory=True,
)

WINNT = Personality(
    key="winnt",
    name="Windows NT",
    api="win32",
    family="nt",
    crt_flavor="msvcrt",
    kernel_probes_pointers=True,
)

WIN2000 = Personality(
    key="win2000",
    name="Windows 2000",
    api="win32",
    family="nt",
    crt_flavor="msvcrt",
    kernel_probes_pointers=True,
)

#: Windows CE stdio functions whose wild-FILE* flush is an *immediate*
#: kernel-space fault (non-starred Table 3 entries).
_CE_RAW_STDIO = frozenset(
    {
        "clearerr", "fclose", "fflush", "_wfreopen", "fseek", "ftell",
        "fgetc", "fprintf", "fputc", "fputs", "fscanf", "getc", "putc",
        "ungetc",
        # wide twins of the immediate-crash stream functions
        "fgetwc", "fwprintf", "fputwc", "fputws", "fwscanf",
    }
)

WINCE = Personality(
    key="wince",
    name="Windows CE",
    api="win32",
    family="ce",
    crt_flavor="ce-crt",
    kernel_probes_pointers=False,
    raw_kernel_access=frozenset(
        {
            "GetThreadContext",
            "SetThreadContext",
            "MsgWaitForMultipleObjects",
            "MsgWaitForMultipleObjectsEx",
            "VirtualAlloc",
        }
    )
    | _CE_RAW_STDIO,
    corrupting_access=frozenset(
        {
            "CreateThread",
            "ReadProcessMemory",
            "InterlockedIncrement",
            "InterlockedDecrement",
            "InterlockedExchange",
            # starred C functions: fread/fgets (+ wide twins) and the
            # UNICODE strncpy
            "fread", "fwrite", "fgets", "wfread", "fgetws", "_tcsncpy",
        }
    ),
    shared_system_memory=True,
    strict_alignment=True,
)

#: All six Windows variants in the paper's reporting order.
WINDOWS_VARIANTS: tuple[Personality, ...] = (
    WIN95,
    WIN98,
    WIN98SE,
    WINNT,
    WIN2000,
    WINCE,
)

#: The five desktop variants (Silent-failure voting applies to these).
DESKTOP_VARIANTS: tuple[Personality, ...] = (
    WIN95,
    WIN98,
    WIN98SE,
    WINNT,
    WIN2000,
)
