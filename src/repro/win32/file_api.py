"""Win32 File/Directory Access API (35 MuTs).

Crash mechanics reproduced here (paper Table 3):

* ``GetFileInformationByHandle`` writes a 52-byte
  ``BY_HANDLE_FILE_INFORMATION`` through the caller pointer in kernel
  mode -- unprotected on Windows 95/98/98 SE.
* ``FileTimeToSystemTime`` reads/writes its structures through an
  unprotected kernel path on Windows 95 only.

Path-taking entry points scan their ANSI strings in *user mode*
(kernel32's ANSI layer), so bad string pointers abort on every variant,
NT included.
"""

from __future__ import annotations

from repro.sim.filesystem import FileSystemError
from repro.win32 import errors as W

_U32 = 0xFFFF_FFFF

GENERIC_READ = 0x8000_0000
GENERIC_WRITE = 0x4000_0000

CREATE_NEW = 1
CREATE_ALWAYS = 2
OPEN_EXISTING = 3
OPEN_ALWAYS = 4
TRUNCATE_EXISTING = 5

FILE_ATTRIBUTE_READONLY = 0x01
FILE_ATTRIBUTE_HIDDEN = 0x02
FILE_ATTRIBUTE_DIRECTORY = 0x10
FILE_ATTRIBUTE_NORMAL = 0x80

#: 100ns intervals between 1601-01-01 and 1970-01-01.
EPOCH_DELTA_100NS = 11_644_473_600 * 10_000_000

MAX_PATH = 260


def _ticks_to_filetime(ticks_ms: int) -> int:
    from repro.sim.clock import EPOCH_UNIX_SECONDS

    return (EPOCH_UNIX_SECONDS + ticks_ms // 1000) * 10_000_000 + EPOCH_DELTA_100NS


class FileApiMixin:
    """CreateFile and friends."""

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _read_security_attributes(self, lpSecurityAttributes: int) -> bool:
        """User-mode read of the SECURITY_ATTRIBUTES length field (NULL
        is legal); returns validity."""
        if lpSecurityAttributes == 0:
            return True
        length = self.mem.read_u32(lpSecurityAttributes)
        if length != 12 and not self.personality.lax_flag_validation:
            return False
        return True

    def _file_object(self, func: str, hFile: int):
        from repro.sim.objects import FileObject

        return self.object_or_fail(hFile, FileObject)

    def _node_attributes(self, node) -> int:
        attrs = 0
        if node.is_directory:
            attrs |= FILE_ATTRIBUTE_DIRECTORY
        if node.read_only:
            attrs |= FILE_ATTRIBUTE_READONLY
        if node.hidden:
            attrs |= FILE_ATTRIBUTE_HIDDEN
        return attrs or FILE_ATTRIBUTE_NORMAL

    # ------------------------------------------------------------------
    # Open / create / delete
    # ------------------------------------------------------------------

    def CreateFileA(
        self,
        lpFileName: int,
        dwDesiredAccess: int,
        dwShareMode: int,
        lpSecurityAttributes: int,
        dwCreationDisposition: int,
        dwFlagsAndAttributes: int,
        hTemplateFile: int,
    ) -> int:
        from repro.sim.objects import FileObject

        path = self._scan_string(lpFileName)
        if not self._read_security_attributes(lpSecurityAttributes):
            return self.fail(W.ERROR_INVALID_PARAMETER, ret=_U32)
        if dwCreationDisposition not in (1, 2, 3, 4, 5):
            if not self.personality.lax_flag_validation:
                return self.fail(W.ERROR_INVALID_PARAMETER, ret=_U32)
            dwCreationDisposition = OPEN_ALWAYS
        if not path:
            return self.fail(W.ERROR_PATH_NOT_FOUND, ret=_U32)
        readable = bool(dwDesiredAccess & GENERIC_READ)
        writable = bool(dwDesiredAccess & GENERIC_WRITE)
        create = dwCreationDisposition in (CREATE_NEW, CREATE_ALWAYS, OPEN_ALWAYS)
        truncate = dwCreationDisposition in (CREATE_ALWAYS, TRUNCATE_EXISTING)
        if create and not writable:
            # Opening for create without write access: querying only.
            writable = True
        try:
            open_file = self.machine.fs.open(
                path,
                readable=readable or not writable,
                writable=writable,
                create=create,
                truncate=truncate and writable,
                exclusive=dwCreationDisposition == CREATE_NEW,
            )
        except FileSystemError as exc:
            return self._fs_fail(exc, ret=_U32)
        handle = self.process.handles.insert(FileObject(open_file, name=path))
        if dwCreationDisposition == CREATE_ALWAYS:
            self.set_last_error(W.ERROR_ALREADY_EXISTS)
        return handle

    def DeleteFileA(self, lpFileName: int) -> int:
        path = self._scan_string(lpFileName)
        try:
            self.machine.fs.unlink(path)
            return 1
        except FileSystemError as exc:
            return self._fs_fail(exc)

    def CopyFileA(self, lpExisting: int, lpNew: int, bFailIfExists: int) -> int:
        src = self._scan_string(lpExisting)
        dst = self._scan_string(lpNew)
        node = self.machine.fs.lookup(src)
        if node is None or node.is_directory:
            return self.fail(W.ERROR_FILE_NOT_FOUND)
        if bFailIfExists and self.machine.fs.lookup(dst) is not None:
            return self.fail(W.ERROR_FILE_EXISTS)
        try:
            self.machine.fs.create_file(dst, bytes(node.data))
            return 1
        except FileSystemError as exc:
            return self._fs_fail(exc)

    def MoveFileA(self, lpExisting: int, lpNew: int) -> int:
        src = self._scan_string(lpExisting)
        dst = self._scan_string(lpNew)
        if self.machine.fs.lookup(dst) is not None:
            return self.fail(W.ERROR_ALREADY_EXISTS)
        try:
            self.machine.fs.rename(src, dst)
            return 1
        except FileSystemError as exc:
            return self._fs_fail(exc)

    def MoveFileExA(self, lpExisting: int, lpNew: int, dwFlags: int) -> int:
        if not self._flags_valid(dwFlags, 0x1F):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        src = self._scan_string(lpExisting)
        dst = self._scan_string(lpNew)
        replace = bool(dwFlags & 0x1)
        existing = self.machine.fs.lookup(dst)
        if existing is not None:
            if not replace:
                return self.fail(W.ERROR_ALREADY_EXISTS)
            try:
                self.machine.fs.unlink(dst)
            except FileSystemError as exc:
                return self._fs_fail(exc)
        try:
            self.machine.fs.rename(src, dst)
            return 1
        except FileSystemError as exc:
            return self._fs_fail(exc)

    # ------------------------------------------------------------------
    # Directories
    # ------------------------------------------------------------------

    def CreateDirectoryA(self, lpPathName: int, lpSecurityAttributes: int) -> int:
        path = self._scan_string(lpPathName)
        if not self._read_security_attributes(lpSecurityAttributes):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        try:
            self.machine.fs.mkdir(path)
            return 1
        except FileSystemError as exc:
            return self._fs_fail(exc)

    def RemoveDirectoryA(self, lpPathName: int) -> int:
        path = self._scan_string(lpPathName)
        try:
            self.machine.fs.rmdir(path)
            return 1
        except FileSystemError as exc:
            return self._fs_fail(exc)

    def GetCurrentDirectoryA(self, nBufferLength: int, lpBuffer: int) -> int:
        cwd = self.process.cwd.encode("latin-1") + b"\x00"
        if (nBufferLength & _U32) < len(cwd):
            return len(cwd)
        self.mem.write(lpBuffer, cwd)  # user-mode store
        return len(cwd) - 1

    def SetCurrentDirectoryA(self, lpPathName: int) -> int:
        path = self._scan_string(lpPathName)
        node = self.machine.fs.lookup(path)
        if node is None or not node.is_directory:
            return self.fail(W.ERROR_PATH_NOT_FOUND)
        self.process.cwd = path
        return 1

    # ------------------------------------------------------------------
    # Attributes and metadata
    # ------------------------------------------------------------------

    def GetFileAttributesA(self, lpFileName: int) -> int:
        path = self._scan_string(lpFileName)
        node = self.machine.fs.lookup(path)
        if node is None:
            return self.fail(W.ERROR_FILE_NOT_FOUND, ret=_U32)
        return self._node_attributes(node)

    def SetFileAttributesA(self, lpFileName: int, dwFileAttributes: int) -> int:
        if not self._flags_valid(dwFileAttributes, 0xFF):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        path = self._scan_string(lpFileName)
        node = self.machine.fs.lookup(path)
        if node is None:
            return self.fail(W.ERROR_FILE_NOT_FOUND)
        node.read_only = bool(dwFileAttributes & FILE_ATTRIBUTE_READONLY)
        node.hidden = bool(dwFileAttributes & FILE_ATTRIBUTE_HIDDEN)
        return 1

    def GetFileAttributesExA(
        self, lpFileName: int, fInfoLevelId: int, lpFileInformation: int
    ) -> int:
        if fInfoLevelId != 0 and not self.personality.lax_flag_validation:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        path = self._scan_string(lpFileName)
        node = self.machine.fs.lookup(path)
        if node is None:
            return self.fail(W.ERROR_FILE_NOT_FOUND)
        size = 0 if node.is_directory else node.size
        data = (
            self._node_attributes(node).to_bytes(4, "little")
            + _ticks_to_filetime(node.created_at).to_bytes(8, "little")
            + _ticks_to_filetime(node.accessed_at).to_bytes(8, "little")
            + _ticks_to_filetime(node.modified_at).to_bytes(8, "little")
            + (0).to_bytes(4, "little")
            + size.to_bytes(4, "little")
        )
        if not self.copy_out("GetFileAttributesExA", lpFileInformation, data):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def GetFileSize(self, hFile: int, lpFileSizeHigh: int) -> int:
        obj = self._file_object("GetFileSize", hFile)
        if obj is None:
            return 0 if self.lax_handles else W.INVALID_FILE_SIZE
        if lpFileSizeHigh:
            if not self.copy_out("GetFileSize", lpFileSizeHigh, b"\x00" * 4):
                return self.fail(W.ERROR_NOACCESS, ret=W.INVALID_FILE_SIZE)
        return len(obj.open_file.node.data)

    def GetFileType(self, hFile: int) -> int:
        obj = self._file_object("GetFileType", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0  # FILE_TYPE_UNKNOWN
        return 1  # FILE_TYPE_DISK

    def GetFileInformationByHandle(self, hFile: int, lpFileInformation: int) -> int:
        obj = self._file_object("GetFileInformationByHandle", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0
        node = obj.open_file.node
        data = (
            self._node_attributes(node).to_bytes(4, "little")
            + _ticks_to_filetime(node.created_at).to_bytes(8, "little")
            + _ticks_to_filetime(node.accessed_at).to_bytes(8, "little")
            + _ticks_to_filetime(node.modified_at).to_bytes(8, "little")
            + (0).to_bytes(4, "little")  # volume serial
            + (0).to_bytes(4, "little")  # size high
            + node.size.to_bytes(4, "little")
            + node.nlink.to_bytes(4, "little")
            + (0).to_bytes(8, "little")  # file index
        )
        # Kernel-mode write: unprotected on Windows 95/98/98 SE (Table 3).
        if not self.copy_out("GetFileInformationByHandle", lpFileInformation, data):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def SetEndOfFile(self, hFile: int) -> int:
        obj = self._file_object("SetEndOfFile", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0
        if not obj.open_file.writable:
            return self.fail(W.ERROR_ACCESS_DENIED)
        obj.open_file.truncate(obj.open_file.offset)
        return 1

    # ------------------------------------------------------------------
    # File times
    # ------------------------------------------------------------------

    def GetFileTime(
        self, hFile: int, lpCreationTime: int, lpLastAccessTime: int, lpLastWriteTime: int
    ) -> int:
        obj = self._file_object("GetFileTime", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0
        node = obj.open_file.node
        for pointer, ticks in (
            (lpCreationTime, node.created_at),
            (lpLastAccessTime, node.accessed_at),
            (lpLastWriteTime, node.modified_at),
        ):
            if pointer == 0:
                continue  # each pointer is optional
            if not self.copy_out(
                "GetFileTime", pointer, _ticks_to_filetime(ticks).to_bytes(8, "little")
            ):
                return self.fail(W.ERROR_NOACCESS)
        return 1

    def SetFileTime(
        self, hFile: int, lpCreationTime: int, lpLastAccessTime: int, lpLastWriteTime: int
    ) -> int:
        obj = self._file_object("SetFileTime", hFile)
        if obj is None:
            return 1 if self.lax_handles else 0
        for pointer in (lpCreationTime, lpLastAccessTime, lpLastWriteTime):
            if pointer == 0:
                continue
            if self.copy_in("SetFileTime", pointer, 8) is None:
                return self.fail(W.ERROR_NOACCESS)
        return 1

    def _filetime_to_systemtime_fields(self, value: int) -> list[int] | None:
        if value < EPOCH_DELTA_100NS:
            return None  # before 1970 -- out of the simulation's range
        seconds = (value - EPOCH_DELTA_100NS) // 10_000_000
        if seconds > 0xFFFF_FFFF:
            return None
        from repro.libc.time_funcs import _civil_from_unix

        year, mon, day, hour, minute, sec, wday, _ = _civil_from_unix(int(seconds))
        if year > 30827:
            return None
        return [year, mon + 1, wday, day, hour, minute, sec, 0]

    def FileTimeToSystemTime(self, lpFileTime: int, lpSystemTime: int) -> int:
        # Unprotected kernel path on Windows 95 (Table 3).
        raw = self.copy_in("FileTimeToSystemTime", lpFileTime, 8)
        if raw is None:
            return self.fail(W.ERROR_NOACCESS)
        fields = self._filetime_to_systemtime_fields(int.from_bytes(raw, "little"))
        if fields is None:
            if self.personality.lax_flag_validation:
                fields = [1980, 1, 2, 1, 0, 0, 0, 0]  # garbage in, garbage out
            else:
                return self.fail(W.ERROR_INVALID_PARAMETER)
        data = b"".join(f.to_bytes(2, "little") for f in fields)
        if not self.copy_out("FileTimeToSystemTime", lpSystemTime, data):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def SystemTimeToFileTime(self, lpSystemTime: int, lpFileTime: int) -> int:
        raw = self.copy_in("SystemTimeToFileTime", lpSystemTime, 16)
        if raw is None:
            return self.fail(W.ERROR_NOACCESS)
        year = int.from_bytes(raw[0:2], "little")
        month = int.from_bytes(raw[2:4], "little")
        day = int.from_bytes(raw[6:8], "little")
        if not (1601 <= year <= 30827 and 1 <= month <= 12 and 1 <= day <= 31):
            if not self.personality.lax_flag_validation:
                return self.fail(W.ERROR_INVALID_PARAMETER)
        filetime = EPOCH_DELTA_100NS + max(0, year - 1970) * 31_556_952 * 10_000_000
        if not self.copy_out(
            "SystemTimeToFileTime", lpFileTime, (filetime & (2**64 - 1)).to_bytes(8, "little")
        ):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def FileTimeToLocalFileTime(self, lpFileTime: int, lpLocalFileTime: int) -> int:
        # kernel32 does this arithmetic in user mode.
        value = self.mem.read_u64(lpFileTime)
        self.mem.write_u64(lpLocalFileTime, value)  # simulation runs UTC
        return 1

    def CompareFileTime(self, lpFileTime1: int, lpFileTime2: int) -> int:
        first = self.mem.read_u64(lpFileTime1)  # user-mode reads
        second = self.mem.read_u64(lpFileTime2)
        return (first > second) - (first < second)

    # ------------------------------------------------------------------
    # Find files
    # ------------------------------------------------------------------

    #: WIN32_FIND_DATAA is 320 bytes -- written in user mode by kernel32.
    FIND_DATA_SIZE = 320

    def _write_find_data(self, lpFindFileData: int, name: str, node) -> None:
        data = bytearray(self.FIND_DATA_SIZE)
        data[0:4] = self._node_attributes(node).to_bytes(4, "little")
        size = 0 if node.is_directory else node.size
        data[28:32] = size.to_bytes(4, "little")
        encoded = name.encode("latin-1")[: MAX_PATH - 1]
        data[44 : 44 + len(encoded)] = encoded
        self.mem.write(lpFindFileData, bytes(data))

    def FindFirstFileA(self, lpFileName: int, lpFindFileData: int) -> int:
        from repro.sim.objects import KernelObject

        pattern = self._scan_string(lpFileName)
        directory = pattern.rsplit("/", 1)[0] if "/" in pattern else "/tmp"
        try:
            names = self.machine.fs.listdir(directory or "/")
        except FileSystemError as exc:
            return self._fs_fail(exc, ret=_U32)
        if not names:
            return self.fail(W.ERROR_FILE_NOT_FOUND, ret=_U32)
        search = KernelObject(name=directory)
        search.kind = "find"
        search.pending = list(names)  # type: ignore[attr-defined]
        first = search.pending.pop(0)  # type: ignore[attr-defined]
        node = self.machine.fs.lookup(f"{directory}/{first}")
        self._write_find_data(lpFindFileData, first, node)
        return self.process.handles.insert(search)

    def FindNextFileA(self, hFindFile: int, lpFindFileData: int) -> int:
        obj = self.object_or_fail(hFindFile)
        if obj is None or obj.kind != "find":
            if obj is not None:
                self.set_last_error(W.ERROR_INVALID_HANDLE)
            return 1 if self.lax_handles else 0
        pending = getattr(obj, "pending", [])
        if not pending:
            return self.fail(W.ERROR_NO_MORE_FILES)
        name = pending.pop(0)
        node = self.machine.fs.lookup(f"{obj.name}/{name}")
        if node is None:
            return self.fail(W.ERROR_NO_MORE_FILES)
        self._write_find_data(lpFindFileData, name, node)
        return 1

    def FindClose(self, hFindFile: int) -> int:
        obj = self.object_or_fail(hFindFile)
        if obj is None or obj.kind != "find":
            return 1 if self.lax_handles else 0
        self.process.handles.close(hFindFile & _U32)
        return 1

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _copy_path_out(self, path: str, lpBuffer: int, nBufferLength: int) -> int:
        """Common bounded path copy-out (user-mode store)."""
        encoded = path.encode("latin-1") + b"\x00"
        if (nBufferLength & _U32) < len(encoded):
            return len(encoded)  # required size, nothing written
        self.mem.write(lpBuffer, encoded)
        return len(encoded) - 1

    def GetFullPathNameA(
        self, lpFileName: int, nBufferLength: int, lpBuffer: int, lpFilePart: int
    ) -> int:
        path = self._scan_string(lpFileName)
        if not path:
            return self.fail(W.ERROR_INVALID_PARAMETER)
        parts = self.machine.fs.split(path)
        full = "/" + "/".join(parts)
        written = self._copy_path_out(full, lpBuffer, nBufferLength)
        if written == len(full) and lpFilePart:
            tail = full.rsplit("/", 1)[-1]
            self.mem.write_u32(lpFilePart, lpBuffer + len(full) - len(tail))
        return written

    def GetTempPathA(self, nBufferLength: int, lpBuffer: int) -> int:
        return self._copy_path_out("/tmp/", lpBuffer, nBufferLength)

    def GetTempFileNameA(
        self, lpPathName: int, lpPrefixString: int, uUnique: int, lpTempFileName: int
    ) -> int:
        directory = self._scan_string(lpPathName)
        prefix = self._scan_string(lpPrefixString)[:3]
        node = self.machine.fs.lookup(directory)
        if node is None or not node.is_directory:
            return self.fail(W.ERROR_PATH_NOT_FOUND)
        unique = (uUnique & 0xFFFF) or (self.process.pid & 0xFFFF)
        name = f"{directory}/{prefix}{unique:04X}.TMP"
        if (uUnique & 0xFFFF) == 0:
            try:
                self.machine.fs.create_file(name, exclusive=False)
            except FileSystemError as exc:
                return self._fs_fail(exc)
        # The output buffer must hold MAX_PATH characters -- kernel32
        # writes it in user mode without a length parameter.
        encoded = name.encode("latin-1") + b"\x00"
        self.mem.write(lpTempFileName, encoded.ljust(MAX_PATH, b"\x00"))
        return unique

    def SearchPathA(
        self,
        lpPath: int,
        lpFileName: int,
        lpExtension: int,
        nBufferLength: int,
        lpBuffer: int,
        lpFilePart: int,
    ) -> int:
        directory = self._scan_string(lpPath) if lpPath else "/tmp"
        name = self._scan_string(lpFileName)
        extension = self._scan_string(lpExtension) if lpExtension else ""
        candidate = f"{directory}/{name}{extension}" if name else ""
        if candidate and self.machine.fs.lookup(candidate) is not None:
            written = self._copy_path_out(candidate, lpBuffer, nBufferLength)
            if lpFilePart and written == len(candidate):
                self.mem.write_u32(lpFilePart, lpBuffer)
            return written
        return self.fail(W.ERROR_FILE_NOT_FOUND)

    def GetShortPathNameA(
        self, lpszLongPath: int, lpszShortPath: int, cchBuffer: int
    ) -> int:
        path = self._scan_string(lpszLongPath)
        if self.machine.fs.lookup(path) is None:
            return self.fail(W.ERROR_FILE_NOT_FOUND)
        return self._copy_path_out(path, lpszShortPath, cchBuffer)

    # ------------------------------------------------------------------
    # Volumes and misc
    # ------------------------------------------------------------------

    def GetDriveTypeA(self, lpRootPathName: int) -> int:
        if lpRootPathName == 0:
            return 3  # DRIVE_FIXED (NULL means the current root)
        root = self._scan_string(lpRootPathName)
        if root in ("/", "C:\\", "c:\\", "\\"):
            return 3
        node = self.machine.fs.lookup(root)
        return 3 if node is not None and node.is_directory else 1  # DRIVE_NO_ROOT_DIR

    def GetDiskFreeSpaceA(
        self,
        lpRootPathName: int,
        lpSectorsPerCluster: int,
        lpBytesPerSector: int,
        lpNumberOfFreeClusters: int,
        lpTotalNumberOfClusters: int,
    ) -> int:
        if lpRootPathName:
            root = self._scan_string(lpRootPathName)
            node = self.machine.fs.lookup(root)
            if node is None or not node.is_directory:
                if root not in ("/", "\\"):
                    return self.fail(W.ERROR_PATH_NOT_FOUND)
        for pointer, value in (
            (lpSectorsPerCluster, 8),
            (lpBytesPerSector, 512),
            (lpNumberOfFreeClusters, 0x10000),
            (lpTotalNumberOfClusters, 0x20000),
        ):
            if pointer == 0:
                continue
            if not self.copy_out(
                "GetDiskFreeSpaceA", pointer, value.to_bytes(4, "little")
            ):
                return self.fail(W.ERROR_NOACCESS)
        return 1

    def GetLogicalDrives(self) -> int:
        return 0b100  # just C:

    def AreFileApisANSI(self) -> int:
        return 1

    def SetHandleCount(self, uNumber: int) -> int:
        return min(uNumber & _U32, 256)
