"""MuT registration for the 143 Win32 system calls.

Group sizes follow the paper where it pins them down: the I/O Primitives
group is exactly the 15 calls the paper lists.  Windows 95 lacks 10
calls (``Personality.missing_functions``); Windows CE implements a
71-call subset (:data:`CE_SYSCALLS`).
"""

from __future__ import annotations

from repro.core.mut import MuTRegistry
from repro.win32.variants import WINDOWS_VARIANTS

GROUP_MEMORY = "Memory Management"
GROUP_FILEDIR = "File/Directory Access"
GROUP_IO = "I/O Primitives"
GROUP_PROCESS = "Process Primitives"
GROUP_ENV = "Process Environment"

#: (name, group, parameter types) for all 143 Win32 system calls.
WIN32_CALLS: list[tuple[str, str, list[str]]] = [
    # -- Memory Management (20) -----------------------------------------
    ("VirtualAlloc", GROUP_MEMORY, ["buffer", "size", "alloc_type", "page_protect"]),
    ("VirtualFree", GROUP_MEMORY, ["buffer", "size", "alloc_type"]),
    ("VirtualProtect", GROUP_MEMORY, ["buffer", "size", "page_protect", "buffer"]),
    ("VirtualQuery", GROUP_MEMORY, ["buffer", "buffer", "size"]),
    ("VirtualLock", GROUP_MEMORY, ["buffer", "size"]),
    ("VirtualUnlock", GROUP_MEMORY, ["buffer", "size"]),
    ("HeapCreate", GROUP_MEMORY, ["dword", "size", "size"]),
    ("HeapDestroy", GROUP_MEMORY, ["heap_handle"]),
    ("HeapAlloc", GROUP_MEMORY, ["heap_handle", "dword", "size"]),
    ("HeapFree", GROUP_MEMORY, ["heap_handle", "dword", "buffer"]),
    ("HeapReAlloc", GROUP_MEMORY, ["heap_handle", "dword", "buffer", "size"]),
    ("HeapSize", GROUP_MEMORY, ["heap_handle", "dword", "buffer"]),
    ("HeapValidate", GROUP_MEMORY, ["heap_handle", "dword", "buffer"]),
    ("HeapCompact", GROUP_MEMORY, ["heap_handle", "dword"]),
    ("GlobalAlloc", GROUP_MEMORY, ["dword", "size"]),
    ("GlobalFree", GROUP_MEMORY, ["buffer"]),
    ("GlobalReAlloc", GROUP_MEMORY, ["buffer", "size", "dword"]),
    ("GlobalSize", GROUP_MEMORY, ["buffer"]),
    ("LocalAlloc", GROUP_MEMORY, ["dword", "size"]),
    ("LocalFree", GROUP_MEMORY, ["buffer"]),
    # -- File/Directory Access (35) ----------------------------------------
    (
        "CreateFileA",
        GROUP_FILEDIR,
        [
            "filename", "access_mode", "share_mode", "security_attributes",
            "creation_disp", "file_attrs", "handle",
        ],
    ),
    ("DeleteFileA", GROUP_FILEDIR, ["filename"]),
    ("CopyFileA", GROUP_FILEDIR, ["filename", "filename", "bool_val"]),
    ("MoveFileA", GROUP_FILEDIR, ["filename", "filename"]),
    ("MoveFileExA", GROUP_FILEDIR, ["filename", "filename", "dword"]),
    ("CreateDirectoryA", GROUP_FILEDIR, ["filename", "security_attributes"]),
    ("RemoveDirectoryA", GROUP_FILEDIR, ["filename"]),
    ("GetCurrentDirectoryA", GROUP_FILEDIR, ["dword", "buffer"]),
    ("SetCurrentDirectoryA", GROUP_FILEDIR, ["filename"]),
    ("GetFileAttributesA", GROUP_FILEDIR, ["filename"]),
    ("SetFileAttributesA", GROUP_FILEDIR, ["filename", "file_attrs"]),
    ("GetFileAttributesExA", GROUP_FILEDIR, ["filename", "dword", "buffer"]),
    ("GetFileSize", GROUP_FILEDIR, ["file_handle", "buffer"]),
    ("GetFileType", GROUP_FILEDIR, ["file_handle"]),
    ("GetFileInformationByHandle", GROUP_FILEDIR, ["file_handle", "buffer"]),
    ("SetEndOfFile", GROUP_FILEDIR, ["file_handle"]),
    (
        "GetFileTime",
        GROUP_FILEDIR,
        ["file_handle", "filetime_ptr", "filetime_ptr", "filetime_ptr"],
    ),
    (
        "SetFileTime",
        GROUP_FILEDIR,
        ["file_handle", "filetime_ptr", "filetime_ptr", "filetime_ptr"],
    ),
    ("FileTimeToSystemTime", GROUP_FILEDIR, ["filetime_ptr", "systemtime_ptr"]),
    ("SystemTimeToFileTime", GROUP_FILEDIR, ["systemtime_ptr", "filetime_ptr"]),
    ("FileTimeToLocalFileTime", GROUP_FILEDIR, ["filetime_ptr", "filetime_ptr"]),
    ("CompareFileTime", GROUP_FILEDIR, ["filetime_ptr", "filetime_ptr"]),
    ("FindFirstFileA", GROUP_FILEDIR, ["filename", "buffer"]),
    ("FindNextFileA", GROUP_FILEDIR, ["handle", "buffer"]),
    ("FindClose", GROUP_FILEDIR, ["handle"]),
    ("GetFullPathNameA", GROUP_FILEDIR, ["filename", "dword", "buffer", "buffer"]),
    ("GetTempPathA", GROUP_FILEDIR, ["dword", "buffer"]),
    ("GetTempFileNameA", GROUP_FILEDIR, ["filename", "cstring", "dword", "buffer"]),
    (
        "SearchPathA",
        GROUP_FILEDIR,
        ["filename", "filename", "cstring", "dword", "buffer", "buffer"],
    ),
    ("GetShortPathNameA", GROUP_FILEDIR, ["filename", "buffer", "dword"]),
    ("GetDriveTypeA", GROUP_FILEDIR, ["filename"]),
    (
        "GetDiskFreeSpaceA",
        GROUP_FILEDIR,
        ["filename", "buffer", "buffer", "buffer", "buffer"],
    ),
    ("GetLogicalDrives", GROUP_FILEDIR, []),
    ("AreFileApisANSI", GROUP_FILEDIR, []),
    ("SetHandleCount", GROUP_FILEDIR, ["dword"]),
    # -- I/O Primitives (15, the paper's exact list) -------------------------
    ("AttachThreadInput", GROUP_IO, ["dword", "dword", "bool_val"]),
    ("CloseHandle", GROUP_IO, ["handle"]),
    (
        "DuplicateHandle",
        GROUP_IO,
        [
            "process_handle", "handle", "process_handle", "buffer",
            "dword", "bool_val", "dword",
        ],
    ),
    ("FlushFileBuffers", GROUP_IO, ["file_handle"]),
    ("GetStdHandle", GROUP_IO, ["std_handle_id"]),
    ("SetStdHandle", GROUP_IO, ["std_handle_id", "handle"]),
    ("LockFile", GROUP_IO, ["file_handle", "dword", "dword", "dword", "dword"]),
    (
        "LockFileEx",
        GROUP_IO,
        ["file_handle", "dword", "dword", "dword", "dword", "buffer"],
    ),
    ("ReadFile", GROUP_IO, ["file_handle", "buffer", "dword", "buffer", "buffer"]),
    ("ReadFileEx", GROUP_IO, ["file_handle", "buffer", "dword", "buffer", "buffer"]),
    ("SetFilePointer", GROUP_IO, ["file_handle", "long_offset", "buffer", "seek_whence"]),
    ("UnlockFile", GROUP_IO, ["file_handle", "dword", "dword", "dword", "dword"]),
    (
        "UnlockFileEx",
        GROUP_IO,
        ["file_handle", "dword", "dword", "dword", "buffer"],
    ),
    ("WriteFile", GROUP_IO, ["file_handle", "buffer", "dword", "buffer", "buffer"]),
    ("WriteFileEx", GROUP_IO, ["file_handle", "buffer", "dword", "buffer", "buffer"]),
    # -- Process Primitives (38) ------------------------------------------------
    (
        "CreateProcessA",
        GROUP_PROCESS,
        [
            "filename", "cstring", "security_attributes", "security_attributes",
            "bool_val", "dword", "buffer", "filename", "buffer", "buffer",
        ],
    ),
    ("OpenProcess", GROUP_PROCESS, ["access_mode", "bool_val", "pid_val"]),
    ("TerminateProcess", GROUP_PROCESS, ["process_handle", "dword"]),
    ("GetExitCodeProcess", GROUP_PROCESS, ["process_handle", "buffer"]),
    ("GetPriorityClass", GROUP_PROCESS, ["process_handle"]),
    (
        "CreateThread",
        GROUP_PROCESS,
        [
            "security_attributes", "size", "buffer", "buffer", "dword", "buffer",
        ],
    ),
    ("TerminateThread", GROUP_PROCESS, ["thread_handle", "dword"]),
    ("SuspendThread", GROUP_PROCESS, ["thread_handle"]),
    ("ResumeThread", GROUP_PROCESS, ["thread_handle"]),
    ("GetExitCodeThread", GROUP_PROCESS, ["thread_handle", "buffer"]),
    ("GetThreadPriority", GROUP_PROCESS, ["thread_handle"]),
    ("SetThreadPriority", GROUP_PROCESS, ["thread_handle", "int_val"]),
    ("SetThreadAffinityMask", GROUP_PROCESS, ["thread_handle", "dword"]),
    ("GetThreadContext", GROUP_PROCESS, ["thread_handle", "context_ptr"]),
    ("SetThreadContext", GROUP_PROCESS, ["thread_handle", "context_ptr"]),
    ("WaitForSingleObject", GROUP_PROCESS, ["waitable_handle", "timeout_ms"]),
    (
        "WaitForMultipleObjects",
        GROUP_PROCESS,
        ["wait_count", "handle_array", "bool_val", "timeout_ms"],
    ),
    (
        "MsgWaitForMultipleObjects",
        GROUP_PROCESS,
        ["wait_count", "handle_array", "bool_val", "timeout_ms", "dword"],
    ),
    (
        "MsgWaitForMultipleObjectsEx",
        GROUP_PROCESS,
        ["wait_count", "handle_array", "timeout_ms", "dword", "dword"],
    ),
    (
        "SignalObjectAndWait",
        GROUP_PROCESS,
        ["waitable_handle", "waitable_handle", "timeout_ms", "bool_val"],
    ),
    (
        "CreateEventA",
        GROUP_PROCESS,
        ["security_attributes", "bool_val", "bool_val", "cstring"],
    ),
    ("SetEvent", GROUP_PROCESS, ["waitable_handle"]),
    ("ResetEvent", GROUP_PROCESS, ["waitable_handle"]),
    ("PulseEvent", GROUP_PROCESS, ["waitable_handle"]),
    ("OpenEventA", GROUP_PROCESS, ["access_mode", "bool_val", "cstring"]),
    ("CreateMutexA", GROUP_PROCESS, ["security_attributes", "bool_val", "cstring"]),
    ("ReleaseMutex", GROUP_PROCESS, ["waitable_handle"]),
    (
        "CreateSemaphoreA",
        GROUP_PROCESS,
        ["security_attributes", "int_val", "int_val", "cstring"],
    ),
    ("ReleaseSemaphore", GROUP_PROCESS, ["waitable_handle", "int_val", "buffer"]),
    (
        "CreateWaitableTimerA",
        GROUP_PROCESS,
        ["security_attributes", "bool_val", "cstring"],
    ),
    ("InterlockedIncrement", GROUP_PROCESS, ["interlocked_ptr"]),
    ("InterlockedDecrement", GROUP_PROCESS, ["interlocked_ptr"]),
    ("InterlockedExchange", GROUP_PROCESS, ["interlocked_ptr", "int_val"]),
    (
        "InterlockedCompareExchange",
        GROUP_PROCESS,
        ["interlocked_ptr", "int_val", "int_val"],
    ),
    (
        "ReadProcessMemory",
        GROUP_PROCESS,
        ["process_handle", "buffer", "buffer", "size", "buffer"],
    ),
    (
        "WriteProcessMemory",
        GROUP_PROCESS,
        ["process_handle", "buffer", "buffer", "size", "buffer"],
    ),
    ("Sleep", GROUP_PROCESS, ["timeout_ms"]),
    ("SleepEx", GROUP_PROCESS, ["timeout_ms", "bool_val"]),
    # -- Process Environment (35) --------------------------------------------------
    ("GetEnvironmentVariableA", GROUP_ENV, ["env_name", "buffer", "dword"]),
    ("SetEnvironmentVariableA", GROUP_ENV, ["env_name", "cstring"]),
    ("GetEnvironmentStrings", GROUP_ENV, []),
    ("FreeEnvironmentStringsA", GROUP_ENV, ["buffer"]),
    ("ExpandEnvironmentStringsA", GROUP_ENV, ["cstring", "buffer", "dword"]),
    ("GetCommandLineA", GROUP_ENV, []),
    ("GetModuleFileNameA", GROUP_ENV, ["handle", "buffer", "dword"]),
    ("GetModuleHandleA", GROUP_ENV, ["cstring"]),
    ("GetStartupInfoA", GROUP_ENV, ["buffer"]),
    ("GetSystemInfo", GROUP_ENV, ["buffer"]),
    ("GetVersion", GROUP_ENV, []),
    ("GetVersionExA", GROUP_ENV, ["buffer"]),
    ("GetComputerNameA", GROUP_ENV, ["buffer", "buffer"]),
    ("SetComputerNameA", GROUP_ENV, ["cstring"]),
    ("GetSystemDirectoryA", GROUP_ENV, ["buffer", "dword"]),
    ("GetWindowsDirectoryA", GROUP_ENV, ["buffer", "dword"]),
    ("GetSystemTime", GROUP_ENV, ["systemtime_ptr"]),
    ("SetSystemTime", GROUP_ENV, ["systemtime_ptr"]),
    ("GetLocalTime", GROUP_ENV, ["systemtime_ptr"]),
    ("SetLocalTime", GROUP_ENV, ["systemtime_ptr"]),
    ("GetTickCount", GROUP_ENV, []),
    ("GetLastError", GROUP_ENV, []),
    ("SetLastError", GROUP_ENV, ["dword"]),
    ("GetCurrentProcessId", GROUP_ENV, []),
    ("GetCurrentThreadId", GROUP_ENV, []),
    (
        "GetProcessTimes",
        GROUP_ENV,
        ["process_handle", "filetime_ptr", "filetime_ptr", "filetime_ptr", "filetime_ptr"],
    ),
    (
        "GetThreadTimes",
        GROUP_ENV,
        ["thread_handle", "filetime_ptr", "filetime_ptr", "filetime_ptr", "filetime_ptr"],
    ),
    ("GetSystemTimeAsFileTime", GROUP_ENV, ["filetime_ptr"]),
    ("QueryPerformanceCounter", GROUP_ENV, ["buffer"]),
    ("QueryPerformanceFrequency", GROUP_ENV, ["buffer"]),
    ("IsBadReadPtr", GROUP_ENV, ["buffer", "size"]),
    ("IsBadWritePtr", GROUP_ENV, ["buffer", "size"]),
    ("IsBadStringPtrA", GROUP_ENV, ["cstring", "size"]),
    ("GetProcessHeap", GROUP_ENV, []),
    ("GetProcessVersion", GROUP_ENV, ["dword"]),
]

#: The 71-call subset Windows CE 2.11 implements.
CE_SYSCALLS = frozenset(
    {
        # Memory Management (14)
        "VirtualAlloc", "VirtualFree", "VirtualProtect", "VirtualQuery",
        "HeapCreate", "HeapDestroy", "HeapAlloc", "HeapFree", "HeapReAlloc",
        "HeapSize", "HeapValidate", "HeapCompact", "LocalAlloc", "LocalFree",
        # File/Directory Access (18)
        "CreateFileA", "DeleteFileA", "CopyFileA", "MoveFileA",
        "CreateDirectoryA", "RemoveDirectoryA", "GetFileAttributesA",
        "SetFileAttributesA", "GetFileSize", "GetFileTime", "SetFileTime",
        "GetFileInformationByHandle", "FileTimeToSystemTime",
        "SystemTimeToFileTime", "FindFirstFileA", "FindNextFileA",
        "FindClose", "SetEndOfFile",
        # I/O Primitives (8)
        "CloseHandle", "DuplicateHandle", "FlushFileBuffers", "GetStdHandle",
        "SetStdHandle", "ReadFile", "WriteFile", "SetFilePointer",
        # Process Primitives (25)
        "CreateProcessA", "TerminateProcess", "GetExitCodeProcess",
        "CreateThread", "SuspendThread", "ResumeThread", "GetExitCodeThread",
        "GetThreadContext", "SetThreadContext", "WaitForSingleObject",
        "WaitForMultipleObjects", "MsgWaitForMultipleObjects",
        "MsgWaitForMultipleObjectsEx", "CreateEventA", "SetEvent",
        "ResetEvent", "OpenEventA", "CreateMutexA", "ReleaseMutex",
        "CreateSemaphoreA", "ReleaseSemaphore", "InterlockedIncrement",
        "InterlockedDecrement", "InterlockedExchange", "ReadProcessMemory",
        # Process Environment (6)
        "GetTickCount", "GetLastError", "SetLastError", "GetVersion",
        "GetSystemTime", "GetLocalTime",
    }
)

assert "Sleep" not in CE_SYSCALLS  # CE uses its own scheduling services


def register(registry: MuTRegistry) -> None:
    """Register the 143 Win32 system-call MuTs."""
    all_windows = frozenset(p.key for p in WINDOWS_VARIANTS)
    desktop_only = all_windows - {"wince"}
    for name, group, params in WIN32_CALLS:
        platforms = all_windows if name in CE_SYSCALLS else desktop_only
        registry.add(name, "win32", group, params, platforms=platforms)
