"""Win32 Process Environment API (35 MuTs).

Mostly user-mode kernel32 services: environment blocks, module and
machine identity, and timing.  Struct out-parameters are written in user
mode (``GetStartupInfoA`` really does fault on a bad pointer on NT),
while ``Set*Time`` style calls go through the probed kernel boundary.
"""

from __future__ import annotations

from repro.win32 import errors as W

_U32 = 0xFFFF_FFFF


class EnvApiMixin:
    """Environment, identity, and timing services."""

    # ------------------------------------------------------------------
    # Environment variables
    # ------------------------------------------------------------------

    def GetEnvironmentVariableA(self, lpName: int, lpBuffer: int, nSize: int) -> int:
        name = self._scan_string(lpName)
        value = self.process.environ.get(name)
        if value is None:
            return self.fail(W.ERROR_ENVVAR_NOT_FOUND)
        encoded = value.encode("latin-1") + b"\x00"
        if (nSize & _U32) < len(encoded):
            return len(encoded)
        self.mem.write(lpBuffer, encoded)  # user-mode store
        return len(encoded) - 1

    def SetEnvironmentVariableA(self, lpName: int, lpValue: int) -> int:
        name = self._scan_string(lpName)
        if not name or "=" in name:
            if not self.personality.lax_flag_validation:
                return self.fail(W.ERROR_INVALID_PARAMETER)
        if lpValue == 0:
            self.process.environ.pop(name, None)
            return 1
        self.process.environ[name] = self._scan_string(lpValue)
        return 1

    def GetEnvironmentStrings(self) -> int:
        block = b"".join(
            f"{key}={value}".encode("latin-1") + b"\x00"
            for key, value in sorted(self.process.environ.items())
        ) + b"\x00"
        return self.mem.alloc(block, tag="environ")

    def FreeEnvironmentStringsA(self, lpszEnvironmentBlock: int) -> int:
        region = self.mem.find(lpszEnvironmentBlock)
        if (
            region is None
            or region.start != (lpszEnvironmentBlock & _U32)
            or region.tag != "environ"
        ):
            if self.lax_handles:
                return 1
            return self.fail(W.ERROR_INVALID_PARAMETER)
        self.mem.unmap(region)
        return 1

    def ExpandEnvironmentStringsA(self, lpSrc: int, lpDst: int, nSize: int) -> int:
        text = self._scan_string(lpSrc)
        out = text
        for key, value in self.process.environ.items():
            out = out.replace(f"%{key}%", value)
        encoded = out.encode("latin-1") + b"\x00"
        if (nSize & _U32) < len(encoded):
            return len(encoded)
        self.mem.write(lpDst, encoded)  # user-mode store
        return len(encoded)

    # ------------------------------------------------------------------
    # Process / module identity
    # ------------------------------------------------------------------

    def GetCommandLineA(self) -> int:
        if not hasattr(self, "_command_line_addr"):
            self._command_line_addr = self.mem.alloc(
                b"ballista_test.exe\x00", tag="cmdline"
            )
        return self._command_line_addr

    def GetModuleFileNameA(self, hModule: int, lpFilename: int, nSize: int) -> int:
        if hModule not in (0, self.process.code_region.start):
            if not self.lax_handles:
                return self.fail(W.ERROR_INVALID_HANDLE)
        path = b"C:\\BALLISTA\\ballista_test.exe\x00"
        count = min(len(path), nSize & _U32)
        self.mem.write(lpFilename, path[:count])  # user-mode store
        return max(count - 1, 0)

    def GetModuleHandleA(self, lpModuleName: int) -> int:
        if lpModuleName == 0:
            return self.process.code_region.start  # image base
        name = self._scan_string(lpModuleName)
        if name.lower() in ("kernel32", "kernel32.dll", "ballista_test.exe"):
            return self.process.code_region.start
        return self.fail(W.ERROR_FILE_NOT_FOUND)

    def GetStartupInfoA(self, lpStartupInfo: int) -> None:
        blob = bytearray(68)
        blob[0:4] = (68).to_bytes(4, "little")  # cb
        # kernel32 fills STARTUPINFO in user mode -- bad pointers fault
        # on every Windows variant, NT included.
        self.mem.write(lpStartupInfo, bytes(blob))

    def GetCurrentProcessId(self) -> int:
        return self.process.pid

    def GetCurrentThreadId(self) -> int:
        return self.process.main_thread.tid

    def GetProcessVersion(self, ProcessId: int) -> int:
        if (ProcessId & _U32) in (0, self.process.pid):
            return 0x0004_0000  # 4.0
        return self.fail(W.ERROR_INVALID_PARAMETER)

    def GetProcessHeap(self) -> int:
        from repro.sim.objects import HeapObject

        if not hasattr(self, "_process_heap"):
            self._process_heap = self.process.handles.insert(
                HeapObject(0x1000, 0)
            )
        return self._process_heap

    # ------------------------------------------------------------------
    # System identity
    # ------------------------------------------------------------------

    def GetSystemInfo(self, lpSystemInfo: int) -> None:
        blob = bytearray(36)
        blob[0:4] = (0).to_bytes(4, "little")  # PROCESSOR_ARCHITECTURE_INTEL
        blob[4:8] = (0x1000).to_bytes(4, "little")  # page size
        blob[20:24] = (1).to_bytes(4, "little")  # processors
        self.mem.write(lpSystemInfo, bytes(blob))  # user-mode store

    def GetVersion(self) -> int:
        return {
            "9x": 0xC000_0004,
            "nt": 0x0000_0004,
            "ce": 0x0002_0004,
        }.get(self.personality.family, 0x0000_0004)

    def GetVersionExA(self, lpVersionInformation: int) -> int:
        size = self.mem.read_u32(lpVersionInformation)  # user-mode read
        if size != 148:
            if not self.personality.lax_flag_validation:
                return self.fail(W.ERROR_INVALID_PARAMETER)
        blob = bytearray(148)
        blob[0:4] = (148).to_bytes(4, "little")
        blob[4:8] = (4).to_bytes(4, "little")  # major
        self.mem.write(lpVersionInformation, bytes(blob))
        return 1

    def GetComputerNameA(self, lpBuffer: int, nSize: int) -> int:
        length = self.mem.read_u32(nSize)  # in/out size parameter
        name = b"BALLISTA-PC\x00"
        if length < len(name):
            self.mem.write_u32(nSize, len(name))
            return self.fail(W.ERROR_INSUFFICIENT_BUFFER)
        self.mem.write(lpBuffer, name)
        self.mem.write_u32(nSize, len(name) - 1)
        return 1

    def SetComputerNameA(self, lpComputerName: int) -> int:
        name = self._scan_string(lpComputerName)
        if not name or len(name) > 15 or any(c in name for c in " \\/:*?\"<>|"):
            return self.fail(W.ERROR_INVALID_PARAMETER)
        return 1

    def GetSystemDirectoryA(self, lpBuffer: int, uSize: int) -> int:
        return self._copy_path_out("C:\\WINDOWS\\SYSTEM", lpBuffer, uSize)

    def GetWindowsDirectoryA(self, lpBuffer: int, uSize: int) -> int:
        return self._copy_path_out("C:\\WINDOWS", lpBuffer, uSize)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def _write_systemtime(self, address: int) -> None:
        from repro.libc.time_funcs import _civil_from_unix

        year, mon, day, hour, minute, sec, wday, _ = _civil_from_unix(
            self.machine.clock.unix_seconds()
        )
        fields = [year, mon + 1, wday, day, hour, minute, sec, 0]
        blob = b"".join(f.to_bytes(2, "little") for f in fields)
        self.mem.write(address, blob)  # user-mode store (shared data page)

    def GetSystemTime(self, lpSystemTime: int) -> None:
        self._write_systemtime(lpSystemTime)

    def GetLocalTime(self, lpSystemTime: int) -> None:
        self._write_systemtime(lpSystemTime)

    def _set_time_common(self, func: str, lpSystemTime: int) -> int:
        raw = self.copy_in(func, lpSystemTime, 16)
        if raw is None:
            return self.fail(W.ERROR_NOACCESS)
        year = int.from_bytes(raw[0:2], "little")
        month = int.from_bytes(raw[2:4], "little")
        day = int.from_bytes(raw[6:8], "little")
        if not (1601 <= year <= 30827 and 1 <= month <= 12 and 1 <= day <= 31):
            if not self.personality.lax_flag_validation:
                return self.fail(W.ERROR_INVALID_PARAMETER)
        return 1

    def SetSystemTime(self, lpSystemTime: int) -> int:
        return self._set_time_common("SetSystemTime", lpSystemTime)

    def SetLocalTime(self, lpSystemTime: int) -> int:
        return self._set_time_common("SetLocalTime", lpSystemTime)

    def GetTickCount(self) -> int:
        return self.machine.clock.tick_count() & _U32

    def GetSystemTimeAsFileTime(self, lpSystemTimeAsFileTime: int) -> None:
        from repro.win32.file_api import EPOCH_DELTA_100NS

        value = self.machine.clock.unix_seconds() * 10_000_000 + EPOCH_DELTA_100NS
        self.mem.write_u64(lpSystemTimeAsFileTime, value)  # user-mode store

    def GetProcessTimes(
        self,
        hProcess: int,
        lpCreationTime: int,
        lpExitTime: int,
        lpKernelTime: int,
        lpUserTime: int,
    ) -> int:
        target = self._process_or_fail(hProcess)
        if target is None:
            return 1 if self.lax_handles else 0
        for pointer in (lpCreationTime, lpExitTime, lpKernelTime, lpUserTime):
            if not self.copy_out("GetProcessTimes", pointer, b"\x00" * 8):
                return self.fail(W.ERROR_NOACCESS)
        return 1

    def GetThreadTimes(
        self,
        hThread: int,
        lpCreationTime: int,
        lpExitTime: int,
        lpKernelTime: int,
        lpUserTime: int,
    ) -> int:
        thread = self._thread_or_fail(hThread)
        if thread is None:
            return 1 if self.lax_handles else 0
        for pointer in (lpCreationTime, lpExitTime, lpKernelTime, lpUserTime):
            if not self.copy_out("GetThreadTimes", pointer, b"\x00" * 8):
                return self.fail(W.ERROR_NOACCESS)
        return 1

    def QueryPerformanceCounter(self, lpPerformanceCount: int) -> int:
        ticks = self.machine.clock.ticks * 1000
        if not self.copy_out(
            "QueryPerformanceCounter", lpPerformanceCount, ticks.to_bytes(8, "little")
        ):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def QueryPerformanceFrequency(self, lpFrequency: int) -> int:
        if not self.copy_out(
            "QueryPerformanceFrequency", lpFrequency, (1_000_000).to_bytes(8, "little")
        ):
            return self.fail(W.ERROR_NOACCESS)
        return 1

    def GetLastError(self) -> int:
        return self.process.last_error

    def SetLastError(self, dwErrCode: int) -> None:
        # Direct slot write -- not an error *report* by the callee.
        self.process.last_error = dwErrCode & _U32

    # ------------------------------------------------------------------
    # Pointer probes (documented never to fault)
    # ------------------------------------------------------------------

    def IsBadReadPtr(self, lp: int, ucb: int) -> int:
        size = ucb & _U32
        if size == 0:
            return 0
        return 0 if self.mem.is_mapped(lp & _U32, min(size, 1 << 20)) else 1

    def IsBadWritePtr(self, lp: int, ucb: int) -> int:
        from repro.sim.memory import Protection

        size = ucb & _U32
        if size == 0:
            return 0
        region = self.mem.find(lp)
        if region is None or (lp & _U32) + min(size, 1 << 20) > region.end:
            return 1
        return 0 if region.protection & Protection.WRITE else 1

    def IsBadStringPtrA(self, lpsz: int, ucchMax: int) -> int:
        if lpsz == 0:
            return 1
        cursor = lpsz & _U32
        remaining = min(ucchMax & _U32, 1 << 16)
        while remaining:
            if not self.mem.is_mapped(cursor, 1):
                return 1
            if self.mem.read(cursor, 1) == b"\x00":
                return 0
            cursor += 1
            remaining -= 1
        return 0
