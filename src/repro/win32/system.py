"""The Win32 system facade: per-process API entry points.

Access discipline (this is where the per-variant robustness differences
come from):

* :meth:`Win32System._scan_string` / direct ``self.mem`` access model
  the **user-mode kernel32.dll side** of a call (ANSI string conversion,
  struct marshalling).  A bad pointer faults in user mode -> the task
  aborts -- on every Windows variant, NT included.  This is the
  mechanistic source of NT/2000's non-trivial system-call Abort rates.
* :meth:`Win32System.copy_out` / :meth:`Win32System.copy_in` model the
  **kernel transition**.  NT/2000 probe (graceful
  ``ERROR_NOACCESS``); the 9x/CE personalities leave the functions in
  their Table-3 sets unprotected (immediate crash) or misdirected into
  the shared arena (creeping corruption).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.errors import ThrownException
from repro.sim.guarded import kernel_copy_from_user, kernel_copy_to_user
from repro.sim.objects import (
    CURRENT_PROCESS_HANDLE,
    CURRENT_THREAD_HANDLE,
    KernelObject,
    ProcessObject,
    ThreadObject,
)
from repro.win32 import errors as W
from repro.win32.env_api import EnvApiMixin
from repro.win32.file_api import FileApiMixin
from repro.win32.io_api import IoApiMixin
from repro.win32.memory_api import MemoryApiMixin
from repro.win32.process_api import ProcessApiMixin

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.process import Process

_U32 = 0xFFFF_FFFF


class Win32System(
    MemoryApiMixin, FileApiMixin, IoApiMixin, ProcessApiMixin, EnvApiMixin
):
    """All Win32 API entry points for one simulated process."""

    def __init__(self, process: "Process") -> None:
        self.process = process
        self.machine = process.machine
        self.mem = process.memory
        self.personality = process.personality
        self.error_reported = False
        #: Std handle slots (STD_INPUT_HANDLE.. as keys), lazily filled.
        self._std_handles: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Error reporting
    # ------------------------------------------------------------------

    def set_last_error(self, code: int) -> None:
        self.process.last_error = code
        if code != W.ERROR_SUCCESS:
            self.error_reported = True

    def fail(self, code: int, ret: int = 0) -> int:
        """Report ``code`` through GetLastError and return ``ret``."""
        self.set_last_error(code)
        return ret

    def throw(self, value: object, recoverable: bool = True) -> None:
        """Raise a Win32 thrown-exception error report."""
        raise ThrownException(value, recoverable)

    def _fs_fail(self, exc, ret: int = 0) -> int:
        code = W.FS_CODE_TO_WIN32.get(exc.code, W.ERROR_INVALID_PARAMETER)
        if code == W.ERROR_FILE_NOT_FOUND and self.personality.confuses_path_errors:
            # 9x reports the wrong (but non-empty) error indication: a
            # Hindering failure in CRASH terms.
            code = W.ERROR_PATH_NOT_FOUND
        return self.fail(code, ret)

    # ------------------------------------------------------------------
    # Handle resolution
    # ------------------------------------------------------------------

    def resolve_handle(self, handle: int) -> KernelObject | None:
        """Resolve a HANDLE (including pseudo-handles) to its object, or
        ``None`` -- with no error reporting, callers decide."""
        handle &= _U32
        if handle == CURRENT_PROCESS_HANDLE:
            return self.process.kernel_object
        if handle == CURRENT_THREAD_HANDLE:
            return self.process.main_thread
        obj = self.process.handles.get(handle)
        if obj is None or obj.destroyed:
            return None
        return obj

    def object_or_fail(
        self, handle: int, kind: type[KernelObject] | None = None
    ) -> KernelObject | None:
        """Resolve a handle; on failure report ``ERROR_INVALID_HANDLE``
        (strict kernels) or nothing at all (lax 9x validation -- the
        caller will then fabricate success, a Silent failure)."""
        obj = self.resolve_handle(handle)
        if obj is not None and (kind is None or isinstance(obj, kind)):
            return obj
        if not self.personality.lax_handle_validation:
            self.set_last_error(W.ERROR_INVALID_HANDLE)
        return None

    @property
    def lax_handles(self) -> bool:
        return self.personality.lax_handle_validation

    # ------------------------------------------------------------------
    # Kernel-boundary pointer access (probed / raw / corrupting)
    # ------------------------------------------------------------------

    def copy_out(self, func: str, address: int, data: bytes) -> bool:
        """Kernel writes ``data`` through a caller pointer."""
        return kernel_copy_to_user(self.machine, self.mem, func, address, data)

    def copy_in(self, func: str, address: int, size: int) -> bytes | None:
        """Kernel reads ``size`` bytes through a caller pointer."""
        return kernel_copy_from_user(self.machine, self.mem, func, address, size)

    # ------------------------------------------------------------------
    # User-mode (kernel32.dll) access helpers
    # ------------------------------------------------------------------

    def _scan_string(self, address: int) -> str:
        """ANSI string pickup in user mode (kernel32's ANSI->Unicode
        conversion layer).  Faults on bad pointers on every variant."""
        return self.mem.read_cstring(address, limit=1 << 16).decode("latin-1")

    def _flags_valid(self, value: int, known_mask: int) -> bool:
        """Flag validation: strict kernels reject undefined bits, lax
        (9x) kernels ignore them."""
        if self.personality.lax_flag_validation:
            return True
        return (value & ~known_mask & _U32) == 0

    def _thread_or_fail(self, handle: int) -> ThreadObject | None:
        obj = self.object_or_fail(handle, ThreadObject)
        return obj  # type: ignore[return-value]

    def _process_or_fail(self, handle: int) -> ProcessObject | None:
        obj = self.object_or_fail(handle, ProcessObject)
        return obj  # type: ignore[return-value]
