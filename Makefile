# Convenience entry points; CI runs the same invocations.

PYTHON ?= python

.PHONY: test lint lint-report lint-baseline bench-lint

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

lint:
	PYTHONPATH=src $(PYTHON) -m repro lint --fail-on-new

lint-report:
	PYTHONPATH=src $(PYTHON) -m repro lint --fail-on-new --report lint-report.json

lint-baseline:
	PYTHONPATH=src $(PYTHON) -m repro lint --write-baseline

bench-lint:
	PYTHONPATH=src $(PYTHON) -m pytest -q benchmarks/bench_lint.py
