# Convenience entry points; CI runs the same invocations.

PYTHON ?= python
# Base ref for `make lint-fast` (lint only files changed since BASE).
BASE ?= HEAD

.PHONY: test lint lint-fast lint-report lint-baseline bench-lint

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

lint:
	PYTHONPATH=src $(PYTHON) -m repro lint --fail-on-new

# Pre-commit mode: whole-project call graph, findings filtered to files
# changed since $(BASE).  Warm summary cache makes this near-instant.
lint-fast:
	PYTHONPATH=src $(PYTHON) -m repro lint --fail-on-new --diff $(BASE)

lint-report:
	PYTHONPATH=src $(PYTHON) -m repro lint --fail-on-new --report lint-report.json

lint-baseline:
	PYTHONPATH=src $(PYTHON) -m repro lint --write-baseline

bench-lint:
	PYTHONPATH=src $(PYTHON) -m pytest -q benchmarks/bench_lint.py
