"""Byte-identity proofs for the hot-path optimizations.

The committed references under ``tests/golden/hotpath/`` were generated
by ``benchmarks/make_hotpath_refs.py`` *before* the copy-on-write
snapshot / memoized-pool optimizations landed.  These tests regenerate
every reference in-process and compare bytes: the optimized hot path
must produce exactly what the unoptimized code did -- result sets,
checkpoints, the rendered Table 1, and the wall-clock-stripped telemetry
event stream, in case mode and sequence mode, serial and parallel and
sharded.

The second half proves the copy-on-write claims directly at the
lifecycle level: ``Machine.revert()`` (the ``machine_per_case``
ablation's per-case isolation) is byte-equivalent to a cold
``Machine()`` rebuild across every outcome class, including
CRASH-scale machine crashes, FAULT_ATOMICITY residue snapshots under
injected faults, and dirty-machine sequence campaigns.
"""

import gzip
import importlib.util
import json
import pathlib

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.context import TestContext
from repro.core.crash_scale import CaseCode
from repro.core.executor import Executor
from repro.core.generator import CaseGenerator, TestCase
from repro.core.mut import default_registry
from repro.core.parallel import ParallelCampaign
from repro.core.results_io import results_to_dict
from repro.core.types import default_types
from repro.obs import MemoryRecorder, strip_wall, variant_stream
from repro.sim.machine import Machine
from repro.win32.variants import WIN98, WINNT

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
GOLDEN_DIR = pathlib.Path(__file__).parent / "golden" / "hotpath"

#: Spans both APIs and, on win98, every paper failure class the case
#: campaign can produce (GetThreadContext crashes the machine).
SUBSET = ["GetThreadContext", "CloseHandle", "strcpy", "isalpha", "fclose"]

#: Under an armed "handles" fault CreateFileA creates the file node and
#: then fails inserting the handle: a failed call that left durable wear
#: -- the FAULT_ATOMICITY residue case.
ATOMIC_VALUES = (
    "FN_MISSING",
    "AM_WRITE",
    "SM_ZERO",
    "SA_NULL",
    "CD_CREATE_NEW",
    "FA_NORMAL",
    "H_NULL",
)


def _load_refs_module():
    """Import ``benchmarks/make_hotpath_refs.py`` (not a package)."""
    path = REPO_ROOT / "benchmarks" / "make_hotpath_refs.py"
    spec = importlib.util.spec_from_file_location("make_hotpath_refs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def golden_bytes(name: str) -> bytes:
    """The committed reference, transparently gunzipping the large ones."""
    gz = GOLDEN_DIR / (name + ".gz")
    if gz.exists():
        return gzip.decompress(gz.read_bytes())
    return (GOLDEN_DIR / name).read_bytes()


def dumps(payload) -> str:
    return json.dumps(payload, separators=(",", ":"))


# ----------------------------------------------------------------------
# Full regeneration against the committed pre-optimization references
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def regenerated(tmp_path_factory) -> pathlib.Path:
    refs = _load_refs_module()
    outdir = tmp_path_factory.mktemp("hotpath_refs")
    refs.generate(outdir)
    return outdir


@pytest.mark.parametrize(
    "name",
    [
        "results.json",
        "checkpoint.json",
        "table1.txt",
        "events.jsonl",
        "seq_results.json",
        "seq_table.txt",
    ],
)
def test_fast_path_reproduces_committed_reference(regenerated, name):
    assert (regenerated / name).read_bytes() == golden_bytes(name), (
        f"{name} drifted from the pre-optimization reference; the hot "
        "path is no longer byte-identical (regenerate deliberately with "
        "benchmarks/make_hotpath_refs.py only if the format itself "
        "changed)"
    )


def test_parallel_run_matches_reference_results():
    refs = _load_refs_module()
    results = ParallelCampaign(
        refs.VARIANTS, config=CampaignConfig(cap=refs.CAP), jobs=2
    ).run()
    golden = json.loads(golden_bytes("results.json"))
    assert dumps(results_to_dict(results)) == dumps(golden)


def test_sharded_run_matches_reference_results():
    refs = _load_refs_module()
    results = ParallelCampaign(
        refs.VARIANTS, config=CampaignConfig(cap=refs.CAP), jobs=2, shards=2
    ).run()
    golden = json.loads(golden_bytes("results.json"))
    assert dumps(results_to_dict(results)) == dumps(golden)


# ----------------------------------------------------------------------
# COW revert == cold rebuild
# ----------------------------------------------------------------------


def _cold_revert(self: Machine) -> None:
    """Oracle: a genuine cold rebuild, in place.  Re-running ``__init__``
    on the machine object is exactly the ``Machine(personality, ...)``
    construction ``revert()`` claims to be equivalent to (the global
    kernel-object id counter advances identically either way)."""
    Machine.__init__(self, self.personality, self.watchdog_ticks, self.fs_max_files)


class TestRevertEqualsColdRebuild:
    def _run(self, config: CampaignConfig):
        recorder = MemoryRecorder()
        results = Campaign([WIN98, WINNT], config=config, muts=SUBSET).run(
            recorder=recorder
        )
        streams = {
            variant: [
                strip_wall(record)
                for record in variant_stream(recorder.records, variant)
            ]
            for variant in ("win98", "winnt")
        }
        return dumps(results_to_dict(results)), streams

    def test_machine_per_case_ablation(self, monkeypatch):
        """The per-case isolation ablation through ``revert()`` is
        byte-identical -- results *and* telemetry streams, simulated
        ticks included -- to rebuilding the machine for every case."""
        config = CampaignConfig(cap=60, machine_per_case=True)
        fast_results, fast_streams = self._run(config)
        monkeypatch.setattr(Machine, "revert", _cold_revert)
        cold_results, cold_streams = self._run(config)
        assert fast_results == cold_results
        assert fast_streams == cold_streams
        # The subset genuinely exercises the crash class: a campaign
        # that never crashes proves nothing about post-crash reverts.
        assert f'"code":{int(CaseCode.CATASTROPHIC)}' in dumps(
            fast_streams["win98"]
        )

    def test_crash_scale_reboot_equals_fresh_boot(self):
        """After a CRASH-scale outcome the campaign reboots the machine
        through the snapshot restore; the durable wear it leaves must be
        what a factory-fresh machine has."""
        machine = Machine(WIN98)
        registry = default_registry()
        executor = Executor(machine, CaseGenerator(default_types(), cap=60))
        mut = registry.get("win32", "GetThreadContext")
        crashed = None
        for case in executor.generator.cases(mut):
            outcome = executor.run_case(mut, case)
            if outcome.code is CaseCode.CATASTROPHIC:
                crashed = outcome
                break
        assert crashed is not None, "GetThreadContext must crash win98"
        assert machine.crashed
        machine.reboot()
        fresh = Machine(WIN98)
        assert machine.wear_residue() == fresh.wear_residue()
        assert not machine.crashed
        # Reboot carries the monotone clock and reboot count; revert
        # resets both -- full equivalence with a cold construction.
        assert machine.reboot_count == 1
        machine.revert()
        assert machine.reboot_count == fresh.reboot_count == 0
        assert machine.clock.ticks == fresh.clock.ticks == 0
        assert machine.wear_residue() == fresh.wear_residue()

    def test_fault_atomicity_residue_on_reverted_machine(self):
        """The FAULT_ATOMICITY residue snapshot (a wear-fingerprint
        comparison around the injected call) classifies identically on a
        cold machine and on a machine that ran a case and was reverted:
        the memoized fingerprint must not survive the revert."""
        registry = default_registry()
        mut = registry.get("win32", "CreateFileA")
        case = TestCase(mut.name, 0, ATOMIC_VALUES)

        def run_atomic(machine: Machine):
            ctx = TestContext(machine, machine.spawn_process())
            executor = Executor(machine, CaseGenerator(default_types(), cap=40))
            machine.faults.arm("handles")
            try:
                return executor.run_step(ctx, mut, case, inject_fault=True)
            finally:
                machine.faults.disarm()

        cold = Machine(WIN98)
        first = run_atomic(cold)
        assert first.code is CaseCode.FAULT_ATOMICITY
        assert "wear residue" in first.detail

        reverted = Machine(WIN98)
        run_atomic(reverted)  # dirty the machine (residue stays behind)
        reverted.revert()
        again = run_atomic(reverted)
        assert (again.code, again.detail, again.error_code) == (
            first.code,
            first.detail,
            first.error_code,
        )

    def test_dirty_machine_sequences_are_reproducible(self):
        """Dirty-machine sequence campaigns (no between-sequence reboot:
        maximum accumulated wear flowing through the memoized paths)
        reproduce byte-identically run over run, and identically under
        the parallel runner."""
        config = CampaignConfig(
            cap=40,
            mode="sequence",
            sequences=12,
            sequence_length=5,
            sequence_seed=7,
            dirty_machine=True,
        )
        first = Campaign([WIN98], config=config).run()
        second = Campaign([WIN98], config=config).run()
        assert dumps(results_to_dict(first)) == dumps(results_to_dict(second))
        parallel = ParallelCampaign([WIN98], config=config, jobs=2).run()
        assert dumps(results_to_dict(first)) == dumps(results_to_dict(parallel))
        # The wear the dirty run accumulates is observable (sequences
        # see predecessors' residue); assert the campaign recorded more
        # than the pass class so the equivalence is over real wear.
        codes = {
            int(code) for row in first.for_variant("win98") for code in row.codes
        }
        assert codes - {int(CaseCode.PASS_NO_ERROR)}
