"""Tests for Hindering estimation, result persistence, and the CLI."""

import json

import pytest

from repro.analysis.hindering import (
    estimate_hindering_rates,
    render_hindering,
)
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.crash_scale import CaseCode
from repro.core.results import ResultSet
from repro.core.results_io import (
    ResultFormatError,
    load_results,
    results_from_dict,
    results_to_dict,
    save_results,
)


# ----------------------------------------------------------------------
# Hindering
# ----------------------------------------------------------------------


class TestHindering:
    def test_9x_misreports_missing_file_errors(self, session_results):
        estimates = estimate_hindering_rates(session_results)
        key = ("win32", "DeleteFileA")
        for old in ("win95", "win98", "win98se"):
            assert estimates[old].per_mut[key] > 0, old
        assert estimates["winnt"].per_mut[key] == 0.0

    def test_reference_variant_scores_zero(self, session_results):
        estimates = estimate_hindering_rates(session_results)
        assert estimates["win2000"].per_mut == {}

    def test_nt_matches_2000(self, session_results):
        estimates = estimate_hindering_rates(session_results)
        assert estimates["winnt"].overall_rate() == pytest.approx(0.0, abs=0.002)

    def test_9x_overall_above_nt(self, session_results):
        estimates = estimate_hindering_rates(session_results)
        for old in ("win95", "win98", "win98se"):
            assert (
                estimates[old].overall_rate()
                > estimates["winnt"].overall_rate()
            )

    def test_examples_show_the_wrong_code(self, session_results):
        from repro.win32 import errors as W

        estimates = estimate_hindering_rates(session_results)
        delete_examples = [
            e
            for e in estimates["win98"].examples
            if e[0] == ("win32", "DeleteFileA")
        ]
        assert delete_examples
        _key, _index, subject_code, reference_code = delete_examples[0]
        assert subject_code == W.ERROR_PATH_NOT_FOUND
        assert reference_code == W.ERROR_FILE_NOT_FOUND

    def test_unknown_reference_rejected(self, session_results):
        with pytest.raises(ValueError, match="reference"):
            estimate_hindering_rates(session_results, reference="beos")

    def test_render(self, session_results):
        text = render_hindering(session_results)
        assert "Hindering failures" in text
        assert "win98" in text
        assert "common-mode" in text

    def test_alternate_reference(self, session_results):
        estimates = estimate_hindering_rates(session_results, reference="winnt")
        # With NT as the oracle, 2000 agrees perfectly.
        assert estimates["win2000"].overall_rate() == pytest.approx(0.0, abs=1e-9)


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_results(winnt, win98):
    return Campaign(
        [winnt, win98],
        config=CampaignConfig(cap=40),
        muts=["GetThreadContext", "strcpy", "DeleteFileA"],
    ).run()


class TestPersistence:
    def test_roundtrip_preserves_everything(self, small_results, tmp_path):
        path = tmp_path / "results.json"
        save_results(small_results, path)
        loaded = load_results(path)
        assert len(loaded) == len(small_results)
        for row in small_results:
            mirrored = loaded.get(row.variant, row.mut_name, api=row.api)
            assert bytes(mirrored.codes) == bytes(row.codes)
            assert bytes(mirrored.exceptional) == bytes(row.exceptional)
            assert mirrored.error_codes == row.error_codes
            assert mirrored.catastrophic == row.catastrophic
            assert mirrored.interference_crash == row.interference_crash
            assert mirrored.details == row.details
            assert mirrored.failing_cases == row.failing_cases
            assert mirrored.planned_cases == row.planned_cases

    def test_rates_survive_roundtrip(self, small_results, tmp_path):
        path = tmp_path / "results.json"
        save_results(small_results, path)
        loaded = load_results(path)
        assert loaded.uniform_rate("winnt", CaseCode.ABORT) == pytest.approx(
            small_results.uniform_rate("winnt", CaseCode.ABORT)
        )

    def test_dict_roundtrip(self, small_results):
        document = results_to_dict(small_results)
        rebuilt = results_from_dict(document)
        assert rebuilt.variants() == small_results.variants()

    def test_rejects_foreign_documents(self):
        with pytest.raises(ResultFormatError):
            results_from_dict({"format": "something-else"})
        with pytest.raises(ResultFormatError):
            results_from_dict({"format": "ballista-results", "version": 99})

    def test_rejects_malformed_rows(self):
        with pytest.raises(ResultFormatError):
            results_from_dict(
                {
                    "format": "ballista-results",
                    "version": 1,
                    "results": [{"variant": "x"}],
                }
            )

    def test_rejects_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ResultFormatError):
            load_results(path)

    def test_empty_resultset_roundtrip(self, tmp_path):
        path = tmp_path / "empty.json"
        save_results(ResultSet(), path)
        assert len(load_results(path)) == 0

    def test_document_is_plain_json(self, small_results, tmp_path):
        path = tmp_path / "results.json"
        save_results(small_results, path)
        document = json.loads(path.read_text())
        assert document["format"] == "ballista-results"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCli:
    def run_cli(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out

    def test_prints_requested_tables(self, capsys):
        code, out = self.run_cli(
            capsys,
            "--cap", "20",
            "--variants", "win98,winnt",
            "--tables", "table1,table3",
            "--quiet",
        )
        assert code == 0
        assert "Table 1" in out
        assert "Table 3" in out
        assert "Figure 2" not in out

    def test_save_and_load(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        self.run_cli(
            capsys,
            "--cap", "20",
            "--variants", "win98,winnt",
            "--tables", "table1",
            "--save", str(path),
            "--quiet",
        )
        assert path.exists()
        code, out = self.run_cli(
            capsys,
            "--load", str(path),
            "--variants", "win98,winnt",
            "--tables", "table1",
            "--quiet",
        )
        assert code == 0
        assert "Windows 98" in out

    def test_unknown_table_rejected(self, capsys):
        with pytest.raises(SystemExit):
            self.run_cli(capsys, "--tables", "tableX", "--quiet")

    def test_unknown_variant_rejected(self, capsys):
        with pytest.raises(SystemExit):
            self.run_cli(capsys, "--variants", "beos", "--quiet")

    def test_figure2_requires_desktop_variants(self, capsys):
        with pytest.raises(SystemExit):
            self.run_cli(
                capsys,
                "--variants", "linux",
                "--tables", "figure2",
                "--quiet",
            )


class TestCliExtras:
    def test_csv_flag_writes_files(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            [
                "--cap", "20",
                "--variants", "win98,winnt",
                "--tables", "table1",
                "--csv", str(tmp_path / "csv"),
                "--quiet",
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert (tmp_path / "csv" / "table1.csv").exists()
        assert (tmp_path / "csv" / "table2.csv").exists()

    def test_default_cap_env(self, monkeypatch):
        from repro.core.campaign import default_cap

        monkeypatch.setenv("BALLISTA_CAP", "77")
        assert default_cap() == 77
        monkeypatch.delenv("BALLISTA_CAP")
        assert default_cap() == 300

    @pytest.mark.parametrize("value", ["5k", "", "3.5", "lots"])
    def test_malformed_cap_env_names_the_variable(self, monkeypatch, value):
        from repro.core.campaign import default_cap

        monkeypatch.setenv("BALLISTA_CAP", value)
        with pytest.raises(ValueError, match="BALLISTA_CAP"):
            default_cap()

    @pytest.mark.parametrize("value", ["0", "-5"])
    def test_non_positive_cap_env_rejected(self, monkeypatch, value):
        from repro.core.campaign import default_cap

        monkeypatch.setenv("BALLISTA_CAP", value)
        with pytest.raises(ValueError, match="positive"):
            default_cap()

    def test_cli_reports_malformed_cap_env_cleanly(self, monkeypatch, capsys):
        """Regression: ``BALLISTA_CAP=5k`` used to escape the CLI as a
        raw ValueError traceback; it must exit with a clean usage error
        naming the env var."""
        from repro.cli import main

        monkeypatch.setenv("BALLISTA_CAP", "5k")
        with pytest.raises(SystemExit) as excinfo:
            main(["--variants", "winnt", "--tables", "table1", "--quiet"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "BALLISTA_CAP" in err
        assert "Traceback" not in err

    def test_cli_explicit_cap_bypasses_bad_env(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("BALLISTA_CAP", "5k")
        code = main(
            ["--cap", "20", "--variants", "winnt", "--tables", "table1",
             "--quiet", "--jobs", "1"]
        )
        assert code == 0
        assert "Table 1" in capsys.readouterr().out


class TestConcurrentClients:
    def test_three_clients_share_one_server(self, winnt, win98, win95):
        import threading

        from repro.core.mut import MuTRegistry, default_registry
        from repro.service import BallistaClient, BallistaServer

        registry = default_registry()
        subset = MuTRegistry()
        for mut in registry.all():
            if mut.name in ("CloseHandle", "isalpha", "strcpy"):
                subset.register(mut)
        server = BallistaServer(
            [winnt, win98, win95], registry=subset, cap=30
        )
        host, port = server.listen()

        def run(personality):
            client = BallistaClient.connect(personality, host, port)
            try:
                client.run()
            finally:
                client.close()

        threads = [
            threading.Thread(target=run, args=(p,))
            for p in (winnt, win98, win95)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        server.join({"winnt", "win98", "win95"})
        server.shutdown()
        assert len(server.results.variants()) == 3
