"""Additional Win32 API coverage: the calls the main suites exercise
only through campaigns."""

import pytest

from repro.core.context import TestContext
from repro.sim.errors import AccessViolation
from repro.sim.machine import Machine
from repro.sim.objects import CURRENT_PROCESS_HANDLE, CURRENT_THREAD_HANDLE
from repro.win32 import errors as W
from repro.win32.variants import WIN95, WIN98, WINNT


def win32_for(personality):
    machine = Machine(personality)
    ctx = TestContext(machine, machine.spawn_process())
    return ctx, ctx.win32


@pytest.fixture()
def nt():
    return win32_for(WINNT)


@pytest.fixture()
def w98():
    return win32_for(WIN98)


class TestFileApiCoverage:
    def test_move_file_ex_replace_flag(self, nt):
        ctx, api = nt
        src = ctx.existing_file(b"new")
        dst = ctx.existing_file(b"old")
        assert api.MoveFileA(ctx.cstring(src.encode()), ctx.cstring(dst.encode())) == 0
        assert ctx.process.last_error == W.ERROR_ALREADY_EXISTS
        assert (
            api.MoveFileExA(
                ctx.cstring(src.encode()), ctx.cstring(dst.encode()), 0x1
            )
            == 1
        )
        assert bytes(ctx.machine.fs.lookup(dst).data) == b"new"

    def test_move_file_ex_bogus_flags(self, nt):
        ctx, api = nt
        assert api.MoveFileExA(ctx.cstring(b"/tmp/a"), ctx.cstring(b"/tmp/b"), 0xF00) == 0
        assert ctx.process.last_error == W.ERROR_INVALID_PARAMETER

    def test_get_file_attributes_ex(self, nt):
        ctx, api = nt
        path = ctx.existing_file(b"12345")
        out = ctx.buffer(64)
        assert api.GetFileAttributesExA(ctx.cstring(path.encode()), 0, out) == 1
        assert ctx.mem.read_u32(out + 32) == 5  # size low
        assert api.GetFileAttributesExA(ctx.cstring(path.encode()), 7, out) == 0

    def test_search_path_finds_existing(self, nt):
        ctx, api = nt
        path = ctx.existing_file()
        directory, _, name = path.rpartition("/")
        out = ctx.buffer(128)
        written = api.SearchPathA(
            ctx.cstring(directory.encode()),
            ctx.cstring(name.encode()),
            0,
            128,
            out,
            0,
        )
        assert written == len(path)
        assert ctx.mem.read_cstring(out).decode() == path

    def test_search_path_missing(self, nt):
        ctx, api = nt
        assert (
            api.SearchPathA(
                0, ctx.cstring(b"nope.exe"), 0, 64, ctx.buffer(64), 0
            )
            == 0
        )
        assert ctx.process.last_error == W.ERROR_FILE_NOT_FOUND

    def test_get_short_path_name(self, nt):
        ctx, api = nt
        path = ctx.existing_file()
        out = ctx.buffer(128)
        assert api.GetShortPathNameA(ctx.cstring(path.encode()), out, 128) == len(path)
        assert api.GetShortPathNameA(ctx.cstring(b"/tmp/none"), out, 128) == 0

    def test_file_time_to_local_and_compare(self, nt):
        ctx, api = nt
        a = ctx.buffer(8)
        b = ctx.buffer(8)
        ctx.mem.write_u64(a, 100)
        ctx.mem.write_u64(b, 200)
        out = ctx.buffer(8)
        assert api.FileTimeToLocalFileTime(a, out) == 1
        assert ctx.mem.read_u64(out) == 100
        assert api.CompareFileTime(a, b) == -1
        assert api.CompareFileTime(b, a) == 1
        assert api.CompareFileTime(a, a) == 0

    def test_compare_file_time_bad_pointer_aborts_even_on_nt(self, nt):
        _, api = nt
        with pytest.raises(AccessViolation):
            api.CompareFileTime(0, 0)

    def test_misc_file_queries(self, nt):
        ctx, api = nt
        assert api.AreFileApisANSI() == 1
        assert api.SetHandleCount(500) == 256
        assert api.GetDriveTypeA(ctx.cstring(b"/nope")) == 1

    def test_system_time_to_file_time(self, nt):
        ctx, api = nt
        st = ctx.buffer(16)
        api.GetSystemTime(st)
        ft = ctx.buffer(8)
        assert api.SystemTimeToFileTime(st, ft) == 1
        assert ctx.mem.read_u64(ft) > 0

    def test_create_file_lax_disposition_on_9x(self, w98):
        ctx, api = w98
        # Disposition 0 is invalid; 98 accepts it silently (OPEN_ALWAYS).
        handle = api.CreateFileA(
            ctx.cstring(b"/tmp/lax.txt"), 0xC000_0000, 0, 0, 0, 0x80, 0
        )
        assert handle not in (0, 0xFFFF_FFFF)


class TestProcessApiCoverage:
    def test_sleep_ex_and_affinity(self, nt):
        ctx, api = nt
        ctx.machine.clock.begin_call("SleepEx")
        assert api.SleepEx(10, 1) == 0
        assert api.SetThreadAffinityMask(CURRENT_THREAD_HANDLE, 1) == 1
        assert api.SetThreadAffinityMask(CURRENT_THREAD_HANDLE, 0) == 0

    def test_priority_class(self, nt):
        _, api = nt
        assert api.GetPriorityClass(CURRENT_PROCESS_HANDLE) == 0x20
        assert api.GetPriorityClass(0xBAD0) == 0

    def test_waitable_timer(self, nt):
        ctx, api = nt
        handle = api.CreateWaitableTimerA(0, 1, 0)
        assert handle != 0
        ctx.machine.clock.begin_call("WaitForSingleObject")
        assert api.WaitForSingleObject(handle, 10) == W.WAIT_TIMEOUT

    def test_signal_object_and_wait_type_checked(self, nt):
        ctx, api = nt
        from repro.sim.objects import FileObject

        path = ctx.existing_file()
        file_handle = ctx.process.handles.insert(
            FileObject(ctx.machine.fs.open(path))
        )
        assert (
            api.SignalObjectAndWait(file_handle, file_handle, 0, 0)
            == W.WAIT_FAILED
        )

    def test_write_process_memory(self, nt):
        ctx, api = nt
        dest = ctx.buffer(8)
        src = ctx.buffer(8, b"ABCD1234")
        written = ctx.buffer(8)
        assert (
            api.WriteProcessMemory(CURRENT_PROCESS_HANDLE, dest, src, 8, written)
            == 1
        )
        assert ctx.mem.read(dest, 8) == b"ABCD1234"
        assert ctx.mem.read_u32(written) == 8

    def test_interference_crash_cross_mut_on_98(self, w98):
        """Corruption left by DuplicateHandle counts against strncpy:
        the machine-global tolerance is what makes the crash attribution
        order-dependent (inter-test interference)."""
        ctx, api = w98
        for _ in range(3):
            api.DuplicateHandle(0xFFFF_FFFF, 0xBAD0, 0xFFFF_FFFF, 1, 0, 0, 0)
        assert ctx.machine.corruption_level == 3
        from repro.sim.errors import SystemCrash

        with pytest.raises(SystemCrash):
            ctx.crt.strncpy(0xDEAD_0000, ctx.cstring(b"x"), 4)
        assert ctx.machine.crash_function == "strncpy"


class TestEnvApiCoverage:
    def test_command_line_and_module_handles(self, nt):
        ctx, api = nt
        addr = api.GetCommandLineA()
        assert ctx.mem.read_cstring(addr) == b"ballista_test.exe"
        assert api.GetCommandLineA() == addr  # stable
        assert api.GetModuleHandleA(0) == ctx.process.code_region.start
        assert api.GetModuleHandleA(ctx.cstring(b"kernel32.dll")) != 0
        assert api.GetModuleHandleA(ctx.cstring(b"nope.dll")) == 0

    def test_module_file_name(self, nt):
        ctx, api = nt
        out = ctx.buffer(64)
        written = api.GetModuleFileNameA(0, out, 64)
        assert written > 0
        assert b"ballista_test.exe" in ctx.mem.read_cstring(out)

    def test_directories_and_version(self, nt):
        ctx, api = nt
        out = ctx.buffer(64)
        assert api.GetSystemDirectoryA(out, 64) > 0
        assert api.GetWindowsDirectoryA(out, 64) > 0
        assert api.GetProcessVersion(0) == 0x0004_0000
        assert api.GetProcessVersion(424242) == 0

    def test_process_heap_is_stable(self, nt):
        _, api = nt
        heap = api.GetProcessHeap()
        assert api.GetProcessHeap() == heap
        assert api.HeapAlloc(heap, 0, 32) != 0

    def test_process_and_thread_times(self, nt):
        ctx, api = nt
        buffers = [ctx.buffer(8) for _ in range(4)]
        assert api.GetProcessTimes(CURRENT_PROCESS_HANDLE, *buffers) == 1
        assert api.GetThreadTimes(CURRENT_THREAD_HANDLE, *buffers) == 1
        assert api.GetProcessTimes(CURRENT_PROCESS_HANDLE, 0, 0, 0, 0) == 0
        assert ctx.process.last_error == W.ERROR_NOACCESS

    def test_ids(self, nt):
        ctx, api = nt
        assert api.GetCurrentProcessId() == ctx.process.pid
        assert api.GetCurrentThreadId() == ctx.process.main_thread.tid


class TestHinderingMechanism:
    def test_9x_reports_path_not_found_for_missing_file(self):
        for personality, expected in (
            (WIN95, W.ERROR_PATH_NOT_FOUND),
            (WIN98, W.ERROR_PATH_NOT_FOUND),
            (WINNT, W.ERROR_FILE_NOT_FOUND),
        ):
            ctx, api = win32_for(personality)
            assert api.DeleteFileA(ctx.cstring(b"/tmp/missing")) == 0
            assert ctx.process.last_error == expected, personality.key
