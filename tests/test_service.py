"""Tests for the Ballista testing service: XDR, RPC, server/client, and
the Windows CE split client."""

import os
import threading

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.mut import MuTRegistry
from repro.service import (
    BallistaClient,
    BallistaServer,
    CEHostClient,
    CETargetAgent,
    ChaosConfig,
    ChaosTransport,
    LoopbackTransport,
    RpcError,
    SerialLink,
)
from repro.service import protocol as P
from repro.service.rpc import (
    ACCEPT_PROC_UNAVAIL,
    RpcClient,
    SocketTransport,
    decode_call,
    decode_reply,
    encode_call,
    encode_reply,
    serve_connection,
)
from repro.service.serial import SerialLinkDown
from repro.service.xdr import XdrDecoder, XdrEncoder, XdrError
from repro.sim.machine import Machine


SUBSET = ["GetThreadContext", "CloseHandle", "strcpy", "isalpha", "fclose"]

#: CI's fault-injection job re-runs this module with every client
#: transport wrapped in a seeded ChaosTransport; the end-to-end tests
#: must still produce identical results thanks to retries + idempotent
#: reporting.  Locally both default to zero chaos.
CHAOS_RATE = float(os.environ.get("BALLISTA_CHAOS_RATE", "0"))
CHAOS_SEED = int(os.environ.get("BALLISTA_CHAOS_SEED", "0"))


def maybe_chaos(transport):
    if not CHAOS_RATE:
        return transport
    return ChaosTransport(
        transport,
        ChaosConfig(
            seed=CHAOS_SEED, drop_rate=CHAOS_RATE, dup_rate=CHAOS_RATE
        ),
    )


@pytest.fixture()
def subset_registry(registry):
    sub = MuTRegistry()
    for mut in registry.all():
        if mut.name in SUBSET:
            sub.register(mut)
    return sub


class TestXdr:
    def test_u32_roundtrip(self):
        data = XdrEncoder().u32(0xDEADBEEF).bytes()
        assert XdrDecoder(data).u32() == 0xDEADBEEF

    def test_i32_negative(self):
        data = XdrEncoder().i32(-42).bytes()
        assert XdrDecoder(data).i32() == -42

    def test_string_padding(self):
        data = XdrEncoder().string("abcde").bytes()
        assert len(data) % 4 == 0
        assert XdrDecoder(data).string() == "abcde"

    def test_string_array(self):
        data = XdrEncoder().string_array(["a", "bb", ""]).bytes()
        assert XdrDecoder(data).string_array() == ["a", "bb", ""]

    def test_opaque_roundtrip(self):
        blob = bytes(range(7))
        data = XdrEncoder().opaque(blob).bytes()
        assert XdrDecoder(data).opaque() == blob

    def test_truncated_raises(self):
        with pytest.raises(XdrError):
            XdrDecoder(b"\x00\x00").u32()

    def test_implausible_length_rejected(self):
        data = XdrEncoder().u32(0xFFFF_FFF0).bytes()
        with pytest.raises(XdrError):
            XdrDecoder(data).opaque()

    def test_done_flags_trailing_bytes(self):
        dec = XdrDecoder(XdrEncoder().u32(1).u32(2).bytes())
        dec.u32()
        with pytest.raises(XdrError):
            dec.done()


class TestRpcFraming:
    def test_call_reply_roundtrip(self):
        record = encode_call(7, 42, XdrEncoder().string("body").bytes())
        xid, procedure, dec = decode_call(record)
        assert (xid, procedure) == (7, 42)
        assert dec.string() == "body"
        reply = encode_reply(7, 0, XdrEncoder().u32(5).bytes())
        out = decode_reply(reply, expected_xid=7)
        assert out.u32() == 5

    def test_xid_mismatch_rejected(self):
        reply = encode_reply(9, 0)
        with pytest.raises(RpcError, match="xid"):
            decode_reply(reply, expected_xid=7)

    def test_unknown_procedure_gets_proc_unavail(self):
        a, b = LoopbackTransport.pair()
        thread = threading.Thread(
            target=serve_connection, args=(a, {}), daemon=True
        )
        thread.start()
        client = RpcClient(b)
        with pytest.raises(RpcError, match="accept state 3"):
            client.call(99)

    def test_handler_decode_error_gets_garbage_args(self):
        def handler(dec):
            dec.u32()  # body is empty -> XdrError
            return b""

        a, b = LoopbackTransport.pair()
        threading.Thread(
            target=serve_connection, args=(a, {1: handler}), daemon=True
        ).start()
        with pytest.raises(RpcError, match=f"accept state {4}"):
            RpcClient(b).call(1)

    def test_socket_transport_roundtrip(self):
        import socket

        server_sock, client_sock = socket.socketpair()
        server = SocketTransport(server_sock)
        client = SocketTransport(client_sock)
        client.send_record(b"payload-bytes")
        assert server.recv_record() == b"payload-bytes"
        server.close()
        client.close()


class TestProtocolCodecs:
    def test_hello_reply_roundtrip(self):
        entries = [P.PlanEntry("libc", "strcpy", "C string", ("buffer", "cstring"))]
        data = P.encode_hello_reply(entries, 300)
        decoded, cap = P.decode_hello_reply(XdrDecoder(data))
        assert cap == 300
        assert decoded == entries

    def test_plan_roundtrip(self):
        cases = [("A", "B"), ("C", "D")]
        data = P.encode_plan_reply(cases)
        assert P.decode_plan_reply(XdrDecoder(data)) == cases

    def test_report_roundtrip(self):
        data = P.encode_report(
            "win98", "libc", "strcpy", b"\x00\x02", b"\x01\x00", True, False, 2
        )
        report = P.decode_report(XdrDecoder(data))
        assert report["variant"] == "win98"
        assert report["codes"] == b"\x00\x02"
        assert report["interference"] is True


class TestServiceEndToEnd:
    def test_loopback_matches_local_campaign(
        self, subset_registry, win98, winnt
    ):
        cap = 60
        server = BallistaServer([win98, winnt], registry=subset_registry, cap=cap)
        for personality in (win98, winnt):
            a, b = LoopbackTransport.pair()
            server.attach(a)
            BallistaClient(
                personality, maybe_chaos(b), registry=subset_registry
            ).run()
        server.join({"win98", "winnt"})

        local = Campaign(
            [win98, winnt], registry=subset_registry, config=CampaignConfig(cap=cap)
        ).run()
        for variant in ("win98", "winnt"):
            for row in local.for_variant(variant):
                remote = server.results.get(variant, row.mut_name, api=row.api)
                assert bytes(remote.codes) == bytes(row.codes), (
                    variant,
                    row.mut_name,
                )
                assert remote.catastrophic == row.catastrophic

    def test_tcp_sockets_end_to_end(self, subset_registry, winnt):
        server = BallistaServer([winnt], registry=subset_registry, cap=20)
        host, port = server.listen()
        client = BallistaClient.connect(winnt, host, port, wrap=maybe_chaos)
        try:
            tested = client.run()
        finally:
            client.close()
            server.shutdown()
        server.join({"winnt"})
        assert tested == len(subset_registry.for_variant(winnt))

    def test_join_times_out_when_client_absent(self, subset_registry, winnt):
        server = BallistaServer([winnt], registry=subset_registry, cap=10)
        with pytest.raises(TimeoutError):
            server.join({"winnt"}, timeout=0.05)


class TestCESplitClient:
    def make_split(self, subset_registry, wince, cap=40):
        link = SerialLink()
        machine = Machine(wince)
        agent = CETargetAgent(machine, link, registry=subset_registry, cap=cap)
        host = CEHostClient(
            wince, link, agent, registry=subset_registry, cap=cap
        )
        return link, machine, host

    def test_matches_local_campaign_outcomes(self, subset_registry, wince):
        _, _, host = self.make_split(subset_registry, wince)
        remote = host.run()
        local = Campaign(
            [wince], registry=subset_registry, config=CampaignConfig(cap=40)
        ).run()
        for row in local.for_variant("wince"):
            mirrored = remote.get("wince", row.mut_name, api=row.api)
            assert mirrored.catastrophic == row.catastrophic, row.mut_name
            assert len(mirrored.codes) == len(row.codes)

    def test_crash_detected_via_unresponsive_polls(self, subset_registry, wince):
        _, machine, host = self.make_split(subset_registry, wince)
        results = host.run()
        crashed = [r.mut_name for r in results.catastrophic_muts("wince")]
        assert "GetThreadContext" in crashed
        assert machine.reboot_count >= 1

    def test_virtual_time_is_orders_of_magnitude_slower(
        self, subset_registry, wince
    ):
        _, _, host = self.make_split(subset_registry, wince, cap=20)
        results = host.run()
        per_case = host.elapsed_ms / max(results.total_cases(), 1)
        assert per_case > 2_000  # "five to ten seconds per test case"

    def test_disconnected_link_raises(self, subset_registry, wince):
        link, _, host = self.make_split(subset_registry, wince)
        link.disconnect()
        mut = subset_registry.get("win32", "CloseHandle")
        from repro.core.results import ResultSet

        results = ResultSet()
        result = results.new_result("wince", mut.name, mut.api, mut.group)
        with pytest.raises(SerialLinkDown):
            host.run_mut(mut, result)

    def test_serial_link_accounts_transfer_time(self):
        link = SerialLink(latency_ms_per_kb=1000)
        link.host_send({"cmd": "ping"})
        assert link.transfer_ms >= 1
        assert link.target_recv() == {"cmd": "ping"}
        assert link.target_recv() is None
