"""Tests for the triage package: sequence replay, ddmin minimisation,
and the resource-leak audit."""

import pytest

from repro.core.crash_scale import CaseCode
from repro.triage import (
    SequenceStep,
    audit_leaks,
    capture_crash_prefix,
    minimize_crash_sequence,
    render_repro_program,
    replay_sequence,
)

CORRUPTING = SequenceStep(
    "libc", "strncpy", ("PTR_FREED", "STR_SHORT", "SIZE_16")
)
BENIGN = SequenceStep("libc", "strncpy", ("PTR_PAGE", "STR_SHORT", "SIZE_16"))
IMMEDIATE = SequenceStep("win32", "GetThreadContext", ("TH_CURRENT", "PTR_NULL"))


class TestReplaySequence:
    def test_benign_sequence_completes(self, win98):
        outcome = replay_sequence(win98, [BENIGN] * 5)
        assert not outcome.crashed
        assert outcome.executed == 5
        assert all(o.code is CaseCode.PASS_NO_ERROR for o in outcome.outcomes)

    def test_corruption_accumulates_to_crash(self, win98):
        # tolerance is 3: the fourth corrupting case crashes.
        outcome = replay_sequence(win98, [CORRUPTING] * 6)
        assert outcome.crashed
        assert outcome.crash_step == 3

    def test_below_tolerance_survives(self, win98):
        outcome = replay_sequence(win98, [CORRUPTING] * 3)
        assert not outcome.crashed
        assert outcome.corruption_level == 3

    def test_immediate_crash_at_step_zero(self, win98):
        outcome = replay_sequence(win98, [IMMEDIATE, BENIGN])
        assert outcome.crashed
        assert outcome.crash_step == 0
        assert outcome.executed == 1

    def test_nt_never_crashes_on_same_sequence(self, winnt):
        outcome = replay_sequence(winnt, [CORRUPTING] * 10 + [IMMEDIATE])
        assert not outcome.crashed

    def test_interleaved_muts_share_the_machine(self, win98):
        # Corruption from strncpy and fwrite pools in the same arena.
        fwrite_bad = SequenceStep(
            "libc", "fwrite", ("PTR_FREED", "SIZE_ONE", "SIZE_16", "FILE_STDIN")
        )
        outcome = replay_sequence(
            win98, [CORRUPTING, fwrite_bad, CORRUPTING, fwrite_bad]
        )
        assert outcome.crashed

    def test_step_describe(self):
        assert IMMEDIATE.describe() == "GetThreadContext(TH_CURRENT, PTR_NULL)"


class TestCapturePrefix:
    def test_interference_mut_yields_prefix(self, win98):
        prefix = capture_crash_prefix(win98, "strncpy", cap=300)
        assert prefix is not None
        assert 4 <= len(prefix) <= 300
        # Deterministic: capturing again gives the identical prefix.
        assert capture_crash_prefix(win98, "strncpy", cap=300) == prefix

    def test_non_crashing_mut_returns_none(self, win98):
        assert capture_crash_prefix(win98, "strcpy", cap=60) is None

    def test_immediate_mut_yields_short_prefix(self, win98):
        prefix = capture_crash_prefix(
            win98, "GetThreadContext", cap=300, api="win32"
        )
        assert prefix is not None
        outcome = replay_sequence(win98, prefix)
        assert outcome.crashed


class TestMinimize:
    def test_minimal_sequence_is_tolerance_plus_one(self, win98):
        prefix = capture_crash_prefix(win98, "strncpy", cap=300)
        minimal = minimize_crash_sequence(win98, prefix)
        # Crossing a corruption tolerance of 3 needs exactly 4 events.
        assert len(minimal) == win98.corruption_tolerance + 1
        assert replay_sequence(win98, minimal).crashed

    def test_minimal_sequence_is_one_minimal(self, win98):
        prefix = capture_crash_prefix(win98, "strncpy", cap=300)
        minimal = minimize_crash_sequence(win98, prefix)
        for index in range(len(minimal)):
            reduced = minimal[:index] + minimal[index + 1 :]
            assert not replay_sequence(win98, reduced).crashed, index

    def test_immediate_crash_minimises_to_one_step(self, win98):
        prefix = capture_crash_prefix(
            win98, "GetThreadContext", cap=300, api="win32"
        )
        minimal = minimize_crash_sequence(win98, prefix)
        assert len(minimal) == 1
        # ... and that single step reproduces standalone (non-starred).
        assert replay_sequence(win98, minimal).crashed

    def test_non_crashing_sequence_rejected(self, win98):
        with pytest.raises(ValueError, match="does not crash"):
            minimize_crash_sequence(win98, [BENIGN] * 3)

    def test_progress_callback_invoked(self, win98):
        prefix = capture_crash_prefix(win98, "strncpy", cap=300)
        counts = []
        minimize_crash_sequence(win98, prefix, progress=lambda n, s: counts.append(n))
        assert counts and counts[-1] == len(counts)


class TestRenderReproProgram:
    def test_renders_c_like_listing(self, win98):
        text = render_repro_program(win98, [IMMEDIATE])
        assert "int main(void)" in text
        assert "GetThreadContext(GetCurrentThread(), NULL);" in text
        assert "Windows 98" in text

    def test_unknown_values_fall_back_to_names(self, win98):
        step = SequenceStep("libc", "strcpy", ("PTR_PAGE", "STR_EDGE"))
        text = render_repro_program(win98, [step])
        assert "strcpy(page_buffer, str_edge);" in text


class TestLeakAudit:
    def test_finds_file_creating_apis(self, win98):
        report = audit_leaks(
            win98, ["GetTempFileNameA", "strcpy", "isalpha"], cap=60
        )
        leaking = {entry.mut_name for entry in report.leaking_muts()}
        assert "GetTempFileNameA" in leaking
        assert "strcpy" not in leaking
        assert "isalpha" not in leaking

    def test_temp_file_leak_is_9x_specific(self, winnt, win98):
        # The leaking case feeds a wild prefix pointer that lands in the
        # 9x shared arena (readable there, faulting on NT) -- so the
        # leak itself is a shared-arena artefact.
        nt_report = audit_leaks(winnt, ["GetTempFileNameA"], cap=60)
        assert not nt_report.per_mut[0].leaks
        w98_report = audit_leaks(win98, ["GetTempFileNameA"], cap=60)
        assert w98_report.per_mut[0].leaked_files

    def test_create_file_a_leaks_created_files(self, winnt):
        report = audit_leaks(winnt, ["CreateFileA"], cap=80)
        (entry,) = report.per_mut
        assert entry.leaks
        assert entry.leaked_files

    def test_corruption_counted_on_9x(self, win98):
        report = audit_leaks(win98, ["MsgWaitForMultipleObjectsEx"], cap=8)
        (entry,) = report.per_mut
        # Either it corrupted without crashing, or it crashed; both are
        # evidence the call scribbles on shared state.
        assert entry.corruption_added > 0 or entry.cases <= 8

    def test_render_contains_summary(self, win98):
        report = audit_leaks(win98, ["GetTempFileNameA", "strcpy"], cap=40)
        text = report.render()
        assert "Resource-leak audit" in text
        assert "GetTempFileNameA" in text
