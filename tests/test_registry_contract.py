"""The MuT registry must mirror the paper's platform matrix exactly.

These assertions duplicate the registry-contract lint checker on purpose:
registry drift must fail tier-1 even when nobody runs ``repro lint``.
The expected counts are the paper's Table 1 matrix: 133 syscalls + 94 C
functions on Windows 95, 143 + 94 on 98/98SE/NT4/2000, 71 + 82 (+ 26
UNICODE twins) on Windows CE, and 91 + 94 on RedHat Linux 6.0.
"""

from __future__ import annotations

import pytest

from repro.analysis.groups import ALL_GROUPS
from repro.libc.registration import CE_UNICODE_TWINS, UNICODE_TWIN_OF
from repro.lint.manifests import CE_UNICODE_TWIN_COUNT, PLATFORM_MATRIX

#: (variant key, syscalls, ascii C functions, CE UNICODE twins).
PLATFORM_EXPECTATIONS = [
    ("win95", 133, 94, 0),
    ("win98", 143, 94, 0),
    ("win98se", 143, 94, 0),
    ("winnt", 143, 94, 0),
    ("win2000", 143, 94, 0),
    ("wince", 71, 82, 26),
    ("linux", 91, 94, 0),
]


def _variant(all_variants, key):
    return next(p for p in all_variants if p.key == key)


@pytest.mark.parametrize(
    "key,syscalls,c_functions,twins",
    PLATFORM_EXPECTATIONS,
    ids=[row[0] for row in PLATFORM_EXPECTATIONS],
)
def test_platform_matrix(
    registry, all_variants, key, syscalls, c_functions, twins
):
    muts = registry.for_variant(_variant(all_variants, key))
    assert sum(1 for m in muts if m.api != "libc") == syscalls
    assert (
        sum(1 for m in muts if m.api == "libc" and m.charset == "ascii")
        == c_functions
    )
    assert (
        sum(1 for m in muts if m.api == "libc" and m.charset == "unicode")
        == twins
    )


def test_manifest_agrees_with_expectations():
    """The lint manifest and this test pin the same matrix, so neither
    can drift from the paper without the other noticing."""
    assert PLATFORM_MATRIX == {
        key: {
            "syscalls": syscalls,
            "c_functions": c_functions,
            "unicode_twins": twins,
        }
        for key, syscalls, c_functions, twins in PLATFORM_EXPECTATIONS
    }


def test_every_param_type_resolves(registry, types):
    for mut in registry.all():
        for param in mut.param_types:
            assert param in types, f"{mut.api}:{mut.name} uses {param!r}"


def test_every_group_is_one_of_the_twelve(registry):
    groups = set(ALL_GROUPS)
    assert len(ALL_GROUPS) == 12
    for mut in registry.all():
        assert mut.group in groups, f"{mut.api}:{mut.name} -> {mut.group!r}"


def test_no_duplicate_registrations(registry):
    seen = set()
    for mut in registry.all():
        key = (mut.api, mut.name, mut.charset)
        assert key not in seen, f"duplicate {key}"
        seen.add(key)


def test_ce_unicode_twins_complete(registry):
    registered = {
        m.name for m in registry.by_api("libc") if m.charset == "unicode"
    }
    assert registered == set(UNICODE_TWIN_OF)
    assert registered == {name for name, _, _ in CE_UNICODE_TWINS}
    assert len(registered) == CE_UNICODE_TWIN_COUNT
    ascii_names = {
        m.name for m in registry.by_api("libc") if m.charset == "ascii"
    }
    for twin, partner in UNICODE_TWIN_OF.items():
        assert partner in ascii_names, f"{twin} shadows unknown {partner}"
        # Twins are CE-only; their ASCII partner runs everywhere else.
        assert registry.get("libc", twin).platforms == frozenset({"wince"})


def test_total_population(registry):
    """143 Win32 + 91 POSIX + 94 C + 26 CE twins = 354 MuTs."""
    assert len(registry) == 354
    assert len(registry.by_api("win32")) == 143
    assert len(registry.by_api("posix")) == 91
    assert len(registry.by_api("libc")) == 94 + 26
