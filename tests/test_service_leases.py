"""Shard lease lifecycle, driven through a fake clock."""

import pytest

from repro.obs.recorder import MemoryRecorder
from repro.service.leases import LeaseError, LeaseManager


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def manager(clock, **kwargs):
    kwargs.setdefault("lease_s", 10.0)
    kwargs.setdefault("spawn_grace", 5.0)
    return LeaseManager(clock=clock, **kwargs)


class TestGrantRenewRelease:
    def test_initial_deadline_includes_spawn_grace(self, clock):
        leases = manager(clock)
        lease = leases.grant("job-0001", "winnt")
        # Spawning a worker costs an interpreter start before the first
        # heartbeat; the initial deadline must absorb that.
        assert lease.deadline == clock.now + 10.0 + 5.0
        assert lease.attempt == 1

    def test_renew_extends_by_lease_s_only(self, clock):
        leases = manager(clock)
        leases.grant("job-0001", "winnt")
        clock.advance(8.0)
        assert leases.renew("job-0001", "winnt")
        assert leases.holder("job-0001", "winnt").deadline == clock.now + 10.0

    def test_renew_without_a_lease_is_a_refused_noop(self, clock):
        # A heartbeat from a worker whose lease already expired must not
        # resurrect the lease -- its shard may be leased to a successor.
        leases = manager(clock)
        assert not leases.renew("job-0001", "winnt")
        assert leases.holder("job-0001", "winnt") is None

    def test_release_frees_the_shard(self, clock):
        leases = manager(clock)
        leases.grant("job-0001", "winnt")
        released = leases.release("job-0001", "winnt")
        assert released is not None
        assert len(leases) == 0
        assert leases.release("job-0001", "winnt") is None  # idempotent


class TestExpiry:
    def test_expires_only_past_deadline_leases(self, clock):
        leases = manager(clock)
        leases.grant("job-0001", "winnt")
        clock.advance(2.0)
        leases.grant("job-0002", "win98")
        clock.advance(14.0)  # first: past 15s horizon; second: not yet
        stale = leases.expire_stale()
        assert [lease.shard for lease in stale] == [("job-0001", "winnt", 0)]
        assert leases.holder("job-0002", "win98") is not None

    def test_renewal_defers_expiry(self, clock):
        leases = manager(clock)
        leases.grant("job-0001", "winnt")
        for _ in range(5):
            clock.advance(8.0)
            leases.renew("job-0001", "winnt")
            assert leases.expire_stale() == []

    def test_expiry_emits_lease_expired(self, clock):
        recorder = MemoryRecorder()
        leases = manager(clock, recorder=recorder)
        leases.grant("job-0001", "winnt")
        clock.advance(60.0)
        leases.expire_stale()
        kinds = [record["kind"] for record in recorder.records]
        assert kinds == ["lease_granted", "lease_expired"]
        expired = recorder.records[-1]
        assert expired["job_id"] == "job-0001"
        assert expired["variant"] == "winnt"
        assert expired["stale_s"] > 0


class TestDoubleGrantPrevention:
    def test_grant_refuses_an_actively_leased_shard(self, clock):
        leases = manager(clock)
        leases.grant("job-0001", "winnt")
        with pytest.raises(LeaseError, match="already leased"):
            leases.grant("job-0001", "winnt")
        assert leases.stats.double_grants_refused == 1

    def test_double_grant_refused_after_reassignment(self, clock):
        # The satellite edge: a shard reassigned after expiry must STILL
        # refuse a concurrent second grant -- reassignment must not
        # loosen the single-holder invariant.
        leases = manager(clock)
        leases.grant("job-0001", "winnt")
        clock.advance(60.0)
        assert leases.expire_stale()
        second = leases.grant("job-0001", "winnt")
        assert second.attempt == 2
        with pytest.raises(LeaseError, match="attempt 2"):
            leases.grant("job-0001", "winnt")
        assert leases.stats.double_grants_refused == 1

    def test_same_variant_under_two_jobs_is_two_shards(self, clock):
        # Multi-tenancy: two jobs may test the same OS variant at once.
        leases = manager(clock)
        leases.grant("job-0001", "winnt")
        leases.grant("job-0002", "winnt")
        assert len(leases) == 2


class TestReassignment:
    def test_attempts_accumulate_across_grants(self, clock):
        leases = manager(clock)
        for expected in (1, 2, 3):
            lease = leases.grant("job-0001", "winnt")
            assert lease.attempt == expected
            assert leases.attempts("job-0001", "winnt") == expected
            leases.release("job-0001", "winnt")

    def test_regrant_emits_lease_reassigned(self, clock):
        recorder = MemoryRecorder()
        leases = manager(clock, recorder=recorder)
        leases.grant("job-0001", "winnt")
        leases.release("job-0001", "winnt")
        leases.grant("job-0001", "winnt")
        kinds = [record["kind"] for record in recorder.records]
        assert kinds == ["lease_granted", "lease_granted", "lease_reassigned"]
        assert recorder.records[-1]["attempt"] == 2
        assert leases.stats.reassignments == 1

    def test_first_grant_is_not_a_reassignment(self, clock):
        leases = manager(clock)
        leases.grant("job-0001", "winnt")
        assert leases.stats.reassignments == 0


class TestValidation:
    def test_rejects_nonpositive_lease(self, clock):
        with pytest.raises(ValueError, match="lease_s"):
            LeaseManager(lease_s=0, clock=clock)

    def test_rejects_negative_spawn_grace(self, clock):
        with pytest.raises(ValueError, match="spawn_grace"):
            LeaseManager(lease_s=1.0, spawn_grace=-1.0, clock=clock)
