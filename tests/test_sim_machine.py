"""Unit tests for machines, processes, objects, clock, and guarded access."""

import json

import pytest

from repro.sim.clock import SimClock
from repro.sim.errors import (
    AccessViolation,
    MachineCrashed,
    SystemCrash,
    TaskHang,
)
from repro.sim.guarded import (
    crt_read,
    crt_write,
    kernel_copy_from_user,
    kernel_copy_to_user,
)
from repro.sim.machine import Machine
from repro.sim.objects import (
    CURRENT_THREAD_HANDLE,
    EventObject,
    FileObject,
    HandleTable,
    ThreadObject,
)
from repro.sim.personality import CORRUPT, PROBE, RAW, Personality


def personality(**overrides) -> Personality:
    base = dict(
        key="testos",
        name="Test OS",
        api="win32",
        family="nt",
        crt_flavor="msvcrt",
    )
    base.update(overrides)
    return Personality(**base)


class TestMachineLifecycle:
    def test_boot_creates_tmp(self):
        machine = Machine(personality())
        assert machine.fs.lookup("/tmp") is not None

    def test_panic_marks_crashed_and_raises(self):
        machine = Machine(personality())
        with pytest.raises(SystemCrash):
            machine.panic("boom", "SomeCall")
        assert machine.crashed
        assert machine.crash_function == "SomeCall"

    def test_operations_after_crash_fail(self):
        machine = Machine(personality())
        with pytest.raises(SystemCrash):
            machine.panic("boom")
        with pytest.raises(MachineCrashed):
            machine.spawn_process()

    def test_reboot_restores_service(self):
        machine = Machine(personality())
        with pytest.raises(SystemCrash):
            machine.panic("boom")
        machine.reboot()
        assert not machine.crashed
        assert machine.reboot_count == 1
        machine.spawn_process()

    def test_reboot_resets_filesystem(self):
        machine = Machine(personality())
        machine.fs.create_file("/tmp/junk")
        with pytest.raises(SystemCrash):
            machine.panic("boom")
        machine.reboot()
        assert machine.fs.lookup("/tmp/junk") is None

    def test_corruption_below_tolerance_absorbed(self):
        machine = Machine(personality(corruption_tolerance=3))
        machine.note_corruption("fwrite")
        machine.note_corruption("fwrite")
        machine.note_corruption("fwrite")
        assert not machine.crashed
        assert machine.corruption_level == 3

    def test_corruption_over_tolerance_crashes(self):
        machine = Machine(personality(corruption_tolerance=3))
        for _ in range(3):
            machine.note_corruption("fwrite")
        with pytest.raises(SystemCrash, match="accumulated corruption"):
            machine.note_corruption("strncpy")
        assert machine.crash_function == "strncpy"

    def test_reboot_clears_corruption(self):
        machine = Machine(personality(corruption_tolerance=1))
        machine.note_corruption("x")
        with pytest.raises(SystemCrash):
            machine.note_corruption("x")
        machine.reboot()
        assert machine.corruption_level == 0

    def test_shared_region_only_with_shared_memory(self):
        assert Machine(personality()).shared_region is None
        shared = Machine(personality(shared_system_memory=True))
        assert shared.shared_region is not None


class TestWearState:
    """Machine wear must capture *everything* a later MuT's outcome can
    depend on -- including the filesystem tree and shared-arena bytes,
    not just the corruption/clock/pid counters."""

    P = dict(shared_system_memory=True, case_insensitive_fs=True)

    def _worn_machine(self) -> Machine:
        machine = Machine(personality(**self.P))
        fs = machine.fs
        fs.mkdir("/tmp/deep")
        node = fs.create_file("/tmp/deep/a.dat", b"payload")
        node.read_only = True
        node.hidden = True
        node.mode = 0o600
        parent, name = fs._parent_of("/tmp/deep/b.dat")
        parent.entries[name] = node  # hard link: two names, one node
        node.nlink = 2
        sym = fs.create_file("/tmp/sym", b"")
        sym.symlink_target = "/tmp/deep/a.dat"
        fs.create_file("/tmp/doomed", b"x")
        fs.unlink("/tmp/doomed")
        machine.shared_region.data[7] = 0xAB
        machine.clock.ticks = 1234
        machine._corruption = 2
        machine._next_pid = 777
        return machine

    def test_wear_round_trips_through_json(self):
        worn = self._worn_machine()
        wear = json.loads(json.dumps(worn.wear_state()))

        fresh = Machine(personality(**self.P))
        fresh.restore_wear(wear)
        assert fresh.wear_state() == wear

        restored = fresh.fs.lookup("/tmp/deep/a.dat")
        assert bytes(restored.data) == b"payload"
        assert restored.read_only and restored.hidden
        assert restored.mode == 0o600
        # Hard-link aliasing survives: both names resolve to ONE node.
        assert fresh.fs.lookup("/tmp/deep/b.dat") is restored
        assert restored.nlink == 2
        assert fresh.fs.lookup("/tmp/sym").symlink_target == "/tmp/deep/a.dat"
        assert fresh.fs.lookup("/tmp/doomed") is None
        assert fresh.fs._file_count == worn.fs._file_count
        assert fresh.shared_region.data[7] == 0xAB

    def test_wear_timestamps_and_protection_round_trip(self):
        worn = self._worn_machine()
        node = worn.fs.lookup("/tmp/deep/a.dat")
        node.created_at, node.modified_at, node.accessed_at = 10, 20, 30

        fresh = Machine(personality(**self.P))
        fresh.restore_wear(worn.wear_state())
        restored = fresh.fs.lookup("/tmp/deep/a.dat")
        assert (restored.created_at, restored.modified_at,
                restored.accessed_at) == (10, 20, 30)
        # Boot-time system nodes keep their protection through restore.
        assert fresh.fs.lookup("/tmp").protected
        assert fresh.fs.lookup("/etc_passwd").protected

    def test_counter_only_wear_restores_like_before(self):
        """Checkpoints written before filesystem wear existed carry only
        the four counters; restoring one must not disturb the
        freshly-booted filesystem."""
        fresh = Machine(personality())
        fresh.restore_wear(
            {"corruption": 1, "reboot_count": 2,
             "clock_ticks": 3, "next_pid": 400}
        )
        assert fresh.corruption_level == 1
        assert fresh.reboot_count == 2
        assert fresh.clock.ticks == 3
        assert fresh.fs.lookup("/etc_passwd") is not None
        assert fresh.fs.lookup("/home/ballista") is not None


class TestProcess:
    def test_console_fds_preopened(self):
        process = Machine(personality()).spawn_process()
        assert set(process.fds) >= {0, 1, 2}
        assert process.fds[1].writable

    def test_alloc_fd_reuses_lowest_free(self):
        process = Machine(personality()).spawn_process()
        fd = process.alloc_fd(process.fds[0], lowest=3)
        assert fd == 3
        process.close_fd(3)
        assert process.alloc_fd(process.fds[0], lowest=3) == 3

    def test_terminate_closes_everything(self):
        machine = Machine(personality())
        process = machine.spawn_process()
        handle = process.handles.insert(EventObject(True, False))
        process.terminate(42)
        assert process.exit_code == 42
        assert process.handles.get(handle) is None

    def test_shared_arena_visible_across_processes(self):
        machine = Machine(personality(shared_system_memory=True))
        first = machine.spawn_process()
        second = machine.spawn_process()
        first.memory.write_u32(machine.shared_region.start, 0xABCD)
        assert second.memory.read_u32(machine.shared_region.start) == 0xABCD

    def test_spawn_thread_ids_unique(self):
        process = Machine(personality()).spawn_process()
        ids = {process.spawn_thread().tid for _ in range(5)}
        assert len(ids) == 5


class TestHandleTable:
    def test_insert_and_resolve(self):
        table = HandleTable()
        event = EventObject(True, False)
        handle = table.insert(event)
        assert table.get(handle) is event
        assert handle % 4 == 0

    def test_close_decrements_and_destroys(self):
        table = HandleTable()
        event = EventObject(True, False)
        handle = table.insert(event)
        assert table.close(handle)
        assert event.destroyed
        assert not table.close(handle)

    def test_two_handles_one_object(self):
        table = HandleTable()
        event = EventObject(True, False)
        first = table.insert(event)
        second = table.insert(event)
        table.close(first)
        assert not event.destroyed
        table.close(second)
        assert event.destroyed

    def test_file_object_closes_open_file(self):
        machine = Machine(personality())
        machine.fs.create_file("/tmp/a", b"x")
        open_file = machine.fs.open("/tmp/a")
        table = HandleTable()
        handle = table.insert(FileObject(open_file))
        table.close(handle)
        assert open_file.closed

    def test_pseudo_handles_are_not_table_entries(self):
        table = HandleTable()
        assert table.get(CURRENT_THREAD_HANDLE) is None

    def test_thread_object_has_context(self):
        thread = ThreadObject(1)
        assert "eip" in thread.context


class TestClock:
    def test_advance_accumulates(self):
        clock = SimClock()
        clock.begin_call("x")
        clock.advance(100)
        assert clock.ticks == 100

    def test_watchdog_fires_past_budget(self):
        clock = SimClock(watchdog_ticks=1000)
        clock.begin_call("WaitForever")
        with pytest.raises(TaskHang):
            clock.advance(1001)

    def test_watchdog_rearmed_per_call(self):
        clock = SimClock(watchdog_ticks=1000)
        clock.begin_call("a")
        clock.advance(900)
        clock.begin_call("b")
        clock.advance(900)  # fresh budget, no hang

    def test_block_forever_raises_hang(self):
        clock = SimClock(watchdog_ticks=500)
        clock.begin_call("Sleep")
        with pytest.raises(TaskHang) as info:
            clock.block_forever()
        assert info.value.function == "Sleep"

    def test_unix_seconds_advances_with_ticks(self):
        clock = SimClock()
        start = clock.unix_seconds()
        clock.begin_call("x")
        clock.advance(5000)
        assert clock.unix_seconds() == start + 5


class TestGuardedAccess:
    def _machine(self, mode_func: str, mode: str) -> Machine:
        kwargs = {}
        if mode == RAW:
            kwargs["raw_kernel_access"] = frozenset({mode_func})
        elif mode == CORRUPT:
            kwargs["corrupting_access"] = frozenset({mode_func})
        return Machine(personality(shared_system_memory=True, **kwargs))

    def test_probe_write_returns_false_on_bad_pointer(self):
        machine = self._machine("f", PROBE)
        process = machine.spawn_process()
        assert not kernel_copy_to_user(machine, process.memory, "f", 0, b"x")
        assert not machine.crashed

    def test_probe_write_succeeds_on_good_pointer(self):
        machine = self._machine("f", PROBE)
        process = machine.spawn_process()
        addr = process.memory.alloc(b"\x00" * 8)
        assert kernel_copy_to_user(machine, process.memory, "f", addr, b"ok")
        assert process.memory.read(addr, 2) == b"ok"

    def test_raw_write_panics_on_bad_pointer(self):
        machine = self._machine("f", RAW)
        process = machine.spawn_process()
        with pytest.raises(SystemCrash):
            kernel_copy_to_user(machine, process.memory, "f", 0, b"x")
        assert machine.crashed

    def test_corrupt_write_absorbs_and_counts(self):
        machine = self._machine("f", CORRUPT)
        process = machine.spawn_process()
        assert kernel_copy_to_user(machine, process.memory, "f", 0, b"x")
        assert machine.corruption_level == 1
        assert not machine.crashed

    def test_probe_read_returns_none_on_bad_pointer(self):
        machine = self._machine("f", PROBE)
        process = machine.spawn_process()
        assert kernel_copy_from_user(machine, process.memory, "f", 0, 4) is None

    def test_raw_read_panics(self):
        machine = self._machine("f", RAW)
        process = machine.spawn_process()
        with pytest.raises(SystemCrash):
            kernel_copy_from_user(machine, process.memory, "f", 0, 4)

    def test_corrupt_read_returns_stale_zeroes(self):
        machine = self._machine("f", CORRUPT)
        process = machine.spawn_process()
        assert kernel_copy_from_user(machine, process.memory, "f", 0, 4) == b"\x00" * 4

    def test_crt_write_probe_mode_faults_in_user_mode(self):
        machine = self._machine("f", PROBE)
        process = machine.spawn_process()
        with pytest.raises(AccessViolation):
            crt_write(machine, process.memory, "f", 0, b"x")

    def test_crt_write_corrupt_mode_reports_absorbed(self):
        machine = self._machine("f", CORRUPT)
        process = machine.spawn_process()
        assert crt_write(machine, process.memory, "f", 0, b"x") is False
        assert machine.corruption_level == 1

    def test_crt_read_raw_mode_panics(self):
        machine = self._machine("f", RAW)
        process = machine.spawn_process()
        with pytest.raises(SystemCrash):
            crt_read(machine, process.memory, "f", 0, 4)


class TestPersonality:
    def test_access_mode_resolution(self):
        p = personality(
            raw_kernel_access=frozenset({"A"}),
            corrupting_access=frozenset({"B"}),
        )
        assert p.kernel_access_mode("A") == RAW
        assert p.kernel_access_mode("B") == CORRUPT
        assert p.kernel_access_mode("C") == PROBE

    def test_supports_missing_functions(self):
        p = personality(missing_functions=frozenset({"SleepEx"}))
        assert not p.supports("SleepEx")
        assert p.supports("Sleep")
