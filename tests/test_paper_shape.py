"""Integration tests: the paper's headline findings must hold on a full
campaign (session-scoped, cap = BALLISTA_TEST_CAP, default 120).

These are the acceptance criteria from DESIGN.md section 5.
"""

import pytest

from repro.analysis.groups import C_GROUPS, SYSCALL_GROUPS
from repro.analysis.rates import group_rates, summarize
from repro.analysis.silent import estimate_silent_rates
from repro.core.crash_scale import CaseCode


def crashed_names(results, variant, api=None):
    return {
        r.mut_name
        for r in results.catastrophic_muts(variant)
        if api is None or r.api == api
    }


class TestCatastrophicFindings:
    """Paper section 4 and Table 3."""

    def test_nt_2000_linux_never_crash(self, session_results):
        for variant in ("winnt", "win2000", "linux"):
            assert crashed_names(session_results, variant) == set(), variant

    def test_win98_catastrophic_list_exact(self, session_results):
        # "Five of the Win32 API system calls ... plus two C library
        # functions, fwrite() and strncpy(), caused Catastrophic
        # failures ... in Windows 98."
        assert crashed_names(session_results, "win98") == {
            "DuplicateHandle",
            "GetFileInformationByHandle",
            "GetThreadContext",
            "MsgWaitForMultipleObjects",
            "MsgWaitForMultipleObjectsEx",
            "fwrite",
            "strncpy",
        }

    def test_win98se_adds_createthread_drops_fwrite(self, session_results):
        names = crashed_names(session_results, "win98se")
        assert "CreateThread" in names
        assert "fwrite" not in names
        assert "strncpy" in names

    def test_win95_specific_crashes(self, session_results):
        names = crashed_names(session_results, "win95")
        # 95 lacks MsgWaitForMultipleObjectsEx and adds three of its own.
        assert "MsgWaitForMultipleObjectsEx" not in names
        assert {"FileTimeToSystemTime", "HeapCreate", "ReadProcessMemory"} <= names
        assert "strncpy" not in names
        assert "fwrite" not in names

    def test_wince_ten_syscall_crashes(self, session_results):
        names = crashed_names(session_results, "wince", api="win32")
        assert names == {
            "CreateThread",
            "GetThreadContext",
            "InterlockedDecrement",
            "InterlockedExchange",
            "InterlockedIncrement",
            "MsgWaitForMultipleObjects",
            "MsgWaitForMultipleObjectsEx",
            "ReadProcessMemory",
            "SetThreadContext",
            "VirtualAlloc",
        }

    def test_wince_c_library_crashes_via_bad_file_pointer(self, session_results):
        from repro.libc.registration import UNICODE_TWIN_OF

        names = crashed_names(session_results, "wince", api="libc")
        merged = {UNICODE_TWIN_OF.get(n, n) for n in names}
        # "18 C library functions ... 17 of which failed due to the same
        # invalid C file pointer"
        assert len(merged) == 18
        assert "strncpy" in merged  # via the UNICODE _tcsncpy
        file_pointer_takers = merged - {"strncpy"}
        assert len(file_pointer_takers) == 17

    def test_starred_crashes_are_interference(self, session_results):
        # Table 3's '*' entries need accumulated state.
        for variant, name in (
            ("win98", "DuplicateHandle"),
            ("win98", "strncpy"),
            ("win98se", "CreateThread"),
            ("wince", "fread"),
        ):
            row = next(
                r
                for r in session_results.catastrophic_muts(variant)
                if r.mut_name == name
            )
            assert row.interference_crash, (variant, name)

    def test_unstarred_crashes_are_immediate(self, session_results):
        for variant, name in (
            ("win98", "GetThreadContext"),
            ("win95", "HeapCreate"),
            ("wince", "fclose"),
        ):
            row = next(
                r
                for r in session_results.catastrophic_muts(variant)
                if r.mut_name == name
            )
            assert not row.interference_crash, (variant, name)


class TestAbortRateShape:
    """Paper Figure 1 / Table 2 orderings."""

    def test_linux_syscalls_more_graceful_than_nt(self, session_results):
        linux = summarize(session_results, "linux")
        nt = summarize(session_results, "winnt")
        assert linux.syscall_abort_rate < nt.syscall_abort_rate / 2

    def test_nt_c_library_more_robust_than_glibc(self, session_results):
        linux = summarize(session_results, "linux")
        nt = summarize(session_results, "winnt")
        assert nt.c_abort_rate < linux.c_abort_rate

    def test_c_char_contrast(self, session_results):
        # "Linux has more than a 30% Abort failure rate for C character
        # operations, whereas all the Windows systems have zero percent".
        linux = group_rates(session_results, "linux")["C char"]
        assert linux.abort_rate > 0.30
        for variant in ("win95", "win98", "win98se", "winnt", "win2000", "wince"):
            assert group_rates(session_results, variant)["C char"].abort_rate == 0.0

    def test_linux_lower_in_eight_groups_higher_in_four(self, session_results):
        linux = group_rates(session_results, "linux")
        nt = group_rates(session_results, "winnt")
        higher = {
            g
            for g in SYSCALL_GROUPS + C_GROUPS
            if linux[g].abort_rate > nt[g].abort_rate
        }
        # "The four groupings for which Linux Abort failures are higher
        # are entirely within the C library."
        assert higher == {
            "C char",
            "C file I/O management",
            "C memory management",
            "C stream I/O",
        }

    def test_ce_aborts_below_nt(self, session_results):
        ce = summarize(session_results, "wince")
        nt = summarize(session_results, "winnt")
        assert ce.syscall_abort_rate < nt.syscall_abort_rate

    def test_nt_and_2000_behave_alike(self, session_results):
        nt = summarize(session_results, "winnt")
        w2k = summarize(session_results, "win2000")
        assert nt.syscall_abort_rate == pytest.approx(
            w2k.syscall_abort_rate, abs=0.02
        )

    def test_9x_family_behaves_alike(self, session_results):
        w98 = summarize(session_results, "win98")
        w98se = summarize(session_results, "win98se")
        assert w98.syscall_abort_rate == pytest.approx(
            w98se.syscall_abort_rate, abs=0.02
        )


class TestCeExceptionTypes:
    def test_only_the_papers_three_exceptions_appear_on_ce(self, session_results):
        """'The only exceptions observed were
        EXCEPTION_ACCESS_VIOLATION, EXCEPTION_DATATYPE_MISALIGNMENT, and
        EXCEPTION_STACK_OVERFLOW.' (paper section 3.2)"""
        observed = set()
        for row in session_results.for_variant("wince"):
            for index, code in enumerate(row.codes):
                if code == int(CaseCode.ABORT):
                    observed.add(row.details.get(index, "?"))
        assert observed <= {
            "EXCEPTION_ACCESS_VIOLATION",
            "EXCEPTION_DATATYPE_MISALIGNMENT",
            "EXCEPTION_STACK_OVERFLOW",
        }
        assert "EXCEPTION_ACCESS_VIOLATION" in observed
        # The ARM/SH3 alignment fault is CE-specific: no desktop variant
        # ever reports it.
        for variant in ("win95", "win98", "winnt", "win2000"):
            for row in session_results.for_variant(variant):
                assert "EXCEPTION_DATATYPE_MISALIGNMENT" not in set(
                    row.details.values()
                ), (variant, row.mut_name)

    def test_misalignment_observed_on_ce(self, session_results):
        observed = set()
        for row in session_results.for_variant("wince"):
            observed |= set(row.details.values())
        assert "EXCEPTION_DATATYPE_MISALIGNMENT" in observed


class TestRestartRates:
    def test_restarts_rare_everywhere(self, session_results):
        # "Restart failures were relatively rare for all the OS
        # implementations tested."
        for variant in session_results.variants():
            summary = summarize(session_results, variant)
            assert summary.overall_restart_rate < 0.01, variant


class TestTestedCounts:
    """Paper Table 1's tested-call counts."""

    def test_counts_match_table1(self, session_results):
        expected = {
            "linux": (91, 94),
            "win95": (133, 94),
            "win98": (143, 94),
            "win98se": (143, 94),
            "winnt": (143, 94),
            "win2000": (143, 94),
            "wince": (71, 82),
        }
        for variant, (syscalls, c_functions) in expected.items():
            summary = summarize(session_results, variant)
            assert summary.syscalls_tested == syscalls, variant
            assert summary.c_functions_tested == c_functions, variant

    def test_wince_parenthetical_counts(self, session_results):
        both = summarize(session_results, "wince", ce_counting="both")
        assert both.c_functions_tested == 108
        assert both.muts_tested == 179

    def test_ce_has_no_c_time_group(self, session_results):
        rates = group_rates(session_results, "wince")
        assert rates["C time"].muts == 0


class TestSilentVoting:
    """Paper Figure 2: estimated Silent failure rates by voting."""

    @pytest.fixture(scope="class")
    def estimates(self, session_results):
        return estimate_silent_rates(session_results)

    def test_9x_silent_rates_exceed_nt_family_on_syscalls(self, estimates):
        def syscall_silent(variant):
            est = estimates[variant]
            rates = [
                r
                for key, r in est.per_mut.items()
                if est.mut_groups[key] in SYSCALL_GROUPS
            ]
            return sum(rates) / len(rates)

        for old in ("win95", "win98", "win98se"):
            for new in ("winnt", "win2000"):
                assert syscall_silent(old) > 2 * syscall_silent(new), (old, new)

    def test_voting_estimate_close_to_ground_truth_ordering(self, estimates):
        # The estimator must at least order the families correctly
        # against the ground truth this simulation knows.
        truth98 = estimates["win98"].overall_truth_rate()
        truthnt = estimates["winnt"].overall_truth_rate()
        assert truth98 > truthnt
        assert estimates["win98"].overall_rate() > estimates["winnt"].overall_rate()

    def test_estimator_is_bounded_by_pass_rate(self, estimates, session_results):
        for variant in ("win95", "winnt"):
            for key, rate in estimates[variant].per_mut.items():
                row = session_results.get(variant, key[1], api=key[0])
                assert rate <= row.pass_no_error_rate + 1e-9
