"""Tests for the analysis layer: rates, CE counting, and the table /
figure renderers."""

import pytest

from repro.analysis.rates import (
    catastrophic_function_count,
    group_rates,
    select_results,
    summarize,
)
from repro.libc.registration import UNICODE_TWIN_OF
from repro.analysis.silent import estimate_silent_rates
from repro.analysis.tables import (
    render_figure1,
    render_figure2,
    render_table1,
    render_table2,
    render_table3,
)


class TestSelectResults:
    def test_default_counting_drops_shadowed_ascii_on_ce(self, session_results):
        rows = select_results(session_results, "wince")
        names = {r.mut_name for r in rows if r.api == "libc"}
        assert "wcscpy" in names
        assert "strcpy" not in names  # shadowed by its UNICODE twin
        assert "malloc" in names  # no twin: ASCII stays

    def test_both_counting_keeps_everything(self, session_results):
        rows = select_results(session_results, "wince", "both")
        names = {r.mut_name for r in rows if r.api == "libc"}
        assert {"wcscpy", "strcpy"} <= names

    def test_non_ce_variants_unaffected(self, session_results):
        assert len(select_results(session_results, "winnt")) == 237

    def test_both_mode_is_a_no_op_off_ce(self, session_results):
        assert select_results(session_results, "winnt", "both") == (
            select_results(session_results, "winnt")
        )


class TestCECountingBoth:
    """Direct coverage of the rate layer's ``ce_counting="both"`` path,
    the source of Table 1's parenthesised CE counts ("82 (108)")."""

    def test_both_adds_exactly_the_shadowed_ascii_rows(self, session_results):
        unicode_rows = select_results(session_results, "wince")
        both_rows = select_results(session_results, "wince", "both")
        extra = {r.mut_name for r in both_rows} - {
            r.mut_name for r in unicode_rows
        }
        assert extra, "CE must register shadowed ASCII originals"
        assert extra <= set(UNICODE_TWIN_OF.values())
        assert len(both_rows) == len(unicode_rows) + len(extra)

    def test_summarize_both_matches_table1_parentheses(self, session_results):
        headline = summarize(session_results, "wince")
        both = summarize(session_results, "wince", ce_counting="both")
        assert headline.c_functions_tested == 82
        assert both.c_functions_tested == 108
        assert both.syscalls_tested == headline.syscalls_tested
        assert both.muts_tested == 179  # the paper's "153 (179)"

    def test_catastrophic_count_never_shrinks_under_both(
        self, session_results
    ):
        unicode_count = catastrophic_function_count(
            session_results, "wince", {"libc"}, "unicode"
        )
        both_count = catastrophic_function_count(
            session_results, "wince", {"libc"}, "both"
        )
        assert both_count >= unicode_count
        both_rows = select_results(session_results, "wince", "both")
        assert both_count == sum(
            1 for r in both_rows if r.api == "libc" and r.catastrophic
        )

    def test_group_rates_both_mode_counts_more_muts(self, session_results):
        unicode_groups = group_rates(session_results, "wince")
        both_groups = group_rates(session_results, "wince", "both")
        for name, group in unicode_groups.items():
            assert both_groups[name].muts >= group.muts
        assert sum(g.muts for g in both_groups.values()) > sum(
            g.muts for g in unicode_groups.values()
        )


class TestSummaries:
    def test_overall_rate_weights_groups_evenly(self, session_results):
        summary = summarize(session_results, "winnt")
        groups = [g for g in summary.groups.values() if g.muts]
        expected = sum(g.abort_rate for g in groups) / len(groups)
        assert summary.overall_abort_rate == pytest.approx(expected)

    def test_catastrophic_counts(self, session_results):
        summary = summarize(session_results, "win98")
        assert summary.syscalls_catastrophic == 5
        assert summary.c_functions_catastrophic == 2
        assert summary.muts_catastrophic == 7


class TestRenderers:
    def test_table1_contains_all_variants_and_counts(self, session_results):
        text = render_table1(session_results)
        for name in (
            "Linux", "Windows 95", "Windows 98 SE", "Windows NT",
            "Windows 2000", "Windows CE",
        ):
            assert name in text
        assert "82 (108)" in text  # CE parenthetical counts
        assert "18 (27)" in text
        assert "153 (179)" in text

    def test_table2_marks_catastrophic_groups(self, session_results):
        text = render_table2(session_results)
        assert "*" in text
        assert "N/A" in text  # CE's C time column
        assert "C char" in text

    def test_figure1_has_bars_per_variant(self, session_results):
        text = render_figure1(session_results)
        assert text.count("|") >= 12 * 7  # 12 groups x 7 variants
        assert "#" in text

    def test_table3_lists_crashes_with_stars(self, session_results):
        text = render_table3(session_results)
        assert "*DuplicateHandle" in text
        assert "GetThreadContext" in text
        assert "*strncpy" in text
        assert "_tcsncpy" in text
        # NT/2000/Linux never appear as crash columns.
        assert "winnt" not in text

    def test_table3_empty_resultset_message(self):
        from repro.core.results import ResultSet

        results = ResultSet()
        results.new_result("winnt", "x", "win32", "I/O Primitives")
        assert "no Catastrophic failures" in render_table3(results)

    def test_figure2_renders_desktop_variants_only(self, session_results):
        text = render_figure2(session_results)
        assert "Windows 95" in text and "Windows 2000" in text
        assert "Windows CE" not in text
        assert "Linux" not in text

    def test_renderers_handle_partial_variant_sets(self, session_results):
        # Build a results view with just two variants via a fresh run of
        # the renderers against the same set (they must not assume all 7).
        from repro.core.campaign import Campaign, CampaignConfig
        from repro.win32.variants import WINNT, WIN98

        small = Campaign(
            [WINNT, WIN98], config=CampaignConfig(cap=30), muts=["CloseHandle"]
        ).run()
        assert "Windows NT" in render_table1(small)
        assert "Windows NT" in render_table2(small)
        render_figure1(small)
        render_figure2(small)


class TestSilentEstimator:
    def test_requires_two_variants(self, session_results):
        with pytest.raises(ValueError):
            estimate_silent_rates(session_results, ("winnt",))

    def test_group_rates_cover_groups(self, session_results):
        estimates = estimate_silent_rates(session_results)
        rates = estimates["win95"].group_rates()
        assert set(rates) >= {"I/O Primitives", "C string"}

    def test_votes_only_on_common_muts(self, session_results):
        estimates = estimate_silent_rates(session_results)
        # Win95 lacks MsgWaitForMultipleObjectsEx: nobody may vote on it.
        for estimate in estimates.values():
            assert ("win32", "MsgWaitForMultipleObjectsEx") not in estimate.per_mut

    def test_lax_handle_validation_is_caught_by_voting(self, session_results):
        estimates = estimate_silent_rates(session_results)
        key = ("win32", "CloseHandle")
        assert estimates["win98"].per_mut[key] > estimates["winnt"].per_mut[key]
