"""Unit tests for the C stdio groups across CRT flavours -- including the
wild-FILE* behaviours behind the paper's Windows CE finding."""

import pytest

from repro.core.context import TestContext
from repro.libc import errno_codes as E
from repro.posix.linux import LINUX
from repro.sim.errors import AccessViolation, SystemCrash
from repro.sim.machine import Machine
from repro.win32.variants import WINCE, WINNT


def crt_for(personality):
    machine = Machine(personality)
    ctx = TestContext(machine, machine.spawn_process())
    return ctx, ctx.crt


@pytest.fixture()
def glibc():
    return crt_for(LINUX)


@pytest.fixture()
def msvcrt():
    return crt_for(WINNT)


@pytest.fixture()
def cecrt():
    return crt_for(WINCE)


def open_file(ctx, crt, content=b"file content here\n", mode="r"):
    path = ctx.existing_file(content)
    return crt.open_stream_for_test(path, mode)


class TestFopen:
    def test_fopen_read_existing(self, glibc):
        ctx, crt = glibc
        path = ctx.existing_file(b"hello")
        fp = crt.fopen(ctx.cstring(path.encode()), ctx.cstring(b"r"))
        assert fp != 0
        assert crt.fgetc(fp) == ord("h")

    def test_fopen_missing_sets_enoent(self, glibc):
        ctx, crt = glibc
        fp = crt.fopen(ctx.cstring(b"/tmp/nope"), ctx.cstring(b"r"))
        assert fp == 0
        assert ctx.process.errno == E.ENOENT

    def test_fopen_write_creates(self, glibc):
        ctx, crt = glibc
        fp = crt.fopen(ctx.cstring(b"/tmp/new.txt"), ctx.cstring(b"w"))
        assert fp != 0
        assert ctx.machine.fs.lookup("/tmp/new.txt") is not None

    def test_fopen_invalid_mode(self, glibc):
        ctx, crt = glibc
        fp = crt.fopen(ctx.cstring(b"/tmp/x"), ctx.cstring(b"z"))
        assert fp == 0
        assert ctx.process.errno == E.EINVAL

    def test_fopen_bad_path_pointer_faults(self, glibc):
        ctx, crt = glibc
        with pytest.raises(AccessViolation):
            crt.fopen(0, ctx.cstring(b"r"))

    def test_freopen_switches_file(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt, b"first")
        other = ctx.existing_file(b"second")
        assert crt.freopen(ctx.cstring(other.encode()), ctx.cstring(b"r"), fp) == fp
        assert crt.fgetc(fp) == ord("s")


class TestStreamIo:
    def test_fread_into_buffer(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt, b"0123456789")
        dest = ctx.buffer(16)
        assert crt.fread(dest, 1, 10, fp) == 10
        assert ctx.mem.read(dest, 10) == b"0123456789"

    def test_fwrite_appends_to_file(self, glibc):
        ctx, crt = glibc
        fp = crt.open_stream_for_test("/tmp/out.txt", "w")
        src = ctx.buffer(8, b"payload!")
        assert crt.fwrite(src, 1, 8, fp) == 8
        assert bytes(ctx.machine.fs.lookup("/tmp/out.txt").data) == b"payload!"

    def test_fread_zero_size_is_zero(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt)
        assert crt.fread(ctx.buffer(8), 0, 10, fp) == 0

    def test_fgetc_sequence_and_eof(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt, b"ab")
        assert crt.fgetc(fp) == ord("a")
        assert crt.fgetc(fp) == ord("b")
        assert crt.fgetc(fp) == -1

    def test_ungetc_pushback(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt, b"xy")
        crt.fgetc(fp)
        assert crt.ungetc(ord("q"), fp) == ord("q")
        assert crt.fgetc(fp) == ord("q")
        assert crt.fgetc(fp) == ord("y")

    def test_fputc_putc(self, glibc):
        ctx, crt = glibc
        fp = crt.open_stream_for_test("/tmp/o", "w")
        assert crt.fputc(ord("A"), fp) == ord("A")
        assert crt.putc(ord("B"), fp) == ord("B")
        assert bytes(ctx.machine.fs.lookup("/tmp/o").data) == b"AB"

    def test_fgets_reads_line(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt, b"line one\nline two\n")
        buf = ctx.buffer(64)
        assert crt.fgets(buf, 64, fp) == buf
        assert ctx.mem.read_cstring(buf) == b"line one\n"

    def test_fgets_respects_size_limit(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt, b"abcdefgh")
        buf = ctx.buffer(64)
        crt.fgets(buf, 4, fp)
        assert ctx.mem.read_cstring(buf) == b"abc"

    def test_fgets_nonpositive_size_checked_on_msvcrt(self, msvcrt):
        ctx, crt = msvcrt
        fp = open_file(ctx, crt)
        assert crt.fgets(ctx.buffer(8), 0, fp) == 0
        assert ctx.process.errno == E.EINVAL

    def test_fgets_nonpositive_size_unbounded_on_glibc(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt, b"much longer than the destination\n")
        small = ctx.buffer(8)
        with pytest.raises(AccessViolation):
            crt.fgets(small, 0, fp)

    def test_fputs_and_puts(self, glibc):
        ctx, crt = glibc
        fp = crt.open_stream_for_test("/tmp/o", "w")
        assert crt.fputs(ctx.cstring(b"words"), fp) == 5
        assert crt.puts(ctx.cstring(b"out")) == 4

    def test_gets_overflows_small_buffer(self, glibc):
        ctx, crt = glibc
        small = ctx.buffer(8)
        with pytest.raises(AccessViolation):
            crt.gets(small)  # console line is longer than 8 bytes

    def test_gets_into_large_buffer(self, glibc):
        ctx, crt = glibc
        big = ctx.buffer(4096)
        assert crt.gets(big) == big
        assert ctx.mem.read_cstring(big).startswith(b"console input")


class TestFormatted:
    def test_fprintf_plain_and_d(self, glibc):
        ctx, crt = glibc
        fp = crt.open_stream_for_test("/tmp/o", "w")
        assert crt.fprintf(fp, ctx.cstring(b"value=%d!"), 42) == 9
        assert bytes(ctx.machine.fs.lookup("/tmp/o").data) == b"value=42!"

    def test_fprintf_percent_s_with_integer_vararg_faults(self, glibc):
        ctx, crt = glibc
        fp = crt.open_stream_for_test("/tmp/o", "w")
        with pytest.raises(AccessViolation):
            crt.fprintf(fp, ctx.cstring(b"%s"), 64)

    def test_fprintf_percent_n_writes_through_vararg(self, glibc):
        ctx, crt = glibc
        fp = crt.open_stream_for_test("/tmp/o", "w")
        out = ctx.buffer(8)
        crt.fprintf(fp, ctx.cstring(b"abc%n"), out)
        assert ctx.mem.read_u32(out) == 3

    def test_sprintf_overflow_via_huge_width(self, glibc):
        ctx, crt = glibc
        small = ctx.buffer(64)
        with pytest.raises(AccessViolation):
            crt.sprintf(small, ctx.cstring(b"%999999d"), 1)

    def test_sprintf_normal(self, glibc):
        ctx, crt = glibc
        buf = ctx.buffer(64)
        assert crt.sprintf(buf, ctx.cstring(b"x=%x"), 255) == 4
        assert ctx.mem.read_cstring(buf) == b"x=ff"

    def test_fscanf_d_parses_number(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt, b"  123 rest")
        out = ctx.buffer(8)
        assert crt.fscanf(fp, ctx.cstring(b"%d"), out) == 1
        assert ctx.mem.read_u32(out) == 123

    def test_fscanf_s_writes_token(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt, b"token rest")
        out = ctx.buffer(32)
        assert crt.fscanf(fp, ctx.cstring(b"%s"), out) == 1
        assert ctx.mem.read_cstring(out) == b"token"

    def test_fscanf_no_match_returns_minus_one(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt, b"words only")
        assert crt.fscanf(fp, ctx.cstring(b"%d"), ctx.buffer(8)) == -1


class TestFileManagement:
    def test_fseek_ftell_rewind(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt, b"0123456789")
        assert crt.fseek(fp, 4, 0) == 0
        assert crt.ftell(fp) == 4
        crt.rewind(fp)
        assert crt.ftell(fp) == 0

    def test_fseek_invalid_whence(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt)
        assert crt.fseek(fp, 0, 7) == -1
        assert ctx.process.errno == E.EINVAL

    def test_fclose_then_stale_use_glibc_faults(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt)
        assert crt.fclose(fp) == 0
        with pytest.raises(AccessViolation):
            crt.fgetc(fp)

    def test_fclose_then_stale_use_msvcrt_errors(self, msvcrt):
        ctx, crt = msvcrt
        fp = open_file(ctx, crt)
        assert crt.fclose(fp) == 0
        assert crt.fgetc(fp) == -1
        assert ctx.process.errno == E.EINVAL

    def test_fflush_null_flushes_all(self, glibc):
        ctx, crt = glibc
        assert crt.fflush(0) == 0
        assert ctx.process.errno == 0

    def test_clearerr_resets_flags(self, glibc):
        ctx, crt = glibc
        fp = open_file(ctx, crt, b"")
        crt.fgetc(fp)  # hits EOF
        state = crt._streams[fp]
        assert state.eof
        crt.clearerr(fp)
        assert not state.eof

    def test_remove_and_rename(self, glibc):
        ctx, crt = glibc
        path = ctx.existing_file(b"data")
        new = "/tmp/renamed.dat"
        assert crt.rename(ctx.cstring(path.encode()), ctx.cstring(new.encode())) == 0
        assert crt.remove(ctx.cstring(new.encode())) == 0
        assert ctx.machine.fs.lookup(new) is None

    def test_remove_missing_is_error(self, glibc):
        ctx, crt = glibc
        assert crt.remove(ctx.cstring(b"/tmp/nope")) == -1
        assert ctx.process.errno == E.ENOENT


class TestWildFilePointer:
    """The 'string buffer typecast to a file pointer' behaviours."""

    def wild(self, ctx):
        return ctx.cstring(b"this is not a FILE structure at all.....")

    def test_glibc_chases_garbage_buffer_pointer_and_faults(self, glibc):
        ctx, crt = glibc
        with pytest.raises(AccessViolation):
            crt.fgetc(self.wild(ctx))

    def test_msvcrt_rejects_unregistered_stream(self, msvcrt):
        ctx, crt = msvcrt
        assert crt.fgetc(self.wild(ctx)) == -1
        assert ctx.process.errno == E.EINVAL

    def test_msvcrt_rejects_null(self, msvcrt):
        ctx, crt = msvcrt
        assert crt.fclose(0) == -1
        assert ctx.process.errno == E.EINVAL

    def test_glibc_null_faults(self, glibc):
        ctx, crt = glibc
        with pytest.raises(AccessViolation):
            crt.fclose(0)

    def test_ce_wild_file_crashes_machine_on_raw_function(self, cecrt):
        ctx, crt = cecrt
        with pytest.raises(SystemCrash):
            crt.fclose(self.wild(ctx))
        assert ctx.machine.crashed
        assert ctx.machine.crash_function == "fclose"

    def test_ce_wild_file_corrupts_on_starred_function(self, cecrt):
        ctx, crt = cecrt
        assert crt.fread(ctx.buffer(8), 1, 8, self.wild(ctx)) == 0
        assert ctx.machine.corruption_level >= 1
        assert not ctx.machine.crashed

    def test_ce_repeated_fread_corruption_eventually_crashes(self, cecrt):
        ctx, crt = cecrt
        with pytest.raises(SystemCrash):
            for _ in range(10):
                crt.fread(ctx.buffer(8), 1, 8, self.wild(ctx))

    def test_ce_valid_streams_work_normally(self, cecrt):
        ctx, crt = cecrt
        fp = open_file(ctx, crt, b"ce data")
        assert crt.fgetc(fp) == ord("c")
        assert not ctx.machine.crashed

    def test_unmapped_file_pointer_aborts_everywhere(self, glibc, msvcrt, cecrt):
        for ctx, crt in (glibc, msvcrt, cecrt):
            with pytest.raises(Exception) as info:
                crt.ftell(0xDDDD_0000)
            assert not isinstance(info.value, SystemCrash)

    def test_stdin_stdout_are_live_streams(self, glibc):
        _, crt = glibc
        assert crt.fgetc(crt.stdin) == ord("c")
        assert crt.fputc(ord("!"), crt.stdout) == ord("!")
