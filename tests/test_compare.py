"""Tests for campaign-to-campaign regression diffing."""

import dataclasses

import pytest

from repro.analysis.compare import compare_results
from repro.core.campaign import Campaign, CampaignConfig
from repro.win32.variants import WIN98SE

MUTS = ["GetThreadContext", "strncpy", "strcpy", "CloseHandle"]

PATCHED = dataclasses.replace(
    WIN98SE,
    raw_kernel_access=frozenset(),
    corrupting_access=frozenset(),
)


@pytest.fixture(scope="module")
def baseline():
    return Campaign(
        [WIN98SE], config=CampaignConfig(cap=80), muts=MUTS
    ).run()


@pytest.fixture(scope="module")
def candidate():
    return Campaign(
        [PATCHED], config=CampaignConfig(cap=80), muts=MUTS
    ).run()


class TestCompareResults:
    def test_identical_runs_show_no_changes(self, baseline):
        rerun = Campaign(
            [WIN98SE], config=CampaignConfig(cap=80), muts=MUTS
        ).run()
        report = compare_results(baseline, rerun)
        assert report.changed() == []
        assert not report.only_in_baseline and not report.only_in_candidate

    def test_patch_fixes_crashes(self, baseline, candidate):
        report = compare_results(baseline, candidate)
        fixed = {d.mut_name for d in report.fixed_crashes()}
        assert {"GetThreadContext", "strncpy"} <= fixed
        assert report.introduced_crashes() == []

    def test_unpatching_introduces_crashes(self, baseline, candidate):
        report = compare_results(candidate, baseline)
        introduced = {d.mut_name for d in report.introduced_crashes()}
        assert "GetThreadContext" in introduced
        assert report.regressions()

    def test_changed_cases_are_indexed(self, baseline, candidate):
        report = compare_results(baseline, candidate)
        gtc = next(d for d in report.diffs if d.mut_name == "GetThreadContext")
        assert gtc.changed
        assert all(isinstance(i, int) for i in gtc.changed_cases)

    def test_coverage_drift_detected(self, baseline):
        partial = Campaign(
            [WIN98SE], config=CampaignConfig(cap=80), muts=MUTS[:2]
        ).run()
        report = compare_results(baseline, partial)
        assert len(report.only_in_baseline) == 2

    def test_render(self, baseline, candidate):
        text = compare_results(baseline, candidate).render()
        assert "CRASH FIXED" in text
        assert "Campaign comparison" in text

    def test_render_no_changes(self, baseline):
        report = compare_results(baseline, baseline)
        assert "no behavioural changes" in report.render()

    def test_silent_truth_delta_tracks_conversion(self, baseline, candidate):
        # The patch converts strncpy's silent corruption into aborts:
        # ground-truth silent rate must drop.
        report = compare_results(baseline, candidate)
        strncpy = next(d for d in report.diffs if d.mut_name == "strncpy")
        assert strncpy.silent_truth_delta < 0
        assert strncpy.abort_delta > 0
