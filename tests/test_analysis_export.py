"""Tests for the machine-readable data exports."""

import csv
import io

from repro.analysis.export import (
    figure2_series,
    table1_csv,
    table1_rows,
    table2_csv,
    table2_matrix,
    write_csv,
)


class TestTable1Rows:
    def test_one_row_per_variant_in_paper_order(self, session_results):
        rows = table1_rows(session_results)
        assert [r["variant"] for r in rows] == [
            "linux", "win95", "win98", "win98se", "winnt", "win2000", "wince",
        ]

    def test_counts_match_summaries(self, session_results):
        rows = {r["variant"]: r for r in table1_rows(session_results)}
        assert rows["win98"]["syscalls_catastrophic"] == 5
        assert rows["wince"]["c_functions_tested"] == 82
        assert rows["linux"]["muts_catastrophic"] == 0

    def test_rates_are_fractions(self, session_results):
        for row in table1_rows(session_results):
            assert 0.0 <= row["overall_abort_rate"] <= 1.0


class TestTable2Matrix:
    def test_dimensions(self, session_results):
        groups, names, matrix = table2_matrix(session_results)
        assert len(groups) == 12
        assert len(names) == 7
        assert all(len(row) == 7 for row in matrix)

    def test_ce_c_time_is_none(self, session_results):
        groups, names, matrix = table2_matrix(session_results)
        ce = names.index("Windows CE")
        c_time = groups.index("C time")
        assert matrix[c_time][ce] is None

    def test_c_char_contrast_in_data(self, session_results):
        groups, names, matrix = table2_matrix(session_results)
        c_char = matrix[groups.index("C char")]
        linux = names.index("Linux")
        assert c_char[linux] > 0.3
        for index, name in enumerate(names):
            if name != "Linux":
                assert c_char[index] == 0.0


class TestFigure2Series:
    def test_desktop_variants_only(self, session_results):
        series = figure2_series(session_results)
        assert set(series) == {"win95", "win98", "win98se", "winnt", "win2000"}
        assert "wince" not in series

    def test_components_sum_sensibly(self, session_results):
        series = figure2_series(session_results)
        for variant, groups in series.items():
            for group, parts in groups.items():
                total = parts["abort"] + parts["restart"] + parts["silent"]
                assert 0.0 <= total <= 1.0, (variant, group)

    def test_io_primitives_silent_gap(self, session_results):
        series = figure2_series(session_results)
        assert (
            series["win98"]["I/O Primitives"]["silent"]
            > 10 * max(series["winnt"]["I/O Primitives"]["silent"], 0.001)
        )


class TestCsv:
    def test_table1_csv_parses(self, session_results):
        rows = list(csv.DictReader(io.StringIO(table1_csv(session_results))))
        assert len(rows) == 7
        assert rows[0]["variant"] == "linux"

    def test_table2_csv_parses(self, session_results):
        rows = list(csv.reader(io.StringIO(table2_csv(session_results))))
        assert len(rows) == 13  # header + 12 groups
        assert rows[0][0] == "group"

    def test_write_csv_creates_files(self, session_results, tmp_path):
        written = write_csv(session_results, tmp_path / "csv")
        assert [p.name for p in written] == ["table1.csv", "table2.csv"]
        for path in written:
            assert path.exists() and path.stat().st_size > 0
