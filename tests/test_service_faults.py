"""Fault-injection tests for the testing service: a dependable testing
harness must itself handle broken peers, truncated records, and dead
links."""

import threading

import pytest

from repro.service import protocol as P
from repro.service.rpc import (
    ACCEPT_SYSTEM_ERR,
    LoopbackTransport,
    RpcClient,
    RpcError,
    SocketTransport,
    serve_connection,
)
from repro.service.xdr import XdrDecoder, XdrEncoder


def spawn_server(handlers):
    server_end, client_end = LoopbackTransport.pair()
    thread = threading.Thread(
        target=serve_connection, args=(server_end, handlers), daemon=True
    )
    thread.start()
    return RpcClient(client_end), client_end


class TestServerLoopResilience:
    def test_handler_crash_returns_system_err_and_survives(self):
        calls = []

        def fragile(dec):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("handler bug")
            return XdrEncoder().u32(7).bytes()

        client, _ = spawn_server({1: fragile})
        with pytest.raises(RpcError, match=f"accept state {ACCEPT_SYSTEM_ERR}"):
            client.call(1)
        # The connection is still serviceable after the handler crash.
        assert client.call(1).u32() == 7

    def test_garbage_record_is_ignored(self):
        def ok(dec):
            return b""

        server_end, client_end = LoopbackTransport.pair()
        thread = threading.Thread(
            target=serve_connection, args=(server_end, {1: ok}), daemon=True
        )
        thread.start()
        client_end.send_record(b"\x00\x01")  # unparseable: silently dropped
        client = RpcClient(client_end)
        client.call(1)  # loop survived

    def test_reply_to_wrong_xid_detected(self):
        server_end, client_end = LoopbackTransport.pair()

        def rogue():
            server_end.recv_record()
            from repro.service.rpc import encode_reply

            server_end.send_record(encode_reply(0xBEEF, 0))

        threading.Thread(target=rogue, daemon=True).start()
        client = RpcClient(client_end)
        with pytest.raises(RpcError, match="xid mismatch"):
            client.call(1)


class TestSocketFraming:
    def test_multi_fragment_records_reassembled(self):
        import socket
        import struct

        from repro.service.rpc import LAST_FRAGMENT

        a, b = socket.socketpair()
        receiver = SocketTransport(a)
        # Send "hello world" as two fragments by hand.
        b.sendall(struct.pack(">I", 6) + b"hello ")
        b.sendall(struct.pack(">I", LAST_FRAGMENT | 5) + b"world")
        assert receiver.recv_record() == b"hello world"
        a.close()
        b.close()

    def test_connection_closed_mid_record(self):
        import socket
        import struct

        a, b = socket.socketpair()
        receiver = SocketTransport(a)
        b.sendall(struct.pack(">I", 0x8000_0010))  # promises 16 bytes
        b.sendall(b"only8byt")
        b.close()
        with pytest.raises(RpcError, match="closed mid-record"):
            receiver.recv_record()
        a.close()

    def test_implausible_fragment_length_rejected(self):
        import socket
        import struct

        a, b = socket.socketpair()
        receiver = SocketTransport(a)
        b.sendall(struct.pack(">I", 0x8400_0000))  # 64 MiB fragment
        with pytest.raises(RpcError, match="implausible"):
            receiver.recv_record()
        a.close()
        b.close()


class TestProtocolRobustness:
    def test_hello_with_unknown_variant_is_system_err(self, registry, winnt):
        from repro.service.server import BallistaServer

        server = BallistaServer([winnt], registry=registry, cap=10)
        client, _ = spawn_server(server.handlers())
        with pytest.raises(RpcError, match=f"accept state {ACCEPT_SYSTEM_ERR}"):
            client.call(P.PROC_HELLO, P.encode_hello("beos"))

    def test_get_plan_for_unknown_mut_is_system_err(self, registry, winnt):
        from repro.service.server import BallistaServer

        server = BallistaServer([winnt], registry=registry, cap=10)
        client, _ = spawn_server(server.handlers())
        with pytest.raises(RpcError):
            client.call(P.PROC_GET_PLAN, P.encode_get_plan("win32", "NopeA"))

    def test_retransmitted_report_is_acked_not_double_counted(
        self, registry, winnt
    ):
        from repro.service.server import BallistaServer

        server = BallistaServer([winnt], registry=registry, cap=10)
        client, _ = spawn_server(server.handlers())
        body = P.encode_report(
            "winnt", "win32", "CloseHandle", b"\x00", b"\x00", False, False, 1,
            [0], seq=0,
        )
        client.call(P.PROC_REPORT, body)
        # A retransmission (same sequence number) is acknowledged so the
        # client can move on, but the batch is recorded exactly once.
        client.call(P.PROC_REPORT, body)
        assert server.duplicate_reports == 1
        assert len(server.results) == 1
        row = server.results.get("winnt", "CloseHandle")
        assert len(row.codes) == 1

    def test_conflicting_report_seq_is_system_err(self, registry, winnt):
        from repro.service.server import BallistaServer

        server = BallistaServer([winnt], registry=registry, cap=10)
        client, _ = spawn_server(server.handlers())

        def body(seq):
            return P.encode_report(
                "winnt", "win32", "CloseHandle", b"\x00", b"\x00", False,
                False, 1, [0], seq=seq,
            )

        client.call(P.PROC_REPORT, body(0))
        # Same MuT under a *new* sequence number is a client bug, not a
        # retransmission: the duplicate result is still rejected.
        with pytest.raises(RpcError, match=f"accept state {ACCEPT_SYSTEM_ERR}"):
            client.call(P.PROC_REPORT, body(1))

    def test_report_with_garbage_body_is_garbage_args(self, registry, winnt):
        from repro.service.rpc import ACCEPT_GARBAGE_ARGS
        from repro.service.server import BallistaServer

        server = BallistaServer([winnt], registry=registry, cap=10)
        client, _ = spawn_server(server.handlers())
        with pytest.raises(RpcError, match=f"accept state {ACCEPT_GARBAGE_ARGS}"):
            client.call(P.PROC_REPORT, b"\x00\x00")

    def test_decoder_rejects_truncated_plan(self):
        data = P.encode_plan_reply([("A", "B")])
        from repro.service.xdr import XdrError

        with pytest.raises(XdrError):
            P.decode_plan_reply(XdrDecoder(data[:-6]))
