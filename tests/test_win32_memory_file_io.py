"""Unit tests for Win32 memory, file/directory, I/O-primitive, and
environment APIs."""

import pytest

from repro.core.context import TestContext
from repro.sim.errors import AccessViolation, SystemCrash
from repro.sim.machine import Machine
from repro.sim.objects import FileObject
from repro.win32 import errors as W
from repro.win32.io_api import STD_INPUT_HANDLE, STD_OUTPUT_HANDLE
from repro.win32.variants import WIN95, WIN98, WINNT


def win32_for(personality):
    machine = Machine(personality)
    ctx = TestContext(machine, machine.spawn_process())
    return ctx, ctx.win32


@pytest.fixture()
def nt():
    return win32_for(WINNT)


@pytest.fixture()
def w98():
    return win32_for(WIN98)


def file_handle(ctx, content=b"file data", readable=True):
    path = ctx.existing_file(content)
    open_file = ctx.machine.fs.open(path, readable=readable, writable=not readable)
    return ctx.process.handles.insert(FileObject(open_file, name=path))


class TestVirtualMemory:
    def test_alloc_commit_and_use(self, nt):
        ctx, api = nt
        addr = api.VirtualAlloc(0, 4096, 0x1000, 0x04)
        assert addr != 0
        ctx.mem.write(addr, b"hello")

    def test_alloc_zero_size_invalid(self, nt):
        ctx, api = nt
        assert api.VirtualAlloc(0, 0, 0x1000, 0x04) == 0
        assert ctx.process.last_error == W.ERROR_INVALID_PARAMETER

    def test_alloc_bad_protect_rejected_on_nt(self, nt):
        ctx, api = nt
        assert api.VirtualAlloc(0, 4096, 0x1000, 0x12345) == 0

    def test_alloc_bad_protect_accepted_silently_on_98(self, w98):
        ctx, api = w98
        assert api.VirtualAlloc(0, 4096, 0x1000, 0x12345) != 0
        assert ctx.process.last_error == 0  # Silent failure material

    def test_free_release(self, nt):
        ctx, api = nt
        addr = api.VirtualAlloc(0, 4096, 0x1000, 0x04)
        assert api.VirtualFree(addr, 0, 0x8000) == 1
        with pytest.raises(AccessViolation):
            ctx.mem.read(addr, 1)

    def test_free_unknown_address(self, nt):
        ctx, api = nt
        assert api.VirtualFree(0xDEAD_0000, 0, 0x8000) == 0
        assert ctx.process.last_error == W.ERROR_INVALID_ADDRESS

    def test_protect_changes_and_reports_old(self, nt):
        ctx, api = nt
        addr = api.VirtualAlloc(0, 4096, 0x1000, 0x04)
        old = ctx.buffer(8)
        assert api.VirtualProtect(addr, 4096, 0x02, old) == 1
        with pytest.raises(AccessViolation):
            ctx.mem.write(addr, b"x")

    def test_query_reports_region(self, nt):
        ctx, api = nt
        addr = api.VirtualAlloc(0, 4096, 0x1000, 0x04)
        info = ctx.buffer(32)
        assert api.VirtualQuery(addr, info, 32) == 28
        assert ctx.mem.read_u32(info) == addr

    def test_query_short_buffer(self, nt):
        ctx, api = nt
        assert api.VirtualQuery(0, ctx.buffer(8), 8) == 0

    def test_lock_unlock(self, nt):
        ctx, api = nt
        addr = api.VirtualAlloc(0, 4096, 0x1000, 0x04)
        assert api.VirtualLock(addr, 4096) == 1
        assert api.VirtualUnlock(addr, 4096) == 1
        assert api.VirtualLock(0xDEAD_0000, 16) == 0


class TestHeaps:
    def test_heap_lifecycle(self, nt):
        ctx, api = nt
        heap = api.HeapCreate(0, 0x1000, 0x10000)
        block = api.HeapAlloc(heap, 0, 64)
        assert block != 0
        assert api.HeapSize(heap, 0, block) == 64
        assert api.HeapValidate(heap, 0, block) == 1
        assert api.HeapFree(heap, 0, block) == 1
        assert api.HeapDestroy(heap) == 1

    def test_heap_realloc_preserves(self, nt):
        ctx, api = nt
        heap = api.HeapCreate(0, 0x1000, 0)
        block = api.HeapAlloc(heap, 0, 8)
        ctx.mem.write(block, b"12345678")
        bigger = api.HeapReAlloc(heap, 0, block, 64)
        assert ctx.mem.read(bigger, 8) == b"12345678"

    def test_heap_alloc_over_max_with_exceptions_flag_throws(self, nt):
        from repro.sim.errors import ThrownException

        _, api = nt
        heap = api.HeapCreate(0, 0, 0x1000)
        with pytest.raises(ThrownException) as info:
            api.HeapAlloc(heap, 0x4, 0x100000)
        assert info.value.recoverable

    def test_heap_create_huge_initial_crashes_95(self):
        ctx, api = win32_for(WIN95)
        with pytest.raises(SystemCrash):
            api.HeapCreate(0, 0x7FFF_FFFF, 0)
        assert ctx.machine.crash_function == "HeapCreate"

    def test_heap_create_huge_initial_fails_cleanly_on_98(self, w98):
        ctx, api = w98
        assert api.HeapCreate(0, 0x7FFF_FFFF, 0) == 0
        assert not ctx.machine.crashed

    def test_heap_create_fine_on_nt(self, nt):
        _, api = nt
        assert api.HeapCreate(0, 0x7FFF_FFFF, 0) == 0  # ENOMEM, no crash

    def test_heap_free_foreign_pointer(self, nt, w98):
        ctx, api = nt
        heap = api.HeapCreate(0, 0x1000, 0)
        assert api.HeapFree(heap, 0, 0xDEAD) == 0
        ctx98, api98 = w98
        heap98 = api98.HeapCreate(0, 0x1000, 0)
        assert api98.HeapFree(heap98, 0, 0xDEAD) == 1  # 9x lies


class TestLegacyAllocators:
    def test_global_alloc_free(self, nt):
        ctx, api = nt
        handle = api.GlobalAlloc(0, 64)
        assert api.GlobalSize(handle) == 64
        assert api.GlobalFree(handle) == 0

    def test_global_free_wild_pointer_faults(self, nt):
        _, api = nt
        with pytest.raises(AccessViolation):
            api.GlobalFree(0xDEAD_0000)

    def test_local_alloc_free(self, nt):
        _, api = nt
        handle = api.LocalAlloc(0, 32)
        assert api.LocalFree(handle) == 0
        assert api.LocalFree(0) == 0


class TestFileApi:
    def test_create_file_and_read_write(self, nt):
        ctx, api = nt
        handle = api.CreateFileA(
            ctx.cstring(b"/tmp/cf.txt"), 0xC000_0000, 0, 0, 2, 0x80, 0
        )
        assert handle not in (0, 0xFFFF_FFFF)
        written = ctx.buffer(8)
        src = ctx.buffer(8, b"ABCDEFGH")
        assert api.WriteFile(handle, src, 8, written, 0) == 1
        assert ctx.mem.read_u32(written) == 8
        assert api.SetFilePointer(handle, 0, 0, 0) == 0
        dest = ctx.buffer(8)
        read_count = ctx.buffer(8)
        assert api.ReadFile(handle, dest, 8, read_count, 0) == 1
        assert ctx.mem.read(dest, 8) == b"ABCDEFGH"

    def test_create_new_conflicts(self, nt):
        ctx, api = nt
        path = ctx.existing_file()
        handle = api.CreateFileA(
            ctx.cstring(path.encode()), 0x8000_0000, 0, 0, 1, 0x80, 0
        )
        assert handle == 0xFFFF_FFFF
        assert ctx.process.last_error == W.ERROR_FILE_EXISTS

    def test_open_existing_missing(self, nt):
        ctx, api = nt
        handle = api.CreateFileA(
            ctx.cstring(b"/tmp/missing"), 0x8000_0000, 0, 0, 3, 0x80, 0
        )
        assert handle == 0xFFFF_FFFF
        assert ctx.process.last_error == W.ERROR_FILE_NOT_FOUND

    def test_delete_copy_move(self, nt):
        ctx, api = nt
        path = ctx.existing_file(b"xyz")
        copy = b"/tmp/copy.dat"
        assert api.CopyFileA(ctx.cstring(path.encode()), ctx.cstring(copy), 0) == 1
        assert api.MoveFileA(ctx.cstring(copy), ctx.cstring(b"/tmp/moved.dat")) == 1
        assert api.DeleteFileA(ctx.cstring(b"/tmp/moved.dat")) == 1

    def test_directories(self, nt):
        ctx, api = nt
        assert api.CreateDirectoryA(ctx.cstring(b"/tmp/nd"), 0) == 1
        assert api.SetCurrentDirectoryA(ctx.cstring(b"/tmp/nd")) == 1
        out = ctx.buffer(64)
        assert api.GetCurrentDirectoryA(64, out) > 0
        assert api.RemoveDirectoryA(ctx.cstring(b"/tmp/nd")) == 1

    def test_attributes(self, nt):
        ctx, api = nt
        path = ctx.existing_file()
        encoded = ctx.cstring(path.encode())
        assert api.GetFileAttributesA(encoded) == 0x80  # NORMAL
        assert api.SetFileAttributesA(encoded, 0x01) == 1
        assert api.GetFileAttributesA(encoded) & 0x01

    def test_get_file_information_by_handle(self, nt):
        ctx, api = nt
        handle = file_handle(ctx, b"12345")
        info = ctx.buffer(64)
        assert api.GetFileInformationByHandle(handle, info) == 1
        assert ctx.mem.read_u32(info + 36) == 5  # size low

    def test_gfibh_bad_buffer_crashes_98(self, w98):
        ctx, api = w98
        handle = file_handle(ctx)
        with pytest.raises(SystemCrash):
            api.GetFileInformationByHandle(handle, 0)

    def test_filetime_conversions(self, nt):
        ctx, api = nt
        ft = ctx.buffer(8)
        st = ctx.buffer(16)
        handle = file_handle(ctx)
        assert api.GetFileTime(handle, ft, 0, 0) == 1
        assert api.FileTimeToSystemTime(ft, st) == 1
        year = ctx.mem.read_u16(st)
        assert year == 2000  # simulated epoch is June 2000

    def test_filetime_garbage_rejected_on_nt(self, nt):
        ctx, api = nt
        ft = ctx.buffer(8, b"\xff" * 8)
        assert api.FileTimeToSystemTime(ft, ctx.buffer(16)) == 0
        assert ctx.process.last_error == W.ERROR_INVALID_PARAMETER

    def test_filetime_null_crashes_95(self):
        ctx, api = win32_for(WIN95)
        with pytest.raises(SystemCrash):
            api.FileTimeToSystemTime(0, 0)

    def test_find_files(self, nt):
        ctx, api = nt
        ctx.existing_file()
        data = ctx.buffer(320)
        handle = api.FindFirstFileA(ctx.cstring(b"/tmp/*"), data)
        assert handle != 0xFFFF_FFFF
        api.FindNextFileA(handle, data)
        assert api.FindClose(handle) == 1

    def test_temp_names(self, nt):
        ctx, api = nt
        out = ctx.buffer(64)
        assert api.GetTempPathA(64, out) == 5
        assert ctx.mem.read_cstring(out) == b"/tmp/"
        name_out = ctx.buffer(260)
        unique = api.GetTempFileNameA(
            ctx.cstring(b"/tmp"), ctx.cstring(b"bt"), 0, name_out
        )
        assert unique != 0
        created = ctx.mem.read_cstring(name_out).decode()
        assert ctx.machine.fs.lookup(created) is not None

    def test_full_path_name(self, nt):
        ctx, api = nt
        out = ctx.buffer(64)
        written = api.GetFullPathNameA(ctx.cstring(b"/tmp/../tmp/a"), 64, out, 0)
        assert written == len("/tmp/a")
        assert ctx.mem.read_cstring(out) == b"/tmp/a"

    def test_disk_and_drive_info(self, nt):
        ctx, api = nt
        assert api.GetDriveTypeA(0) == 3
        sectors = ctx.buffer(8)
        assert api.GetDiskFreeSpaceA(0, sectors, 0, 0, 0) == 1
        assert api.GetLogicalDrives() == 0b100


class TestIoPrimitives:
    def test_close_handle_strict_vs_lax(self, nt, w98):
        ctx, api = nt
        assert api.CloseHandle(0xBAD0) == 0
        assert ctx.process.last_error == W.ERROR_INVALID_HANDLE
        ctx98, api98 = w98
        assert api98.CloseHandle(0xBAD0) == 1  # Silent failure
        assert ctx98.process.last_error == 0

    def test_duplicate_handle_happy_path(self, nt):
        ctx, api = nt
        source = file_handle(ctx)
        out = ctx.buffer(8)
        assert (
            api.DuplicateHandle(
                0xFFFF_FFFF, source, 0xFFFF_FFFF, out, 0, 0, 0
            )
            == 1
        )
        new_handle = ctx.mem.read_u32(out)
        assert ctx.process.handles.get(new_handle) is not None

    def test_duplicate_handle_corrupts_98(self, w98):
        ctx, api = w98
        source = file_handle(ctx)
        assert (
            api.DuplicateHandle(0xFFFF_FFFF, source, 0xFFFF_FFFF, 1, 0, 0, 0) == 1
        )
        assert ctx.machine.corruption_level >= 1

    def test_duplicate_handle_bad_target_on_nt(self, nt):
        ctx, api = nt
        source = file_handle(ctx)
        assert (
            api.DuplicateHandle(0xFFFF_FFFF, source, 0xFFFF_FFFF, 1, 0, 0, 0) == 0
        )
        assert ctx.process.last_error == W.ERROR_NOACCESS

    def test_std_handles(self, nt):
        ctx, api = nt
        handle = api.GetStdHandle(STD_INPUT_HANDLE)
        assert handle not in (0, 0xFFFF_FFFF)
        assert api.GetStdHandle(STD_INPUT_HANDLE) == handle  # stable
        assert api.GetStdHandle(77) == 0xFFFF_FFFF
        assert api.SetStdHandle(STD_OUTPUT_HANDLE, handle) == 1

    def test_locks(self, nt):
        ctx, api = nt
        handle = file_handle(ctx)
        assert api.LockFile(handle, 0, 0, 10, 0) == 1
        assert api.LockFile(handle, 5, 0, 10, 0) == 0  # overlap
        assert ctx.process.last_error == W.ERROR_LOCK_VIOLATION
        assert api.UnlockFile(handle, 0, 0, 10, 0) == 1
        assert api.UnlockFile(handle, 0, 0, 10, 0) == 0

    def test_read_file_requires_result_channel(self, nt):
        ctx, api = nt
        handle = file_handle(ctx)
        assert api.ReadFile(handle, ctx.buffer(8), 8, 0, 0) == 0
        assert ctx.process.last_error == W.ERROR_INVALID_PARAMETER

    def test_write_file_bad_source_graceful_on_nt(self, nt):
        ctx, api = nt
        handle = file_handle(ctx, readable=False)
        assert api.WriteFile(handle, 0xDEAD_0000, 8, ctx.buffer(8), 0) == 0
        assert ctx.process.last_error == W.ERROR_NOACCESS

    def test_set_file_pointer_negative_seek(self, nt):
        ctx, api = nt
        handle = file_handle(ctx)
        assert api.SetFilePointer(handle, -5, 0, 0) == 0xFFFF_FFFF
        assert ctx.process.last_error == W.ERROR_NEGATIVE_SEEK

    def test_flush_file_buffers(self, nt):
        ctx, api = nt
        assert api.FlushFileBuffers(file_handle(ctx)) == 1


class TestEnvironment:
    def test_env_roundtrip(self, nt):
        ctx, api = nt
        assert api.SetEnvironmentVariableA(
            ctx.cstring(b"BALLISTA_VAR"), ctx.cstring(b"value1")
        ) == 1
        out = ctx.buffer(64)
        length = api.GetEnvironmentVariableA(ctx.cstring(b"BALLISTA_VAR"), out, 64)
        assert length == 6
        assert ctx.mem.read_cstring(out) == b"value1"

    def test_env_missing(self, nt):
        ctx, api = nt
        assert api.GetEnvironmentVariableA(ctx.cstring(b"NOPE"), ctx.buffer(8), 8) == 0
        assert ctx.process.last_error == W.ERROR_ENVVAR_NOT_FOUND

    def test_env_small_buffer_reports_needed(self, nt):
        ctx, api = nt
        needed = api.GetEnvironmentVariableA(ctx.cstring(b"PATH"), ctx.buffer(2), 2)
        assert needed > 2

    def test_env_name_with_equals_rejected(self, nt):
        ctx, api = nt
        assert api.SetEnvironmentVariableA(ctx.cstring(b"A=B"), ctx.cstring(b"x")) == 0

    def test_expand_environment_strings(self, nt):
        ctx, api = nt
        out = ctx.buffer(128)
        api.ExpandEnvironmentStringsA(ctx.cstring(b"home=%HOME%"), out, 128)
        assert ctx.mem.read_cstring(out) == b"home=/home/ballista"

    def test_environment_strings_block(self, nt):
        ctx, api = nt
        block = api.GetEnvironmentStrings()
        assert block != 0
        assert api.FreeEnvironmentStringsA(block) == 1
        assert api.FreeEnvironmentStringsA(block) == 0  # already freed

    def test_startup_info_faults_on_bad_pointer_even_on_nt(self, nt):
        _, api = nt
        with pytest.raises(AccessViolation):
            api.GetStartupInfoA(0)

    def test_version_infrastructure(self, nt, w98):
        _, api = nt
        assert api.GetVersion() == 0x0000_0004
        _, api98 = w98
        assert api98.GetVersion() == 0xC000_0004

    def test_version_ex_validates_size_field(self, nt):
        ctx, api = nt
        info = ctx.buffer(148)
        assert api.GetVersionExA(info) == 0  # cb field is zero
        ctx.mem.write_u32(info, 148)
        assert api.GetVersionExA(info) == 1

    def test_computer_name(self, nt):
        ctx, api = nt
        size_ptr = ctx.buffer(8)
        ctx.mem.write_u32(size_ptr, 64)
        out = ctx.buffer(64)
        assert api.GetComputerNameA(out, size_ptr) == 1
        assert ctx.mem.read_cstring(out) == b"BALLISTA-PC"
        assert api.SetComputerNameA(ctx.cstring(b"bad name!")) == 0

    def test_is_bad_pointers_never_fault(self, nt):
        ctx, api = nt
        good = ctx.buffer(16)
        assert api.IsBadReadPtr(good, 16) == 0
        assert api.IsBadReadPtr(0, 16) == 1
        assert api.IsBadWritePtr(ctx.readonly_buffer(), 4) == 1
        assert api.IsBadStringPtrA(ctx.cstring(b"ok"), 100) == 0
        assert api.IsBadStringPtrA(0, 100) == 1

    def test_tick_count_and_times(self, nt):
        ctx, api = nt
        ctx.machine.clock.begin_call("Sleep")
        api.Sleep(100)
        assert api.GetTickCount() >= 100
        counter = ctx.buffer(8)
        assert api.QueryPerformanceCounter(counter) == 1
        assert api.QueryPerformanceFrequency(counter) == 1

    def test_last_error_slot(self, nt):
        ctx, api = nt
        api.SetLastError(1234)
        assert api.GetLastError() == 1234

    def test_system_time(self, nt):
        ctx, api = nt
        st = ctx.buffer(16)
        api.GetSystemTime(st)
        assert ctx.mem.read_u16(st) == 2000  # year
        assert api.SetSystemTime(st) == 1
        bad = ctx.buffer(16, b"\xff" * 16)
        assert api.SetSystemTime(bad) == 0
