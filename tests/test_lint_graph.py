"""Unit tests for the interprocedural lint engine.

Covers the three layers the per-file checkers build on:

* :mod:`repro.lint.graph` -- summary extraction, call resolution
  (local defs, imports, ``self.method`` through bases, constructors,
  typed-attribute dispatch), thread/process spawn detection, and the
  content-hash summary cache;
* :mod:`repro.lint.dataflow` -- the union (may) and must-lock
  fixpoints, driven on plain dicts;
* the four interprocedural checkers, each exercised on small synthetic
  trees (the injection drills in ``test_lint_injections.py`` prove the
  same rules fire through the real CLI on a doctored full tree).
"""

from __future__ import annotations

import json
import textwrap

from repro.lint import Project, get_checker, run_lint
from repro.lint.checkers.pickle_safety import unsafe_classes
from repro.lint.dataflow import entry_must_locks, propagate_union
from repro.lint.graph import SUMMARY_VERSION, module_name


def write_module(root, rel, text):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def build_graph(root, cache_path=None):
    return Project(root=root, cache_path=cache_path).graph()


def edge_pairs(graph):
    return {
        (qual, edge["callee"])
        for qual, out in graph.edges.items()
        for edge in out
    }


def findings_for(root, rule):
    return list(get_checker(rule).run(Project(root=root)))


# ----------------------------------------------------------------------
# Call graph construction
# ----------------------------------------------------------------------


class TestCallGraph:
    def test_module_name(self):
        assert module_name("repro/core/parallel.py") == "repro.core.parallel"
        assert module_name("repro/core/__init__.py") == "repro.core"

    def test_local_call_edge(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/a.py",
            """
            def helper():
                return 1

            def caller():
                return helper()
            """,
        )
        graph = build_graph(tmp_path)
        assert ("repro.core.a.caller", "repro.core.a.helper") in edge_pairs(graph)
        assert graph.callers["repro.core.a.helper"] == ["repro.core.a.caller"]

    def test_import_edges_absolute_and_relative(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/a.py",
            """
            def helper():
                return 1
            """,
        )
        write_module(
            tmp_path,
            "repro/core/b.py",
            """
            from repro.core.a import helper
            from .a import helper as rel_helper
            from repro.core import a

            def absolute():
                return helper()

            def relative():
                return rel_helper()

            def via_module():
                return a.helper()
            """,
        )
        graph = build_graph(tmp_path)
        pairs = edge_pairs(graph)
        helper = "repro.core.a.helper"
        assert ("repro.core.b.absolute", helper) in pairs
        assert ("repro.core.b.relative", helper) in pairs
        assert ("repro.core.b.via_module", helper) in pairs

    def test_self_method_resolves_through_base_class(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/c.py",
            """
            class Base:
                def ping(self):
                    return 1

            class Child(Base):
                def go(self):
                    return self.ping()
            """,
        )
        graph = build_graph(tmp_path)
        assert (
            "repro.core.c.Child.go",
            "repro.core.c.Base.ping",
        ) in edge_pairs(graph)

    def test_constructor_edge_and_typed_attribute_dispatch(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/d.py",
            """
            class JobQueue:
                def __init__(self):
                    self.items = []

                def submit(self, item):
                    self.items.append(item)

            class Service:
                def __init__(self):
                    self.queue = JobQueue()

                def handle(self, item):
                    self.queue.submit(item)
            """,
        )
        graph = build_graph(tmp_path)
        pairs = edge_pairs(graph)
        assert (
            "repro.core.d.Service.__init__",
            "repro.core.d.JobQueue.__init__",
        ) in pairs
        assert (
            "repro.core.d.Service.handle",
            "repro.core.d.JobQueue.submit",
        ) in pairs

    def test_nested_def_and_dict_dispatch_become_ref_edges(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/e.py",
            """
            class Mux:
                def _on_submit(self):
                    return 1

                def handlers(self):
                    return {"SUBMIT": self._on_submit}

            def outer():
                def inner():
                    return 2

                return inner
            """,
        )
        graph = build_graph(tmp_path)
        kinds = {
            (qual, edge["callee"]): edge["kind"]
            for qual, out in graph.edges.items()
            for edge in out
        }
        assert (
            kinds[("repro.core.e.Mux.handlers", "repro.core.e.Mux._on_submit")]
            == "ref"
        )
        assert kinds[("repro.core.e.outer", "repro.core.e.outer.inner")] == "ref"
        # Reachability survives dispatch-by-dict.
        assert "repro.core.e.Mux._on_submit" in graph.reachable(
            ["repro.core.e.Mux.handlers"]
        )

    def test_dynamic_call_stays_unresolved(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/f.py",
            """
            def run(handler):
                return handler()
            """,
        )
        graph = build_graph(tmp_path)
        assert graph.edges.get("repro.core.f.run") is None

    def test_lock_context_recorded_on_call_edges(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/g.py",
            """
            import threading

            class Guarded:
                def __init__(self):
                    self._lock = threading.Lock()

                def _step(self):
                    return 1

                def locked_walk(self):
                    with self._lock:
                        self._step()
            """,
        )
        graph = build_graph(tmp_path)
        (edge,) = graph.edges["repro.core.g.Guarded.locked_walk"]
        assert edge["callee"] == "repro.core.g.Guarded._step"
        assert edge["locked"] == ("_lock",)

    def test_thread_roots_and_process_targets(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/h.py",
            """
            import multiprocessing
            import threading

            def free_function():
                return 1

            def worker(payload):
                return payload

            class Svc:
                def _net(self):
                    return 1

                def _sched(self):
                    return 2

                def listen(self):
                    net = threading.Thread(target=self._net, daemon=True)
                    net.start()
                    sched = threading.Thread(target=self._sched, daemon=True)
                    sched.start()
                    # Not a self method: never a root of this class.
                    other = threading.Thread(target=free_function)
                    other.start()

            def spawn():
                proc = multiprocessing.Process(target=worker, args=(1,))
                proc.start()
            """,
        )
        graph = build_graph(tmp_path)
        roots = graph.thread_roots("repro.core.h.Svc")
        assert set(roots) == {
            "repro.core.h.Svc._net",
            "repro.core.h.Svc._sched",
        }
        targets = [rec["qual"] for _, _, rec in graph.process_targets()]
        assert targets == ["repro.core.h.worker"]

    def test_graph_json_shape(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/a.py",
            """
            def helper():
                return 1

            def caller():
                return helper()
            """,
        )
        doc = build_graph(tmp_path).to_json()
        assert doc["format"] == "ballista-lint-callgraph"
        assert doc["counts"]["functions"] == 2
        assert doc["counts"]["edges"] == 1
        (edge,) = doc["edges"]
        assert edge["caller"] == "repro.core.a.caller"
        assert edge["callee"] == "repro.core.a.helper"


# ----------------------------------------------------------------------
# Summary cache
# ----------------------------------------------------------------------


class TestSummaryCache:
    def _tree(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/a.py",
            """
            def helper():
                return 1
            """,
        )
        write_module(
            tmp_path,
            "repro/core/b.py",
            """
            from repro.core.a import helper

            def caller():
                return helper()
            """,
        )

    def test_cold_then_warm_then_invalidated(self, tmp_path):
        self._tree(tmp_path)
        cache = tmp_path / "cache.json"

        cold = build_graph(tmp_path, cache_path=cache)
        assert cold.cache_stats == {"hits": 0, "misses": 2}
        assert cache.exists()

        warm = build_graph(tmp_path, cache_path=cache)
        assert warm.cache_stats == {"hits": 2, "misses": 0}
        assert edge_pairs(warm) == edge_pairs(cold)

        # Editing one file invalidates exactly that file's entry.
        write_module(
            tmp_path,
            "repro/core/b.py",
            """
            from repro.core.a import helper

            def caller():
                return helper() + 1

            def second_caller():
                return helper()
            """,
        )
        edited = build_graph(tmp_path, cache_path=cache)
        assert edited.cache_stats == {"hits": 1, "misses": 1}
        assert (
            "repro.core.b.second_caller",
            "repro.core.a.helper",
        ) in edge_pairs(edited)

    def test_corrupt_and_stale_version_caches_are_rebuilt(self, tmp_path):
        self._tree(tmp_path)
        cache = tmp_path / "cache.json"

        cache.write_text("{not json", encoding="utf-8")
        graph = build_graph(tmp_path, cache_path=cache)
        assert graph.cache_stats == {"hits": 0, "misses": 2}

        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert payload["version"] == SUMMARY_VERSION
        payload["version"] = SUMMARY_VERSION - 1
        cache.write_text(json.dumps(payload), encoding="utf-8")
        graph = build_graph(tmp_path, cache_path=cache)
        assert graph.cache_stats == {"hits": 0, "misses": 2}


# ----------------------------------------------------------------------
# Dataflow fixpoints
# ----------------------------------------------------------------------


class TestPropagateUnion:
    def test_facts_flow_callee_to_caller(self):
        props = propagate_union(
            seeds={"c": {"fact"}},
            callers={"c": ["b"], "b": ["a"]},
        )
        assert props == {"a": {"fact"}, "b": {"fact"}, "c": {"fact"}}

    def test_converges_on_cycles(self):
        props = propagate_union(
            seeds={"a": {"x"}, "c": {"y"}},
            callers={"a": ["b"], "b": ["c"], "c": ["a"]},
        )
        assert props == {
            "a": {"x", "y"},
            "b": {"x", "y"},
            "c": {"x", "y"},
        }

    def test_empty_seeds_yield_empty_result(self):
        assert propagate_union(seeds={}, callers={"a": ["b"]}) == {}


class TestEntryMustLocks:
    def test_lock_at_call_site_is_guaranteed_in_callee(self):
        entry = entry_must_locks(
            roots=["loop"],
            edges={"loop": [("handle", frozenset({"_lock"}))]},
        )
        assert entry["loop"] == frozenset()
        assert entry["handle"] == frozenset({"_lock"})

    def test_diamond_intersects_paths(self):
        entry = entry_must_locks(
            roots=["loop"],
            edges={
                "loop": [
                    ("locked_path", frozenset({"_lock"})),
                    ("bare_path", frozenset()),
                ],
                "locked_path": [("shared", frozenset())],
                "bare_path": [("shared", frozenset())],
            },
        )
        # One path in holds the lock, the other does not: no guarantee.
        assert entry["shared"] == frozenset()
        assert entry["locked_path"] == frozenset({"_lock"})

    def test_unreachable_functions_are_absent(self):
        entry = entry_must_locks(
            roots=["loop"],
            edges={"elsewhere": [("shared", frozenset({"_lock"}))]},
        )
        assert entry == {"loop": frozenset()}


# ----------------------------------------------------------------------
# determinism-propagation
# ----------------------------------------------------------------------


class TestDeterminismPropagation:
    def _service_helper(self, tmp_path, pragma=""):
        write_module(
            tmp_path,
            "repro/service/helpers.py",
            f"""
            import time

            def stamp():
                return time.time(){pragma}

            def wrap_stamp():
                return stamp()
            """,
        )

    def test_core_wrapper_around_dirty_helper_is_flagged(self, tmp_path):
        self._service_helper(tmp_path)
        write_module(
            tmp_path,
            "repro/core/campaign.py",
            """
            from repro.service.helpers import wrap_stamp

            def label_run():
                return wrap_stamp() + 1.0
            """,
        )
        found = findings_for(tmp_path, "determinism-propagation")
        assert len(found) == 1
        finding = found[0]
        assert finding.code == "DET-PROPAGATED"
        assert finding.path == "repro/core/campaign.py"
        # Anchored at the call site, naming the two-hop origin.
        assert "repro/service/helpers.py" in finding.message
        assert "time.time" in finding.message

    def test_origin_pragma_silences_callers_too(self, tmp_path):
        self._service_helper(tmp_path, pragma="  # lint: allow(determinism)")
        write_module(
            tmp_path,
            "repro/core/campaign.py",
            """
            from repro.service.helpers import wrap_stamp

            def label_run():
                return wrap_stamp() + 1.0
            """,
        )
        assert findings_for(tmp_path, "determinism-propagation") == []

    def test_service_callers_are_not_flagged(self, tmp_path):
        # wrap_stamp() lives in service/, which may read the wall clock;
        # only core/sim/analysis callers are held to the contract.
        self._service_helper(tmp_path)
        assert findings_for(tmp_path, "determinism-propagation") == []


# ----------------------------------------------------------------------
# concurrency-contract
# ----------------------------------------------------------------------

_TWO_THREAD_CLASS = """
    import threading

    class Svc:
        def __init__(self):
            self._lock = threading.Lock()
            self._state = {{}}

        def listen(self):
            net = threading.Thread(target=self._net, daemon=True)
            net.start()
            sched = threading.Thread(target=self._sched, daemon=True)
            sched.start()

        def _net(self):
            {net_body}

        def _sched(self):
            with self._lock:
                self._state["b"] = 2
"""


class TestConcurrencyContract:
    def test_unmediated_cross_thread_write_is_flagged(self, tmp_path):
        write_module(
            tmp_path,
            "repro/service/svc.py",
            _TWO_THREAD_CLASS.format(net_body='self._state["a"] = 1'),
        )
        found = findings_for(tmp_path, "concurrency-contract")
        assert [f.code for f in found] == ["CONC-CROSS-THREAD"]
        assert "'_state'" in found[0].message
        assert "_net" in found[0].message

    def test_lexically_locked_write_is_clean(self, tmp_path):
        write_module(
            tmp_path,
            "repro/service/svc.py",
            _TWO_THREAD_CLASS.format(
                net_body='with self._lock:\n                self._state["a"] = 1'
            ),
        )
        assert findings_for(tmp_path, "concurrency-contract") == []

    def test_must_hold_proof_accepts_locked_callers(self, tmp_path):
        # _apply never takes the lock itself, but every call path into
        # it provably holds it: entry_must_locks accepts the write.
        write_module(
            tmp_path,
            "repro/service/svc.py",
            """
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._state = {}

                def listen(self):
                    net = threading.Thread(target=self._net, daemon=True)
                    net.start()
                    sched = threading.Thread(target=self._sched, daemon=True)
                    sched.start()

                def _apply(self, key):
                    self._state[key] = 1

                def _net(self):
                    with self._lock:
                        self._apply("a")

                def _sched(self):
                    with self._lock:
                        self._apply("b")
            """,
        )
        assert findings_for(tmp_path, "concurrency-contract") == []

    def test_queue_typed_field_mediates_by_construction(self, tmp_path):
        write_module(
            tmp_path,
            "repro/service/svc.py",
            """
            import queue
            import threading

            class Svc:
                def __init__(self):
                    self._jobs = queue.Queue()

                def listen(self):
                    net = threading.Thread(target=self._net, daemon=True)
                    net.start()
                    sched = threading.Thread(target=self._sched, daemon=True)
                    sched.start()

                def _net(self):
                    self._jobs.put(1)

                def _sched(self):
                    return self._jobs.get()
            """,
        )
        assert findings_for(tmp_path, "concurrency-contract") == []

    def test_worker_reachable_global_rebind_is_flagged(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/par.py",
            """
            import multiprocessing

            _CACHE = None

            def _store(payload):
                global _CACHE
                _CACHE = payload

            def worker(payload):
                _store(payload)

            def spawn():
                proc = multiprocessing.Process(target=worker, args=(1,))
                proc.start()
            """,
        )
        found = findings_for(tmp_path, "concurrency-contract")
        assert [f.code for f in found] == ["CONC-WORKER-GLOBAL"]
        assert "_CACHE" in found[0].message


# ----------------------------------------------------------------------
# pickle-safety
# ----------------------------------------------------------------------


class TestPickleSafety:
    def test_lambda_argument_is_flagged(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/spawnit.py",
            """
            import multiprocessing

            def worker(payload):
                return payload

            def launch():
                proc = multiprocessing.Process(target=worker, args=(lambda: 1,))
                proc.start()
            """,
        )
        found = findings_for(tmp_path, "pickle-safety")
        assert [f.code for f in found] == ["PICKLE-UNSAFE"]
        assert "lambda" in found[0].message

    def test_instance_holding_a_lock_is_flagged_transitively(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/spawnit.py",
            """
            import multiprocessing
            import threading

            class Carrier:
                def __init__(self):
                    self.lock = threading.Lock()

            class Outer:
                def __init__(self):
                    self.inner = Carrier()

            def worker(payload):
                return payload

            def launch():
                box = Outer()
                proc = multiprocessing.Process(target=worker, args=(box,))
                proc.start()
            """,
        )
        graph = build_graph(tmp_path)
        verdicts = unsafe_classes(graph)
        # The containment fixpoint carries the verdict up one level.
        assert "repro.core.spawnit.Carrier" in verdicts
        assert "repro.core.spawnit.Outer" in verdicts
        found = findings_for(tmp_path, "pickle-safety")
        assert [f.code for f in found] == ["PICKLE-UNSAFE"]
        assert "box" in found[0].message
        assert "thread lock" in found[0].message

    def test_reduce_opts_a_class_out(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/spawnit.py",
            """
            import multiprocessing
            import threading

            class Snapshot:
                def __init__(self):
                    self.lock = threading.Lock()

                def __reduce__(self):
                    return (Snapshot, ())

            def worker(payload):
                return payload

            def launch():
                snap = Snapshot()
                proc = multiprocessing.Process(target=worker, args=(snap,))
                proc.start()
            """,
        )
        assert findings_for(tmp_path, "pickle-safety") == []


# ----------------------------------------------------------------------
# wear-escape
# ----------------------------------------------------------------------


class TestWearEscape:
    def test_out_of_band_store_and_call_are_flagged(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/warm.py",
            """
            def warm_up(machine):
                machine.clock.ticks = 0
                machine.fs.create_file("/t", b"")
            """,
        )
        found = findings_for(tmp_path, "wear-escape")
        assert [f.code for f in found] == ["WEAR-ESCAPE", "WEAR-ESCAPE"]
        messages = "\n".join(f.message for f in found)
        assert "store to machine.clock.ticks" in messages
        assert "call machine.fs.create_file()" in messages

    def test_sanctioned_surface_is_clean(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/warm.py",
            """
            def seam(machine, base):
                machine.restore_wear(base)
                machine.reboot()
                machine.faults.arm("strcpy", 3)
                if machine.fs.exists("/t"):
                    return machine.wear_residue()
                return None
            """,
        )
        assert findings_for(tmp_path, "wear-escape") == []

    def test_pragma_suppresses_deliberate_wear(self, tmp_path):
        write_module(
            tmp_path,
            "repro/triage/load.py",
            """
            def prime(machine):
                machine.fs.create_file("/t", b"")  # lint: allow(wear-escape)
            """,
        )
        result = run_lint(
            Project(root=tmp_path), checkers=[get_checker("wear-escape")]
        )
        assert result.findings == []
        assert [f.code for f in result.suppressed] == ["WEAR-ESCAPE"]

    def test_sim_package_is_out_of_scope(self, tmp_path):
        # sim/ implements the machine; its own stores are not escapes.
        write_module(
            tmp_path,
            "repro/sim/machine.py",
            """
            def tick(machine):
                machine.clock.ticks = 1
            """,
        )
        assert findings_for(tmp_path, "wear-escape") == []


# ----------------------------------------------------------------------
# CLI coverage for the new rules
# ----------------------------------------------------------------------


class TestCli:
    def test_list_rules_names_all_interprocedural_rules(self, capsys):
        from repro.lint.cli import main as lint_main

        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "determinism-propagation",
            "concurrency-contract",
            "pickle-safety",
            "wear-escape",
        ):
            assert rule in out

    def test_explain_covers_new_codes_with_worked_examples(self, capsys):
        from repro.lint.cli import main as lint_main

        for rule, code in (
            ("determinism-propagation", "DET-PROPAGATED"),
            ("concurrency-contract", "CONC-CROSS-THREAD"),
            ("pickle-safety", "PICKLE-UNSAFE"),
            ("wear-escape", "WEAR-ESCAPE"),
        ):
            assert lint_main(["--explain", rule]) == 0
            out = capsys.readouterr().out
            assert code in out
            # Every rationale embeds a worked example.
            assert "    " in out

    def test_graph_json_flag_writes_the_ci_artifact(self, tmp_path, capsys):
        from repro.lint.cli import main as lint_main

        write_module(
            tmp_path,
            "repro/core/a.py",
            """
            def helper():
                return 1

            def caller():
                return helper()
            """,
        )
        out_path = tmp_path / "callgraph.json"
        lint_main(
            [
                "--root",
                str(tmp_path),
                "--no-cache",
                "--graph-json",
                str(out_path),
            ]
        )
        capsys.readouterr()
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        assert doc["format"] == "ballista-lint-callgraph"
        assert doc["counts"]["functions"] == 2

    def test_cache_flag_round_trips(self, tmp_path, capsys):
        from repro.lint.cli import main as lint_main

        write_module(
            tmp_path,
            "repro/core/a.py",
            """
            def helper():
                return 1
            """,
        )
        cache = tmp_path / "cache.json"
        for _ in range(2):
            lint_main(["--root", str(tmp_path), "--cache", str(cache)])
            capsys.readouterr()
        assert cache.exists()
        warm = build_graph(tmp_path, cache_path=cache)
        assert warm.cache_stats == {"hits": 1, "misses": 0}
