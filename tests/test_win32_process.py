"""Unit tests for the Win32 process/thread/synchronisation API,
including the paper's Listing 1 crash matrix."""

import pytest

from repro.core.context import TestContext
from repro.sim.errors import SystemCrash, TaskHang
from repro.sim.machine import Machine
from repro.sim.objects import (
    CURRENT_PROCESS_HANDLE,
    CURRENT_THREAD_HANDLE,
    EventObject,
)
from repro.win32 import errors as W
from repro.win32.variants import WIN2000, WIN95, WIN98, WIN98SE, WINCE, WINNT


def win32_for(personality):
    machine = Machine(personality)
    ctx = TestContext(machine, machine.spawn_process())
    return ctx, ctx.win32


@pytest.fixture()
def nt():
    return win32_for(WINNT)


@pytest.fixture()
def w98():
    return win32_for(WIN98)


@pytest.fixture()
def ce():
    return win32_for(WINCE)


class TestListing1:
    """GetThreadContext(GetCurrentThread(), NULL) -- paper Listing 1."""

    @pytest.mark.parametrize("personality", [WIN95, WIN98, WIN98SE, WINCE])
    def test_crashes_9x_and_ce(self, personality):
        ctx, api = win32_for(personality)
        with pytest.raises(SystemCrash):
            api.GetThreadContext(CURRENT_THREAD_HANDLE, 0)
        assert ctx.machine.crashed

    @pytest.mark.parametrize("personality", [WINNT, WIN2000])
    def test_graceful_on_nt_family(self, personality):
        ctx, api = win32_for(personality)
        assert api.GetThreadContext(CURRENT_THREAD_HANDLE, 0) == 0
        assert ctx.process.last_error == W.ERROR_NOACCESS
        assert not ctx.machine.crashed


class TestThreadContext:
    def test_get_then_set_roundtrip(self, nt):
        ctx, api = nt
        buf = ctx.buffer(64)
        assert api.GetThreadContext(CURRENT_THREAD_HANDLE, buf) == 1
        ctx.mem.write_u32(buf + 4, 0x1234)  # eax
        assert api.SetThreadContext(CURRENT_THREAD_HANDLE, buf) == 1
        assert ctx.process.main_thread.context["eax"] == 0x1234

    def test_bad_handle_fails_before_pointer_use(self, nt):
        ctx, api = nt
        assert api.GetThreadContext(0xBAD0, 0) == 0
        assert ctx.process.last_error == W.ERROR_INVALID_HANDLE

    def test_9x_bad_handle_is_silent_success(self, w98):
        ctx, api = w98
        assert api.GetThreadContext(0xBAD0, 0) == 1  # lax validation
        assert ctx.process.last_error == 0
        assert not ctx.machine.crashed

    def test_small_context_buffer_crashes_9x(self, w98):
        ctx, api = w98
        small = ctx.buffer(16)  # CONTEXT is 64 bytes
        with pytest.raises(SystemCrash):
            api.GetThreadContext(CURRENT_THREAD_HANDLE, small)


class TestThreads:
    def test_create_and_manage_thread(self, nt):
        ctx, api = nt
        tid_out = ctx.buffer(8)
        handle = api.CreateThread(0, 0, ctx.process.code_region.start, 0, 4, tid_out)
        assert handle != 0
        tid = ctx.mem.read_u32(tid_out)
        assert tid != 0
        assert api.ResumeThread(handle) == 1
        assert api.SuspendThread(handle) == 0
        assert api.TerminateThread(handle, 9) == 1

    def test_create_thread_bad_id_pointer_on_nt_fails(self, nt):
        ctx, api = nt
        assert api.CreateThread(0, 0, ctx.process.code_region.start, 0, 0, 1) == 0
        assert ctx.process.last_error == W.ERROR_NOACCESS

    def test_create_thread_corrupts_98se(self):
        ctx, api = win32_for(WIN98SE)
        handle = api.CreateThread(0, 0, ctx.process.code_region.start, 0, 0, 1)
        assert handle != 0  # the misdirected write "succeeded"
        assert ctx.machine.corruption_level >= 1

    def test_create_thread_flags_validated(self, nt):
        ctx, api = nt
        assert api.CreateThread(0, 0, 0, 0, 0xFF, 0) == 0
        assert ctx.process.last_error == W.ERROR_INVALID_PARAMETER

    def test_exit_codes(self, nt):
        ctx, api = nt
        handle = api.CreateThread(0, 0, ctx.process.code_region.start, 0, 0, 0)
        out = ctx.buffer(8)
        assert api.GetExitCodeThread(handle, out) == 1
        assert ctx.mem.read_u32(out) == 259  # STILL_ACTIVE
        api.TerminateThread(handle, 7)
        api.GetExitCodeThread(handle, out)
        assert ctx.mem.read_u32(out) == 7

    def test_thread_priority(self, nt):
        ctx, api = nt
        assert api.GetThreadPriority(CURRENT_THREAD_HANDLE) == 0
        assert api.SetThreadPriority(CURRENT_THREAD_HANDLE, 2) == 1
        assert api.SetThreadPriority(CURRENT_THREAD_HANDLE, 99) == 0


class TestWaiting:
    def test_wait_signaled_event(self, nt):
        ctx, api = nt
        handle = ctx.process.handles.insert(EventObject(True, True))
        assert api.WaitForSingleObject(handle, 100) == W.WAIT_OBJECT_0

    def test_wait_timeout(self, nt):
        ctx, api = nt
        handle = ctx.process.handles.insert(EventObject(True, False))
        ctx.machine.clock.begin_call("WaitForSingleObject")
        assert api.WaitForSingleObject(handle, 100) == W.WAIT_TIMEOUT

    def test_wait_infinite_on_unsignaled_hangs(self, nt):
        ctx, api = nt
        handle = ctx.process.handles.insert(EventObject(True, False))
        ctx.machine.clock.begin_call("WaitForSingleObject")
        with pytest.raises(TaskHang):
            api.WaitForSingleObject(handle, 0xFFFF_FFFF)

    def test_auto_reset_event_consumed_by_wait(self, nt):
        ctx, api = nt
        handle = ctx.process.handles.insert(EventObject(False, True))
        assert api.WaitForSingleObject(handle, 0) == W.WAIT_OBJECT_0
        ctx.machine.clock.begin_call("WaitForSingleObject")
        assert api.WaitForSingleObject(handle, 10) == W.WAIT_TIMEOUT

    def test_wait_multiple_any(self, nt):
        ctx, api = nt
        a = ctx.process.handles.insert(EventObject(True, False))
        b = ctx.process.handles.insert(EventObject(True, True))
        array = ctx.buffer(8)
        ctx.mem.write_u32(array, a)
        ctx.mem.write_u32(array + 4, b)
        assert api.WaitForMultipleObjects(2, array, 0, 100) == W.WAIT_OBJECT_0 + 1

    def test_wait_multiple_zero_count_invalid(self, nt):
        ctx, api = nt
        assert api.WaitForMultipleObjects(0, ctx.buffer(8), 0, 0) == W.WAIT_FAILED
        assert ctx.process.last_error == W.ERROR_INVALID_PARAMETER

    def test_msgwait_bad_array_crashes_98(self, w98):
        ctx, api = w98
        with pytest.raises(SystemCrash):
            api.MsgWaitForMultipleObjects(2, 0xDEAD_0000, 0, 0, 0)

    def test_msgwait_bad_array_graceful_on_nt(self, nt):
        ctx, api = nt
        assert api.MsgWaitForMultipleObjects(2, 0xDEAD_0000, 0, 0, 0) == W.WAIT_FAILED
        assert ctx.process.last_error == W.ERROR_NOACCESS

    def test_msgwait_ex_corrupts_98(self, w98):
        ctx, api = w98
        api.MsgWaitForMultipleObjectsEx(2, 0xDEAD_0000, 0, 0, 0)
        assert ctx.machine.corruption_level >= 1

    def test_signal_object_and_wait(self, nt):
        ctx, api = nt
        to_signal = ctx.process.handles.insert(EventObject(True, False))
        to_wait = ctx.process.handles.insert(EventObject(True, True))
        assert api.SignalObjectAndWait(to_signal, to_wait, 10, 0) == W.WAIT_OBJECT_0
        assert ctx.process.handles.get(to_signal).signaled


class TestSyncObjects:
    def test_event_lifecycle(self, nt):
        ctx, api = nt
        handle = api.CreateEventA(0, 1, 0, 0)
        assert api.SetEvent(handle) == 1
        assert ctx.process.handles.get(handle).signaled
        assert api.ResetEvent(handle) == 1
        assert not ctx.process.handles.get(handle).signaled

    def test_mutex_release_requires_ownership(self, nt):
        ctx, api = nt
        not_owned = api.CreateMutexA(0, 0, 0)
        assert api.ReleaseMutex(not_owned) == 0
        owned = api.CreateMutexA(0, 1, 0)
        assert api.ReleaseMutex(owned) == 1

    def test_semaphore_counts(self, nt):
        ctx, api = nt
        handle = api.CreateSemaphoreA(0, 1, 2, 0)
        prev = ctx.buffer(8)
        assert api.ReleaseSemaphore(handle, 1, prev) == 1
        assert ctx.mem.read_u32(prev) == 1
        assert api.ReleaseSemaphore(handle, 5, 0) == 0  # over maximum

    def test_semaphore_invalid_initial(self, nt):
        ctx, api = nt
        assert api.CreateSemaphoreA(0, 5, 2, 0) == 0
        assert ctx.process.last_error == W.ERROR_INVALID_PARAMETER

    def test_open_event_no_named_objects(self, nt):
        ctx, api = nt
        assert api.OpenEventA(0, 0, ctx.cstring(b"name")) == 0
        assert ctx.process.last_error == W.ERROR_FILE_NOT_FOUND


class TestInterlocked:
    def test_increment_decrement_exchange(self, nt):
        ctx, api = nt
        addr = ctx.buffer(8)
        ctx.mem.write_i32(addr, 10)
        assert api.InterlockedIncrement(addr) == 11
        assert api.InterlockedDecrement(addr) == 10
        assert api.InterlockedExchange(addr, 99) == 10
        assert ctx.mem.read_i32(addr) == 99

    def test_compare_exchange(self, nt):
        ctx, api = nt
        addr = ctx.buffer(8)
        ctx.mem.write_i32(addr, 5)
        assert api.InterlockedCompareExchange(addr, 9, 5) == 5
        assert ctx.mem.read_i32(addr) == 9
        assert api.InterlockedCompareExchange(addr, 1, 5) == 9
        assert ctx.mem.read_i32(addr) == 9

    def test_desktop_bad_pointer_faults_in_user_mode(self, nt):
        from repro.sim.errors import AccessViolation

        _, api = nt
        with pytest.raises(AccessViolation):
            api.InterlockedIncrement(0)

    def test_ce_bad_pointer_corrupts_kernel_state(self, ce):
        ctx, api = ce
        api.InterlockedIncrement(0)  # kernel-assisted on CE
        assert ctx.machine.corruption_level >= 1


class TestProcesses:
    def test_create_process_happy_path(self, nt):
        ctx, api = nt
        ctx.machine.fs.create_file("/tmp/app.exe", b"MZ")
        startup = ctx.buffer(68)
        ctx.mem.write_u32(startup, 68)
        info = ctx.buffer(16)
        result = api.CreateProcessA(
            ctx.cstring(b"/tmp/app.exe"), 0, 0, 0, 0, 0, 0, 0, startup, info
        )
        assert result == 1
        assert ctx.mem.read_u32(info) != 0

    def test_create_process_missing_image(self, nt):
        ctx, api = nt
        startup = ctx.buffer(68)
        assert (
            api.CreateProcessA(
                ctx.cstring(b"/tmp/nope.exe"), 0, 0, 0, 0, 0, 0, 0, startup, 0
            )
            == 0
        )
        assert ctx.process.last_error == W.ERROR_FILE_NOT_FOUND

    def test_open_own_process(self, nt):
        ctx, api = nt
        handle = api.OpenProcess(0, 0, ctx.process.pid)
        assert handle != 0
        out = ctx.buffer(8)
        assert api.GetExitCodeProcess(handle, out) == 1

    def test_terminate_process_sets_code(self, nt):
        ctx, api = nt
        assert api.TerminateProcess(CURRENT_PROCESS_HANDLE, 3) == 1
        out = ctx.buffer(8)
        api.GetExitCodeProcess(CURRENT_PROCESS_HANDLE, out)
        assert ctx.mem.read_u32(out) == 3

    def test_read_process_memory_roundtrip(self, nt):
        ctx, api = nt
        src = ctx.buffer(16, b"secret data here")
        dest = ctx.buffer(16)
        read_out = ctx.buffer(8)
        assert (
            api.ReadProcessMemory(CURRENT_PROCESS_HANDLE, src, dest, 16, read_out)
            == 1
        )
        assert ctx.mem.read(dest, 16) == b"secret data here"

    def test_read_process_memory_corrupts_on_95(self):
        ctx, api = win32_for(WIN95)
        src = ctx.buffer(16)
        api.ReadProcessMemory(CURRENT_PROCESS_HANDLE, src, 0xDEAD_0000, 16, 0)
        assert ctx.machine.corruption_level >= 1


class TestSleep:
    def test_sleep_advances_clock(self, nt):
        ctx, api = nt
        ctx.machine.clock.begin_call("Sleep")
        before = ctx.machine.clock.ticks
        api.Sleep(500)
        assert ctx.machine.clock.ticks == before + 500

    def test_sleep_infinite_hangs(self, nt):
        ctx, api = nt
        ctx.machine.clock.begin_call("Sleep")
        with pytest.raises(TaskHang):
            api.Sleep(0xFFFF_FFFF)
