"""Remaining substrate edges: pipe ends, object semantics, errors."""

import pytest

from repro.sim.errors import (
    ArithmeticFault,
    FatalSignal,
    MemoryFault,
    SoftwareAbort,
    StackOverflowFault,
    ThrownException,
)
from repro.sim.filesystem import FileSystemError, Pipe
from repro.sim.machine import Machine
from repro.sim.objects import (
    FileMappingObject,
    HeapObject,
    MutexObject,
    SemaphoreObject,
)
from repro.sim.process import PipeEnd
from repro.win32.variants import WINNT


class TestPipeEnds:
    def test_read_end_cannot_write(self):
        end = PipeEnd(Pipe(), readable=True)
        with pytest.raises(FileSystemError, match="EBADF"):
            end.write(b"x")

    def test_write_end_cannot_read(self):
        end = PipeEnd(Pipe(), readable=False)
        with pytest.raises(FileSystemError, match="EBADF"):
            end.read(1)

    def test_seek_is_espipe(self):
        end = PipeEnd(Pipe(), readable=True)
        with pytest.raises(FileSystemError, match="ESPIPE"):
            end.seek(0)

    def test_closing_read_end_breaks_writer(self):
        pipe = Pipe()
        reader = PipeEnd(pipe, readable=True)
        writer = PipeEnd(pipe, readable=False)
        reader.close()
        with pytest.raises(FileSystemError, match="EPIPE"):
            writer.write(b"x")

    def test_closed_end_rejects_io(self):
        end = PipeEnd(Pipe(), readable=True)
        end.close()
        with pytest.raises(FileSystemError, match="EBADF"):
            end.read(1)


class TestKernelObjects:
    def test_mutex_initial_ownership(self):
        owned = MutexObject(initially_owned=True)
        assert not owned.signaled
        assert owned.recursion == 1
        free = MutexObject(initially_owned=False)
        assert free.signaled

    def test_semaphore_signalled_when_count_positive(self):
        assert SemaphoreObject(1, 4).signaled
        assert not SemaphoreObject(0, 4).signaled

    def test_heap_object_tracks_blocks(self):
        heap = HeapObject(0x1000, 0x8000)
        assert heap.blocks == {}
        assert heap.maximum_size == 0x8000

    def test_file_mapping_object(self):
        mapping = FileMappingObject(4096, backing=None, name="map")
        assert mapping.size == 4096
        assert mapping.views == []

    def test_object_ids_are_unique(self):
        ids = {MutexObject(False).object_id for _ in range(10)}
        assert len(ids) == 10


class TestErrorTaxonomy:
    def test_fatal_signal_carries_name(self):
        exc = FatalSignal("SIGKILL")
        assert exc.posix_signal == "SIGKILL"
        assert isinstance(exc, SoftwareAbort)

    def test_arithmetic_fault_custom_exception_name(self):
        exc = ArithmeticFault("sin", win32_exception="EXCEPTION_FLT_INVALID_OPERATION")
        assert exc.win32_exception == "EXCEPTION_FLT_INVALID_OPERATION"
        default = ArithmeticFault("div")
        assert default.win32_exception == "EXCEPTION_INT_DIVIDE_BY_ZERO"

    def test_stack_overflow_records_depth(self):
        exc = StackOverflowFault(4096)
        assert exc.depth == 4096
        assert exc.win32_exception == "EXCEPTION_STACK_OVERFLOW"

    def test_memory_fault_message_is_hex(self):
        exc = MemoryFault(0xDEADBEEF, "write", "unmapped")
        assert "0xDEADBEEF" in str(exc)

    def test_thrown_exception_flags(self):
        assert ThrownException(5).recoverable
        assert not ThrownException(5, recoverable=False).recoverable


class TestMachineEdges:
    def test_corruption_log_records_functions(self):
        machine = Machine(WINNT)
        # NT has no corrupting functions, but the log API is generic.
        machine.note_corruption("synthetic", amount=2)
        assert machine.corruption_log == [("synthetic", 2)]
        assert machine.corruption_level == 2

    def test_environ_copied_per_process(self):
        machine = Machine(WINNT)
        first = machine.spawn_process()
        first.environ["NEW"] = "1"
        second = machine.spawn_process()
        assert "NEW" not in second.environ

    def test_pids_monotonic_across_reboot(self):
        machine = Machine(WINNT)
        before = machine.spawn_process().pid
        with pytest.raises(Exception):
            machine.panic("x")
        machine.reboot()
        assert machine.spawn_process().pid > before

    def test_watchdog_config_survives_reboot(self):
        machine = Machine(WINNT, watchdog_ticks=123)
        with pytest.raises(Exception):
            machine.panic("x")
        machine.reboot()
        assert machine.clock.watchdog_ticks == 123

    def test_fs_capacity_survives_reboot(self):
        machine = Machine(WINNT, fs_max_files=5)
        with pytest.raises(Exception):
            machine.panic("x")
        machine.reboot()
        assert machine.fs.max_files == 5
