"""Shared fixtures.

The expensive full campaign (all seven variants) runs once per session
at a modest cap and is shared by the analysis/shape tests; unit tests
build their own tiny machines and never touch it.
"""

from __future__ import annotations

import os

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.context import TestContext
from repro.core.mut import default_registry
from repro.core.types import default_types
from repro.posix.linux import LINUX
from repro.sim.machine import Machine
from repro.sim.personality import Personality
from repro.win32.variants import (
    WIN2000,
    WIN95,
    WIN98,
    WIN98SE,
    WINCE,
    WINNT,
)

#: Cap used by the session-scoped campaign (env-overridable).
SESSION_CAP = int(os.environ.get("BALLISTA_TEST_CAP", "120"))


# ----------------------------------------------------------------------
# Personalities
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def linux() -> Personality:
    return LINUX


@pytest.fixture(scope="session")
def winnt() -> Personality:
    return WINNT


@pytest.fixture(scope="session")
def win95() -> Personality:
    return WIN95


@pytest.fixture(scope="session")
def win98() -> Personality:
    return WIN98


@pytest.fixture(scope="session")
def win98se() -> Personality:
    return WIN98SE


@pytest.fixture(scope="session")
def win2000() -> Personality:
    return WIN2000


@pytest.fixture(scope="session")
def wince() -> Personality:
    return WINCE


@pytest.fixture(scope="session")
def all_variants(linux) -> list[Personality]:
    return [WIN95, WIN98, WIN98SE, WINNT, WIN2000, WINCE, linux]


# ----------------------------------------------------------------------
# Machines / contexts
# ----------------------------------------------------------------------


def make_machine(personality: Personality) -> Machine:
    return Machine(personality)


@pytest.fixture()
def nt_machine(winnt) -> Machine:
    return Machine(winnt)


@pytest.fixture()
def linux_machine(linux) -> Machine:
    return Machine(linux)


@pytest.fixture()
def win98_machine(win98) -> Machine:
    return Machine(win98)


@pytest.fixture()
def ce_machine(wince) -> Machine:
    return Machine(wince)


def make_context(machine: Machine) -> TestContext:
    return TestContext(machine, machine.spawn_process())


@pytest.fixture()
def nt_ctx(nt_machine) -> TestContext:
    return make_context(nt_machine)


@pytest.fixture()
def linux_ctx(linux_machine) -> TestContext:
    return make_context(linux_machine)


@pytest.fixture()
def win98_ctx(win98_machine) -> TestContext:
    return make_context(win98_machine)


@pytest.fixture()
def ce_ctx(ce_machine) -> TestContext:
    return make_context(ce_machine)


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture(scope="session")
def types():
    return default_types()


# ----------------------------------------------------------------------
# The session campaign (shared by analysis / shape / table tests)
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def session_results(all_variants):
    campaign = Campaign(all_variants, config=CampaignConfig(cap=SESSION_CAP))
    return campaign.run()
