"""Direct tests for the API entry points the other suites only exercise
through campaigns."""

import pytest

from repro.core.context import TestContext
from repro.libc import errno_codes as E
from repro.posix.linux import LINUX
from repro.sim.machine import Machine
from repro.sim.objects import EventObject, FileObject
from repro.win32 import errors as W
from repro.win32.variants import WIN98, WINNT


def win32_for(personality):
    machine = Machine(personality)
    ctx = TestContext(machine, machine.spawn_process())
    return ctx, ctx.win32


def posix_ctx():
    machine = Machine(LINUX)
    ctx = TestContext(machine, machine.spawn_process())
    return ctx, ctx.posix


@pytest.fixture()
def nt():
    return win32_for(WINNT)


@pytest.fixture()
def px():
    return posix_ctx()


def file_handle(ctx, content=b"data", writable=False):
    path = ctx.existing_file(content)
    open_file = ctx.machine.fs.open(path, readable=not writable, writable=writable)
    return ctx.process.handles.insert(FileObject(open_file, name=path))


class TestWin32Gaps:
    def test_attach_thread_input(self, nt):
        ctx, api = nt
        own = ctx.process.main_thread.tid
        assert api.AttachThreadInput(own, 999, 1) == 1
        assert api.AttachThreadInput(123, 999, 1) == 0
        ctx98, api98 = win32_for(WIN98)
        assert api98.AttachThreadInput(123, 999, 1) == 1  # lax: Silent

    def test_get_file_size_and_type(self, nt):
        ctx, api = nt
        handle = file_handle(ctx, b"12345")
        high = ctx.buffer(8)
        assert api.GetFileSize(handle, high) == 5
        assert ctx.mem.read_u32(high) == 0
        assert api.GetFileSize(handle, 0) == 5  # high pointer optional
        assert api.GetFileType(handle) == 1  # FILE_TYPE_DISK
        assert api.GetFileSize(0xBAD0, 0) == W.INVALID_FILE_SIZE

    def test_set_end_of_file(self, nt):
        ctx, api = nt
        handle = file_handle(ctx, b"0123456789", writable=True)
        obj = ctx.process.handles.get(handle)
        obj.open_file.seek(4, 0)
        assert api.SetEndOfFile(handle) == 1
        assert obj.open_file.node.size == 4

    def test_set_end_of_file_readonly_handle(self, nt):
        ctx, api = nt
        handle = file_handle(ctx)
        assert api.SetEndOfFile(handle) == 0
        assert ctx.process.last_error == W.ERROR_ACCESS_DENIED

    def test_set_file_time(self, nt):
        ctx, api = nt
        handle = file_handle(ctx)
        ft = ctx.buffer(8)
        ctx.mem.write_u64(ft, 0x01BF_53EB_0000_0000)
        assert api.SetFileTime(handle, ft, 0, ft) == 1
        assert api.SetFileTime(handle, 0xDEAD_0000, 0, 0) == 0
        assert ctx.process.last_error == W.ERROR_NOACCESS

    def test_local_and_system_time_writers(self, nt):
        ctx, api = nt
        st = ctx.buffer(16)
        api.GetLocalTime(st)
        assert ctx.mem.read_u16(st) == 2000
        assert api.SetLocalTime(st) == 1
        out = ctx.buffer(8)
        api.GetSystemTimeAsFileTime(out)
        assert ctx.mem.read_u64(out) > 11_644_473_600 * 10_000_000

    def test_get_system_info(self, nt):
        ctx, api = nt
        info = ctx.buffer(36)
        api.GetSystemInfo(info)
        assert ctx.mem.read_u32(info + 4) == 0x1000  # page size

    def test_global_realloc(self, nt):
        ctx, api = nt
        handle = api.GlobalAlloc(0, 8)
        ctx.mem.write(handle, b"abcdefgh")
        bigger = api.GlobalReAlloc(handle, 32, 0)
        assert ctx.mem.read(bigger, 8) == b"abcdefgh"
        assert api.GlobalSize(bigger) == 32

    def test_heap_compact(self, nt):
        ctx, api = nt
        heap = api.HeapCreate(0, 0x1000, 0)
        api.HeapAlloc(heap, 0, 64)
        assert api.HeapCompact(heap, 0) >= 64
        assert api.HeapCompact(0xBAD0, 0) == 0

    def test_pulse_event(self, nt):
        ctx, api = nt
        handle = ctx.process.handles.insert(EventObject(True, True))
        assert api.PulseEvent(handle) == 1
        assert not ctx.process.handles.get(handle).signaled

    def test_lock_file_ex_and_unlock_ex(self, nt):
        ctx, api = nt
        handle = file_handle(ctx)
        overlapped = ctx.buffer(20)
        ctx.mem.write_u32(overlapped + 8, 16)  # offset
        assert api.LockFileEx(handle, 0x2, 0, 8, 0, overlapped) == 1
        assert api.UnlockFileEx(handle, 0, 8, 0, overlapped) == 1
        assert api.UnlockFileEx(handle, 0, 8, 0, overlapped) == 0
        assert api.LockFileEx(handle, 0x2, 0, 8, 0, 0) == 0  # NULL overlapped

    def test_read_write_file_ex(self, nt):
        ctx, api = nt
        handle = file_handle(ctx, b"", writable=True)
        overlapped = ctx.buffer(20)
        src = ctx.buffer(4, b"WXYZ")
        assert api.WriteFileEx(handle, src, 4, overlapped, 0) == 1
        read_handle = file_handle(ctx, b"ABCD")
        dest = ctx.buffer(4)
        assert api.ReadFileEx(read_handle, dest, 4, overlapped, 0) == 1
        assert ctx.mem.read(dest, 4) == b"ABCD"
        assert api.ReadFileEx(read_handle, dest, 4, 0, 0) == 0  # needs OVERLAPPED

    def test_handle_resolution_helpers(self, nt):
        ctx, api = nt
        from repro.sim.objects import CURRENT_PROCESS_HANDLE

        assert api.resolve_handle(CURRENT_PROCESS_HANDLE) is ctx.process.kernel_object
        assert api.resolve_handle(0xBAD0) is None
        assert api.object_or_fail(0xBAD0) is None
        assert ctx.process.last_error == W.ERROR_INVALID_HANDLE
        api.set_last_error(0)

    def test_copy_helpers_follow_personality(self, nt):
        ctx, api = nt
        addr = ctx.buffer(8)
        assert api.copy_out("AnyFunc", addr, b"ab")
        assert api.copy_in("AnyFunc", addr, 2) == b"ab"
        assert not api.copy_out("AnyFunc", 0, b"ab")  # probed
        assert api.copy_in("AnyFunc", 0, 2) is None


class TestPosixGaps:
    def test_creat_truncates(self, px):
        ctx, api = px
        path = ctx.existing_file(b"old content")
        fd = api.creat(ctx.cstring(path.encode()), 0o644)
        assert fd >= 3
        assert ctx.machine.fs.lookup(path).size == 0

    def test_fdatasync_and_msync(self, px):
        ctx, api = px
        path = ctx.existing_file()
        fd = api.open(ctx.cstring(path.encode()), 0, 0)
        assert api.fdatasync(fd) == 0
        addr = api.mmap(0, 4096, 0x3, 0x22, -1, 0)
        assert api.msync(addr, 4096, 0x4) == 0
        assert api.msync(0x1000, 4096, 0x4) == -1

    def test_fch_family(self, px):
        ctx, api = px
        path = ctx.existing_file()
        fd = api.open(ctx.cstring(path.encode()), 0o2, 0)
        assert api.fchmod(fd, 0o600) == 0
        assert api.fchown(fd, ctx.process.uid, -1) == 0
        assert api.fchown(fd, 0, 0) == -1
        assert api.fchdir(fd) == -1  # regular file, ENOTDIR
        assert ctx.process.errno == E.ENOTDIR

    def test_lchown_and_lstat(self, px):
        ctx, api = px
        api.symlink(ctx.cstring(b"/tmp/t"), ctx.cstring(b"/tmp/l"))
        assert api.lchown(ctx.cstring(b"/tmp/l"), ctx.process.uid, -1) == 0
        buf = ctx.buffer(64)
        assert api.lstat(ctx.cstring(b"/tmp/l"), buf) == 0

    def test_utime(self, px):
        ctx, api = px
        path = ctx.existing_file()
        times = ctx.buffer(8)
        ctx.mem.write_u32(times, 1000)
        ctx.mem.write_u32(times + 4, 2000)
        assert api.utime(ctx.cstring(path.encode()), times) == 0
        node = ctx.machine.fs.lookup(path)
        assert node.accessed_at == 1000 * 1000
        assert api.utime(ctx.cstring(path.encode()), 0) == 0  # NULL = now
        assert api.utime(ctx.cstring(path.encode()), 0xDEAD_0000) == -1
        assert ctx.process.errno == E.EFAULT

    def test_fstatfs(self, px):
        ctx, api = px
        path = ctx.existing_file()
        fd = api.open(ctx.cstring(path.encode()), 0, 0)
        buf = ctx.buffer(64)
        assert api.fstatfs(fd, buf) == 0
        assert api.fstatfs(999, buf) == -1

    def test_identity_getters(self, px):
        ctx, api = px
        assert api.geteuid() == api.getuid() == 1000
        assert api.getegid() == api.getgid() == 1000

    def test_alarm_and_sched_yield(self, px):
        ctx, api = px
        assert api.alarm(30) == 0
        ctx.machine.clock.begin_call("sched_yield")
        assert api.sched_yield() == 0

    def test_copy_path_limits(self, px):
        ctx, api = px
        huge = ctx.cstring(b"x" * 8192)
        assert api.copy_path("open", huge) is None  # PATH_MAX exceeded


class TestCRuntimeGaps:
    def test_atol(self, px):
        ctx, _ = px
        assert ctx.crt.atol(ctx.cstring(b"  -77x")) == -77

    def test_getc_matches_fgetc(self, px):
        ctx, _ = px
        path = ctx.existing_file(b"Q")
        fp = ctx.crt.open_stream_for_test(path, "r")
        assert ctx.crt.getc(fp) == ord("Q")

    def test_gmtime_equals_localtime_in_utc_machine(self, px):
        ctx, _ = px
        t = ctx.buffer(8)
        ctx.mem.write_u32(t, 961_891_200)
        a = ctx.crt.gmtime(t)
        sec_month = ctx.mem.read_i32(a + 16)
        assert sec_month == 5  # June

    def test_make_closed_stream_is_detectably_closed(self, px):
        ctx, _ = px
        fp = ctx.crt.make_closed_stream()
        state = ctx.crt._streams[fp]
        assert state.closed
        assert ctx.mem.read_u32(fp) == 0  # _flag cleared
