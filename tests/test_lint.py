"""Unit tests for the repro.lint static-analysis subsystem."""

from __future__ import annotations

import dataclasses
import json
import textwrap

import pytest

from repro.core.mut import MuTRegistry
from repro.lint import (
    Finding,
    Project,
    all_checkers,
    checker_names,
    get_checker,
    run_lint,
)
from repro.lint.baseline import (
    BaselineFormatError,
    load_baseline,
    split_new,
    write_baseline,
)
from repro.lint.cli import main as lint_main
from repro.lint.framework import SourceFile
from repro.lint.report import render_text, report_to_dict

RULES = {
    "registry-contract",
    "determinism",
    "sim-isolation",
    "serialization-version",
    "exception-discipline",
}


def write_module(root, rel, text):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def findings_for(project, rule):
    return [f for f in get_checker(rule).run(project)]


def codes(findings):
    return {f.code for f in findings}


# ----------------------------------------------------------------------
# Framework
# ----------------------------------------------------------------------


class TestFramework:
    def test_all_five_rules_registered(self):
        assert RULES <= set(checker_names())
        assert [c.name for c in all_checkers()] == sorted(checker_names())

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="unknown lint rule"):
            get_checker("no-such-rule")

    def test_fingerprint_excludes_line_number(self):
        a = Finding("determinism", "DET-WALLCLOCK", "msg", "repro/core/x.py", 3)
        b = Finding("determinism", "DET-WALLCLOCK", "msg", "repro/core/x.py", 99)
        assert a.fingerprint == b.fingerprint
        assert a.location == "repro/core/x.py:3"

    def test_pragma_covers_own_and_next_line(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/core/x.py",
            """
            import time

            def stamp():
                a = time.time()  # lint: allow(determinism)
                # lint: allow(determinism)
                b = time.time()
                c = time.time()
                return a + b + c
            """,
        )
        source = SourceFile(tmp_path, path)
        assert source.allows(5, "determinism")  # inline pragma
        assert source.allows(7, "determinism")  # pragma on preceding line
        assert not source.allows(8, "determinism")
        assert not source.allows(5, "sim-isolation")

    def test_run_lint_moves_pragma_hits_to_suppressed(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/x.py",
            """
            import time

            def stamp():
                return time.time()  # lint: allow(determinism)
            """,
        )
        result = run_lint(
            Project(root=tmp_path), checkers=[get_checker("determinism")]
        )
        assert result.findings == []
        assert codes(result.suppressed) == {"DET-WALLCLOCK"}


# ----------------------------------------------------------------------
# Checker 1: registry contract
# ----------------------------------------------------------------------


def doctored_registry(mutate):
    """The real registry with one MuT rewritten by ``mutate``."""
    from repro.core.mut import default_registry

    doctored = MuTRegistry()
    for mut in default_registry().all():
        doctored.register(mutate(mut))
    return doctored


class TestRegistryContract:
    def test_clean_on_real_registry(self):
        assert findings_for(Project(), "registry-contract") == []

    def test_unresolved_param_type(self):
        registry = doctored_registry(
            lambda m: dataclasses.replace(m, param_types=("bogus_type",))
            if m.name == "VirtualLock"
            else m
        )
        found = findings_for(Project(registry=registry), "registry-contract")
        assert codes(found) == {"RC-TYPE"}
        assert "bogus_type" in found[0].message

    def test_unknown_group(self):
        registry = doctored_registry(
            lambda m: dataclasses.replace(m, group="Thirteenth Group")
            if m.name == "strcpy"
            else m
        )
        found = findings_for(Project(registry=registry), "registry-contract")
        assert codes(found) == {"RC-GROUP"}

    def test_matrix_mismatch_when_a_call_goes_missing(self):
        registry = MuTRegistry()
        from repro.core.mut import default_registry

        for mut in default_registry().all():
            if mut.name != "VirtualLock":  # drop one NT-family syscall
                registry.register(mut)
        found = findings_for(Project(registry=registry), "registry-contract")
        assert codes(found) == {"RC-MATRIX"}
        # VirtualLock is not in the CE subset: the five desktop variants
        # each lose one syscall, CE and Linux are untouched.
        assert len(found) == 5

    def test_incomplete_twin_set(self):
        registry = MuTRegistry()
        from repro.core.mut import default_registry

        for mut in default_registry().all():
            if mut.name != "wcslen":
                registry.register(mut)
        found = findings_for(Project(registry=registry), "registry-contract")
        assert "RC-TWIN" in codes(found)
        assert any("wcslen" in f.message for f in found)

    def test_registration_failure_becomes_finding(self):
        class Exploding(Project):
            def registry(self):
                raise ValueError("duplicate MuT win32:CreateFileA")

        found = findings_for(Exploding(), "registry-contract")
        assert codes(found) == {"RC-REGISTER"}
        assert "duplicate" in found[0].message


# ----------------------------------------------------------------------
# Checker 2: determinism
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_clean_on_real_tree(self):
        assert findings_for(Project(), "determinism") == []

    def test_wallclock_and_entropy_flagged_in_core(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/x.py",
            """
            import os
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now(), os.urandom(4)
            """,
        )
        found = findings_for(Project(root=tmp_path), "determinism")
        assert codes(found) == {"DET-WALLCLOCK"}
        assert len(found) == 3

    def test_monotonic_is_allowed(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/x.py",
            """
            import time

            def watchdog():
                return time.monotonic()
            """,
        )
        assert findings_for(Project(root=tmp_path), "determinism") == []

    def test_wallclock_allowed_in_service(self, tmp_path):
        write_module(
            tmp_path,
            "repro/service/x.py",
            """
            import time

            def deadline():
                return time.time() + 5
            """,
        )
        assert findings_for(Project(root=tmp_path), "determinism") == []

    def test_unseeded_random_flagged(self, tmp_path):
        write_module(
            tmp_path,
            "repro/analysis/x.py",
            """
            import random

            def jitter():
                a = random.random()
                b = random.Random()
                c = random.Random(None)
                d = random.SystemRandom()
                ok = random.Random(42)
                return a, b, c, d, ok
            """,
        )
        found = findings_for(Project(root=tmp_path), "determinism")
        assert codes(found) == {"DET-RANDOM"}
        assert len(found) == 4

    def test_seed_default_none_flagged_in_service(self, tmp_path):
        write_module(
            tmp_path,
            "repro/service/x.py",
            """
            from dataclasses import dataclass

            @dataclass
            class Policy:
                jitter_seed: int | None = None

            def run(seed=None):
                return seed
            """,
        )
        found = findings_for(Project(root=tmp_path), "determinism")
        assert codes(found) == {"DET-SEED"}
        assert len(found) == 2

    def test_set_iteration_flagged_unless_sorted(self, tmp_path):
        write_module(
            tmp_path,
            "repro/core/x.py",
            """
            def dump(keys):
                rows = [k for k in set(keys)]
                for k in {1, 2}:
                    rows.append(k)
                rows.extend(sorted(set(keys)))
                return rows
            """,
        )
        found = findings_for(Project(root=tmp_path), "determinism")
        assert codes(found) == {"DET-SETITER"}
        assert len(found) == 2


# ----------------------------------------------------------------------
# Checker 3: sim isolation
# ----------------------------------------------------------------------


class TestSimIsolation:
    def test_clean_on_real_tree(self):
        assert findings_for(Project(), "sim-isolation") == []

    def test_real_os_escapes_flagged(self, tmp_path):
        write_module(
            tmp_path,
            "repro/win32/x.py",
            """
            import os
            import socket

            def escape(path):
                handle = open(path)
                os.remove(path)
                return handle, socket.create_connection(("host", 1))
            """,
        )
        found = findings_for(Project(root=tmp_path), "sim-isolation")
        assert codes(found) == {"ISO-IMPORT", "ISO-BUILTIN", "ISO-CALL"}

    def test_method_named_open_is_fine(self, tmp_path):
        write_module(
            tmp_path,
            "repro/sim/x.py",
            """
            def through_the_machine(ctx, path):
                return ctx.fs.open(path, "r")
            """,
        )
        assert findings_for(Project(root=tmp_path), "sim-isolation") == []

    def test_only_sim_packages_scanned(self, tmp_path):
        write_module(
            tmp_path,
            "repro/service/x.py",
            """
            import socket

            def connect(host):
                return socket.create_connection((host, 1))
            """,
        )
        assert findings_for(Project(root=tmp_path), "sim-isolation") == []


# ----------------------------------------------------------------------
# Checker 4: serialization versioning
# ----------------------------------------------------------------------


class TestSerializationVersion:
    def test_clean_on_real_manifest(self):
        assert findings_for(Project(), "serialization-version") == []

    def _patched(self, monkeypatch, **overrides):
        from repro.lint.checkers import serialization
        from repro.lint.manifests import SERIALIZATION_PINS

        pin = next(
            p for p in SERIALIZATION_PINS if p.cls.endswith("CampaignCheckpoint")
        )
        monkeypatch.setattr(
            serialization,
            "SERIALIZATION_PINS",
            (dataclasses.replace(pin, **overrides),),
        )

    def test_field_drift_without_bump_is_error(self, monkeypatch):
        self._patched(
            monkeypatch,
            fields=("results", "cursors", "machine_wear", "cap"),
        )
        found = findings_for(Project(), "serialization-version")
        assert codes(found) == {"SER-DRIFT"}
        assert "without bumping" in found[0].message

    def test_version_bump_requires_repin(self, monkeypatch):
        self._patched(monkeypatch, version=99)
        found = findings_for(Project(), "serialization-version")
        assert codes(found) == {"SER-REPIN"}

    def test_unresolvable_pin_is_reported(self, monkeypatch):
        self._patched(monkeypatch, cls="repro.core.results_io.NoSuchClass")
        found = findings_for(Project(), "serialization-version")
        assert codes(found) == {"SER-MANIFEST"}


# ----------------------------------------------------------------------
# Checker 5: exception discipline
# ----------------------------------------------------------------------


class TestExceptionDiscipline:
    def test_clean_on_real_tree(self):
        assert findings_for(Project(), "exception-discipline") == []

    def test_bare_except_flagged_anywhere(self, tmp_path):
        write_module(
            tmp_path,
            "repro/analysis/x.py",
            """
            def swallow(fn):
                try:
                    return fn()
                except:
                    return None
            """,
        )
        found = findings_for(Project(root=tmp_path), "exception-discipline")
        assert codes(found) == {"EXC-BARE"}

    def test_builtin_raise_flagged_in_mut_impls(self, tmp_path):
        write_module(
            tmp_path,
            "repro/libc/x.py",
            """
            from repro.sim.errors import SoftwareAbort

            def impl(arg):
                if arg is None:
                    raise ValueError("bad arg")
                if arg < 0:
                    raise SoftwareAbort("free(): invalid pointer")
            """,
        )
        found = findings_for(Project(root=tmp_path), "exception-discipline")
        assert codes(found) == {"EXC-FAMILY"}
        assert len(found) == 1

    def test_sim_internals_may_raise_builtins(self, tmp_path):
        write_module(
            tmp_path,
            "repro/sim/x.py",
            """
            def guard(size):
                if size <= 0:
                    raise ValueError("harness bug")
            """,
        )
        assert findings_for(Project(root=tmp_path), "exception-discipline") == []


# ----------------------------------------------------------------------
# Baseline + reports + CLI
# ----------------------------------------------------------------------


def _violating_tree(tmp_path):
    write_module(
        tmp_path,
        "repro/core/x.py",
        """
        import time

        def stamp():
            return time.time()
        """,
    )
    return tmp_path


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [
            Finding("determinism", "DET-WALLCLOCK", "m", "repro/core/x.py", 4)
        ]
        path = tmp_path / "baseline.json"
        write_baseline(findings, path)
        assert load_baseline(path) == {findings[0].fingerprint}
        new, accepted = split_new(findings, load_baseline(path))
        assert new == [] and accepted == findings

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()
        assert load_baseline(None) == set()

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{}")
        with pytest.raises(BaselineFormatError):
            load_baseline(path)


class TestCli:
    def test_repo_is_clean(self, capsys):
        assert lint_main([]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_findings_fail_without_baseline(self, tmp_path, capsys):
        root = _violating_tree(tmp_path)
        args = [
            "--root", str(root),
            "--checkers", "determinism",
            "--baseline", str(tmp_path / "baseline.json"),
        ]
        assert lint_main(args) == 1
        assert "DET-WALLCLOCK" in capsys.readouterr().out

    def test_write_baseline_then_fail_on_new_passes(self, tmp_path, capsys):
        root = _violating_tree(tmp_path)
        args = [
            "--root", str(root),
            "--checkers", "determinism",
            "--baseline", str(tmp_path / "baseline.json"),
        ]
        assert lint_main(args + ["--write-baseline"]) == 0
        assert lint_main(args + ["--fail-on-new"]) == 0
        # ...but a *new* violation still fails.
        write_module(
            tmp_path,
            "repro/core/y.py",
            """
            import time

            def other():
                return time.time()
            """,
        )
        capsys.readouterr()
        assert lint_main(args + ["--fail-on-new"]) == 1
        out = capsys.readouterr().out
        assert "repro/core/y.py" in out
        assert "(baselined)" in out  # the accepted finding is marked

    def test_json_report_written(self, tmp_path, capsys):
        root = _violating_tree(tmp_path)
        report = tmp_path / "report.json"
        code = lint_main(
            [
                "--root", str(root),
                "--checkers", "determinism",
                "--baseline", str(tmp_path / "nope.json"),
                "--json",
                "--report", str(report),
            ]
        )
        assert code == 1
        on_stdout = json.loads(capsys.readouterr().out)
        on_disk = json.loads(report.read_text())
        assert on_stdout == on_disk
        assert on_disk["format"] == "ballista-lint-report"
        assert on_disk["summary"]["new"] == 1
        assert on_disk["findings"][0]["rule"] == "determinism"

    def test_explain_every_rule(self, capsys):
        for rule in sorted(RULES):
            assert lint_main(["--explain", rule]) == 0
            assert rule in capsys.readouterr().out
        assert lint_main(["--explain", "all"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out
        # Rationales quote the paper requirements they protect.
        assert "133 syscalls + 94 C" in out
        assert "faithful executable simulation" in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_dispatch_through_main_cli(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", "--list-rules"]) == 0
        assert "registry-contract" in capsys.readouterr().out


class TestReportRendering:
    def test_text_marks_baselined(self, tmp_path):
        result = run_lint(
            Project(root=_violating_tree(tmp_path)),
            checkers=[get_checker("determinism")],
        )
        fp = result.findings[0].fingerprint
        text = render_text(result, {fp})
        assert "(baselined)" in text
        assert "1 finding (0 new, 1 baselined" in text
        doc = report_to_dict(result, {fp})
        assert doc["summary"] == {
            "total": 1,
            "new": 0,
            "baselined": 1,
            "suppressed": 0,
        }
