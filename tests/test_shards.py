"""Intra-variant case sharding: slicing one variant's plan across many
workers must stay provably deterministic -- byte-identical result sets,
rendered tables, checkpoints, and per-variant event streams versus the
serial run -- across dirty seam wear, killed slice workers, resumed
runs, and stale wear-atlas speculation."""

import io
import json
import os

import pytest

from repro.analysis.tables import render_table1
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.parallel import (
    ParallelCampaign,
    default_jobs,
    default_shards,
    shard_bounds,
    shard_tag,
)
from repro.core.results import ResultSet
from repro.core.results_io import (
    CampaignCheckpoint,
    checkpoint_from_dict,
    checkpoint_to_dict,
    load_checkpoint,
    results_to_dict,
    save_checkpoint,
    save_results,
    shard_path,
    wear_fingerprint,
)
from repro.core.supervisor import SupervisedCampaign, SupervisorPolicy
from repro.obs import MemoryRecorder, strip_wall, variant_stream
from repro.obs.progress import ProgressRenderer
from repro.posix.linux import LINUX
from repro.win32.variants import WIN98, WINNT

SUBSET = ["GetThreadContext", "CloseHandle", "strcpy", "isalpha", "fclose"]
JOBS = int(os.environ.get("BALLISTA_JOBS", "2"))
DEADLINE = float(os.environ.get("BALLISTA_TEST_DEADLINE", "5.0"))
FAST = dict(backoff_base=0.05, backoff_max=0.2)


def serial_campaign(variants, cap, muts=SUBSET):
    return Campaign(variants, config=CampaignConfig(cap=cap), muts=muts)


def sharded_campaign(variants, cap, shards=3, muts=SUBSET, **kwargs):
    return ParallelCampaign(
        variants,
        config=CampaignConfig(cap=cap),
        muts=muts,
        jobs=JOBS,
        shards=shards,
        **kwargs,
    )


def dumps(results: ResultSet) -> str:
    return json.dumps(results_to_dict(results), separators=(",", ":"))


def plan_keys(variant_obj, cap, muts=SUBSET):
    campaign = Campaign(
        [variant_obj], config=CampaignConfig(cap=cap), muts=muts
    )
    return [f"{m.api}:{m.name}" for m in campaign.muts_for(variant_obj)]


class _Interrupt(Exception):
    pass


# ----------------------------------------------------------------------
# Slice enumeration
# ----------------------------------------------------------------------


class TestShardBounds:
    def test_bounds_cover_plan_contiguously(self):
        for total in (1, 5, 7, 100):
            for shards in (1, 2, 3, 7, 100):
                bounds = shard_bounds(total, shards)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == total
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start
                sizes = [stop - start for start, stop in bounds]
                assert max(sizes) - min(sizes) <= 1
                assert all(size >= 1 for size in sizes)

    def test_more_shards_than_positions_clamps(self):
        assert shard_bounds(3, 100) == [(0, 1), (1, 2), (2, 3)]

    def test_empty_plan_is_one_empty_slice(self):
        assert shard_bounds(0, 4) == [(0, 0)]

    def test_shard_tag(self):
        assert shard_tag("linux", 0) == "linux#0"
        assert shard_tag("winnt", 3) == "winnt#3"

    def test_default_jobs_scales_with_total_shards(self):
        cores = os.cpu_count() or 1
        assert default_jobs(28) == min(28, cores)
        assert default_jobs(0) == 1

    def test_default_shards_env(self, monkeypatch):
        monkeypatch.delenv("BALLISTA_SHARDS", raising=False)
        assert default_shards() == 1
        monkeypatch.setenv("BALLISTA_SHARDS", "4")
        assert default_shards() == 4
        monkeypatch.setenv("BALLISTA_SHARDS", "0")
        with pytest.raises(ValueError, match="BALLISTA_SHARDS"):
            default_shards()
        monkeypatch.setenv("BALLISTA_SHARDS", "many")
        with pytest.raises(ValueError, match="BALLISTA_SHARDS"):
            default_shards()


# ----------------------------------------------------------------------
# Determinism: sharded output is byte-identical to serial
# ----------------------------------------------------------------------


class TestShardedDeterminism:
    @pytest.mark.parametrize("cap", [20, 45])
    def test_result_set_byte_identical_at_cap(self, cap, tmp_path):
        """The acceptance bar, at two seeds (cap doubles as the seed of
        the deterministic generator): a sharded run's saved result-set
        document is byte-for-byte the serial one."""
        variants = [WIN98, WINNT, LINUX]
        serial = serial_campaign(variants, cap).run()
        sharded = sharded_campaign(variants, cap, shards=3).run()
        ser_path = tmp_path / "serial.json"
        shd_path = tmp_path / "sharded.json"
        save_results(serial, ser_path)
        save_results(sharded, shd_path)
        assert ser_path.read_bytes() == shd_path.read_bytes()

    def test_rendered_table1_identical(self):
        variants = [WIN98, WINNT, LINUX]
        serial = serial_campaign(variants, 30).run()
        sharded = sharded_campaign(variants, 30, shards=3).run()
        assert render_table1(sharded) == render_table1(serial)

    def test_merged_checkpoint_byte_identical(self, tmp_path):
        """Slice shards merge back into the exact checkpoint the serial
        runner writes, and the per-slice files are cleaned up."""
        variants = [WIN98, LINUX]
        ser_path = tmp_path / "ser.ckpt"
        shd_path = tmp_path / "shd.ckpt"
        serial_campaign(variants, 30).run(checkpoint_path=ser_path)
        sharded_campaign(variants, 30, shards=3).run(
            checkpoint_path=shd_path
        )
        assert ser_path.read_bytes() == shd_path.read_bytes()
        assert not shard_path(shd_path, "win98#0").exists()

    def test_event_streams_identical_to_serial(self):
        """The telemetry mirror: per-variant deterministic event
        streams, canonicalised by plan order with per-slice
        variant_finished markers collapsed, match the serial streams."""
        variants = [WIN98, LINUX]
        cap = 25
        serial_rec = MemoryRecorder()
        serial_campaign(variants, cap).run(recorder=serial_rec)
        sharded_rec = MemoryRecorder()
        sharded_campaign(variants, cap, shards=3).run(recorder=sharded_rec)
        for personality in variants:
            plan = plan_keys(personality, cap)
            serial_stream = [
                strip_wall(r)
                for r in variant_stream(serial_rec.records, personality.key)
            ]
            sharded_stream = [
                strip_wall(r)
                for r in variant_stream(
                    sharded_rec.records, personality.key, plan=plan
                )
            ]
            assert sharded_stream == serial_stream

    def test_single_shard_keeps_bare_filenames(self, tmp_path):
        """shards=1 must stay on the per-variant path: bare shard file
        names, no slice blocks -- full back compatibility."""
        path = tmp_path / "c.ckpt"
        completed = []

        def die_soon(variant, mut, position, total):
            if len(completed) == 2:
                raise _Interrupt()
            completed.append(mut)

        with pytest.raises(_Interrupt):
            sharded_campaign([WIN98], 20, shards=1).run(
                progress=die_soon,
                checkpoint_path=path,
                checkpoint_every=1,
            )
        assert shard_path(path, "win98").exists()
        assert load_checkpoint(shard_path(path, "win98")).shard is None


# ----------------------------------------------------------------------
# Seam wear: a file leaked at the end of slice k must influence the
# first MuT of slice k+1 exactly as it does serially
# ----------------------------------------------------------------------


class TestShardBoundaryWearLeak:
    #: ``creat`` leaks files into the simulated filesystem; ``unlink``'s
    #: very first cases then hit those leftovers, so its classification
    #: depends on the machine wear crossing the slice boundary.
    MUTS = ["creat", "unlink"]

    def test_boundary_seam_is_actually_dirty(self):
        """Sanity for the regression test below: running the second
        slice cold from boot must *change* its first MuT's row --
        otherwise the byte-identity assertion would be vacuous."""
        cap = 20
        serial = serial_campaign([LINUX], cap, muts=self.MUTS)
        rows = {
            f"{r['api']}:{r['mut']}": r
            for r in results_to_dict(serial.run())["results"]
        }
        seam = serial.last_checkpoint.machine_wear.get("linux")
        assert seam is not None
        assert wear_fingerprint(seam) != wear_fingerprint(None)
        cold = Campaign(
            [LINUX],
            config=CampaignConfig(cap=cap),
            muts=self.MUTS,
            shard={
                "variant": "linux",
                "index": 1,
                "start": 1,
                "stop": 2,
                "resumed": False,
                "base_wear": None,  # deliberately wrong: boot, not seam
            },
        )
        cold_rows = {
            f"{r['api']}:{r['mut']}": r
            for r in results_to_dict(cold.run())["results"]
        }
        assert cold_rows["posix:unlink"] != rows["posix:unlink"]

    def test_leaked_files_cross_boundary_byte_identically(self, tmp_path):
        """The regression: with the boundary seam demonstrably dirty,
        the sharded run still reproduces the serial classification of
        the first MuT of slice k+1 -- and everything else."""
        cap = 20
        serial = serial_campaign([LINUX], cap, muts=self.MUTS).run()
        sharded = sharded_campaign(
            [LINUX], cap, shards=2, muts=self.MUTS
        ).run()
        assert dumps(sharded) == dumps(serial)


# ----------------------------------------------------------------------
# Supervision: kill one slice's worker, heal, stay byte-identical
# ----------------------------------------------------------------------


class TestShardWorkerKill:
    def test_sigkilled_slice_worker_restarts_byte_identical(
        self, tmp_path, monkeypatch
    ):
        variants = [WIN98, LINUX]
        cap = 30
        ser_path = tmp_path / "serial.ckpt"
        serial = serial_campaign(variants, cap).run(checkpoint_path=ser_path)
        marker = tmp_path / "killed-once"
        monkeypatch.setenv(
            "BALLISTA_FAULT_KILL", f"linux|libc:strcpy|2|{marker}"
        )
        shd_path = tmp_path / "sharded.ckpt"
        sup = SupervisedCampaign(
            variants,
            config=CampaignConfig(cap=cap),
            muts=SUBSET,
            jobs=JOBS,
            shards=2,
            policy=SupervisorPolicy(mut_deadline=DEADLINE, **FAST),
        )
        healed = sup.run(checkpoint_path=shd_path)
        assert marker.exists(), "the fault never fired"
        assert dumps(healed) == dumps(serial)
        assert render_table1(healed) == render_table1(serial)
        assert shd_path.read_bytes() == ser_path.read_bytes()
        restarts = [
            e for e in sup.supervision_log if e["event"] == "restart"
        ]
        assert restarts, "the supervisor never logged the slice restart"
        # The restart is attributed to the (variant, slice) worker.
        assert any("#" in e["variant"] for e in restarts)


# ----------------------------------------------------------------------
# Resume: a killed sharded run picks its slice files back up
# ----------------------------------------------------------------------


class TestShardedResume:
    def test_interrupted_slice_resumes_byte_identical(self, tmp_path):
        """Fabricate a slice worker killed mid-slice (its shard file
        survives on disk), rerun the sharded campaign, and require
        byte-identity plus no re-execution of the slice's completed
        MuTs."""
        cap = 30
        clean = serial_campaign([WIN98], cap).run()
        path = tmp_path / "campaign.ckpt"
        keys = plan_keys(WIN98, cap)
        start, stop = shard_bounds(len(keys), 2)[0]
        completed = []

        def die_mid_slice(variant, mut, position, total):
            if len(completed) == 1:
                raise _Interrupt()
            completed.append(mut)

        with pytest.raises(_Interrupt):
            Campaign(
                [WIN98],
                config=CampaignConfig(cap=cap),
                muts=SUBSET,
                shard={
                    "variant": "win98",
                    "index": 0,
                    "start": start,
                    "stop": stop,
                    "resumed": False,
                    "base_wear": None,
                },
            ).run(
                progress=die_mid_slice,
                checkpoint_path=shard_path(path, "win98#0"),
                checkpoint_every=1,
            )
        assert shard_path(path, "win98#0").exists()

        executed = []
        resumed = sharded_campaign([WIN98], cap, shards=2).run(
            progress=lambda v, m, p, t: executed.append(m),
            checkpoint_path=path,
        )
        assert dumps(resumed) == dumps(clean)
        assert not (set(executed) & set(completed)), (
            "MuTs recorded in the slice shard must not run again"
        )
        assert load_checkpoint(path).complete is True
        assert not shard_path(path, "win98#0").exists()

    def test_sharded_run_resumes_old_per_variant_checkpoint(self, tmp_path):
        """Version-1 combined checkpoints (written before slicing
        existed) still load and resume under a sharded run."""
        cap = 30
        clean = serial_campaign([WIN98, WINNT], cap).run()
        path = tmp_path / "campaign.ckpt"
        seen = {"muts": 0}

        def die_late(variant, mut, position, total):
            if seen["muts"] == 6:
                raise _Interrupt()
            seen["muts"] += 1

        with pytest.raises(_Interrupt):
            serial_campaign([WIN98, WINNT], cap).run(
                progress=die_late, checkpoint_path=path, checkpoint_every=1
            )
        # Rewrite the interrupted checkpoint as the version-1 format:
        # same fields minus the (absent anyway) shard block.
        document = checkpoint_to_dict(load_checkpoint(path))
        assert document["version"] == 3
        document["version"] = 1
        document.pop("shard", None)
        path.write_text(json.dumps(document), encoding="utf-8")

        resumed = sharded_campaign([WIN98, WINNT], cap, shards=2).run(
            checkpoint_path=path, resume=path
        )
        assert dumps(resumed) == dumps(clean)
        assert load_checkpoint(path).complete is True

    def test_version_1_document_loads(self):
        checkpoint = CampaignCheckpoint(ResultSet(), cap=10)
        document = checkpoint_to_dict(checkpoint)
        document["version"] = 1
        restored = checkpoint_from_dict(document)
        assert restored.cap == 10
        assert restored.shard is None

    def test_unknown_version_refused(self):
        document = checkpoint_to_dict(CampaignCheckpoint(ResultSet(), cap=10))
        document["version"] = 99
        with pytest.raises(Exception, match="version"):
            checkpoint_from_dict(document)

    def test_stale_slice_file_from_other_grid_discarded(
        self, tmp_path, capfd
    ):
        """A shard file recorded under a different slice assignment
        (here: a different span) must be discarded, not resumed -- its
        rows would splice a foreign wear trajectory into the slice."""
        cap = 20
        clean = serial_campaign([WIN98], cap).run()
        path = tmp_path / "campaign.ckpt"
        stale = CampaignCheckpoint(
            ResultSet(),
            cap=cap,
            variants=["win98"],
            complete=False,
            shard={
                "variant": "win98",
                "index": 0,
                "start": 0,
                "stop": 99,  # some other grid
                "resumed": False,
                "base_wear": None,
            },
        )
        save_checkpoint(stale, shard_path(path, "win98#0"))
        resumed = sharded_campaign([WIN98], cap, shards=2).run(
            checkpoint_path=path
        )
        # The discard warning fires inside the spawned worker.
        assert "different slice assignment" in capfd.readouterr().err
        assert dumps(resumed) == dumps(clean)


# ----------------------------------------------------------------------
# Wear atlas: warm seams launch speculatively; stale seams replay
# ----------------------------------------------------------------------


class TestWearAtlas:
    def test_atlas_warms_and_replays_nothing_when_fresh(self, tmp_path):
        cap = 25
        atlas_path = tmp_path / "atlas.json"
        serial = serial_campaign([WIN98, LINUX], cap).run()
        first = sharded_campaign(
            [WIN98, LINUX], cap, shards=3, atlas_path=atlas_path
        ).run()
        assert atlas_path.exists()
        recorder = MemoryRecorder()
        second = sharded_campaign(
            [WIN98, LINUX], cap, shards=3, atlas_path=atlas_path
        ).run(recorder=recorder)
        assert dumps(first) == dumps(serial)
        assert dumps(second) == dumps(serial)
        kinds = [r["kind"] for r in recorder.records]
        assert "shard_replayed" not in kinds, (
            "a fresh atlas must launch every slice on a settled seam"
        )

    def test_poisoned_atlas_replays_and_heals(self, tmp_path):
        """Corrupt one memoized seam wear: the settlement cascade must
        detect the stale base, replay the slice from the true frontier,
        and still produce serial bytes."""
        import warnings as _warnings

        from repro.core.atlas import load_atlas, save_atlas

        cap = 25
        atlas_path = tmp_path / "atlas.json"
        serial = serial_campaign([LINUX], cap).run()
        sharded_campaign(
            [LINUX], cap, shards=3, atlas_path=atlas_path
        ).run()
        atlas = load_atlas(atlas_path)
        positions = sorted(atlas.seams["linux"])
        assert positions, "the run memoized no seams"
        atlas.seams["linux"][positions[0]] = {"clock_ticks": 10**9}
        save_atlas(atlas, atlas_path)

        recorder = MemoryRecorder()
        with _warnings.catch_warnings():
            # Replay workers rightly discard the speculative files.
            _warnings.simplefilter("ignore")
            poisoned = sharded_campaign(
                [LINUX], cap, shards=3, atlas_path=atlas_path
            ).run(recorder=recorder)
        assert dumps(poisoned) == dumps(serial)
        kinds = [r["kind"] for r in recorder.records]
        assert "shard_replayed" in kinds
        # The atlas healed: the poisoned seam was re-memoized.
        healed = load_atlas(atlas_path)
        assert healed.seams["linux"][positions[0]] != {"clock_ticks": 10**9}


# ----------------------------------------------------------------------
# Progress rendering: slices collapse to one line per variant
# ----------------------------------------------------------------------


class TestProgressAggregation:
    def test_sharded_progress_reports_whole_variants(self):
        """Callers see per-variant aggregate progress -- no '#' slice
        tags, totals covering the whole plan -- so the renderer keeps
        one line per variant regardless of --shards."""
        cap = 20
        events = []
        sharded_campaign([WIN98], cap, shards=3).run(
            progress=lambda v, m, p, t: events.append((v, p, t))
        )
        assert events, "no progress forwarded"
        plan_total = len(plan_keys(WIN98, cap))
        assert all(v == "win98" for v, _, _ in events)
        assert all(t == plan_total for _, _, t in events)
        positions = [p for _, p, _ in events]
        assert max(positions) == plan_total - 1

    def test_renderer_off_tty_emits_plain_lines(self):
        """Off-TTY regression: one plain newline-terminated line per
        update, no carriage returns or cursor escapes (CI logs must
        stay grep-able)."""
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, tty=False)
        renderer.update("win98", "strcpy", 0, 10)
        renderer.update("win98", "strcpy", 5, 10)
        renderer.close()
        out = stream.getvalue()
        lines = out.splitlines()
        assert len(lines) == 2
        assert out.endswith("\n")
        assert "\r" not in out
        assert "\x1b" not in out
        assert all("win98" in line for line in lines)
