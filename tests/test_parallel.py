"""Parallel campaign runner: variant-level fan-out must be provably
deterministic -- byte-identical result sets, rendered tables, and
checkpoint documents versus the serial run -- and per-variant checkpoint
shards must resume independently after a killed worker."""

import json
import os

import pytest

from repro.analysis.tables import render_table1
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.parallel import ParallelCampaign, default_jobs
from repro.core.results import ResultSet
from repro.core.results_io import (
    CampaignCheckpoint,
    load_checkpoint,
    results_to_dict,
    save_checkpoint,
    save_results,
    shard_path,
)
from repro.posix.linux import LINUX
from repro.win32.variants import WIN98, WINNT

SUBSET = ["GetThreadContext", "CloseHandle", "strcpy", "isalpha", "fclose"]

#: Worker count for the suite; CI runs it at BALLISTA_JOBS=2 explicitly.
JOBS = int(os.environ.get("BALLISTA_JOBS", "2"))


def serial_campaign(variants, cap):
    return Campaign(variants, config=CampaignConfig(cap=cap), muts=SUBSET)


def parallel_campaign(variants, cap, jobs=JOBS):
    return ParallelCampaign(
        variants, config=CampaignConfig(cap=cap), muts=SUBSET, jobs=jobs
    )


def dumps(results: ResultSet) -> str:
    return json.dumps(results_to_dict(results), separators=(",", ":"))


class _Interrupt(Exception):
    pass


# ----------------------------------------------------------------------
# Determinism: parallel output is byte-identical to serial
# ----------------------------------------------------------------------


class TestDeterminism:
    @pytest.mark.parametrize("cap", [20, 45])
    def test_result_set_byte_identical_at_cap(self, cap, tmp_path):
        """The acceptance bar, at two caps: the saved result-set
        document from a parallel run is byte-for-byte the serial one."""
        variants = [WIN98, WINNT, LINUX]
        serial = serial_campaign(variants, cap).run()
        parallel = parallel_campaign(variants, cap).run()
        ser_path = tmp_path / "serial.json"
        par_path = tmp_path / "parallel.json"
        save_results(serial, ser_path)
        save_results(parallel, par_path)
        assert ser_path.read_bytes() == par_path.read_bytes()

    def test_rendered_table1_identical(self):
        variants = [WIN98, WINNT, LINUX]
        serial = serial_campaign(variants, 30).run()
        parallel = parallel_campaign(variants, 30).run()
        assert render_table1(parallel) == render_table1(serial)

    def test_checkpoint_document_byte_identical(self, tmp_path):
        """Merged shards serialise to the exact checkpoint the serial
        runner writes: same rows, cursors, machine wear, completeness."""
        variants = [WIN98, WINNT]
        ser_path = tmp_path / "ser.ckpt"
        par_path = tmp_path / "par.ckpt"
        serial_campaign(variants, 30).run(checkpoint_path=ser_path)
        parallel_campaign(variants, 30).run(checkpoint_path=par_path)
        assert ser_path.read_bytes() == par_path.read_bytes()

    def test_shards_removed_after_successful_merge(self, tmp_path):
        path = tmp_path / "par.ckpt"
        parallel_campaign([WIN98, WINNT], 20).run(checkpoint_path=path)
        assert path.exists()
        assert not list(tmp_path.glob("*.shard"))

    def test_progress_events_cover_the_serial_plan(self):
        variants = [WIN98, WINNT]
        serial_events: list[tuple] = []
        serial_campaign(variants, 20).run(
            progress=lambda *a: serial_events.append(a)
        )
        parallel_events: list[tuple] = []
        parallel_campaign(variants, 20).run(
            progress=lambda *a: parallel_events.append(a)
        )
        # Arrival order interleaves across workers, but every
        # (variant, mut, position, total) event happens exactly once.
        assert sorted(parallel_events) == sorted(serial_events)


# ----------------------------------------------------------------------
# Checkpoint shards: resume after killed workers
# ----------------------------------------------------------------------


class TestShardResume:
    def test_killed_worker_shard_resumes_independently(self, tmp_path):
        """A worker killed mid-variant leaves its shard behind; the next
        parallel run picks the shard up, skips its completed MuTs, and
        still matches the uninterrupted run exactly."""
        variants = [WIN98, WINNT]
        cap = 30
        clean = serial_campaign(variants, cap).run()

        path = tmp_path / "campaign.ckpt"
        completed: list[tuple[str, str]] = []

        def die_mid_variant(variant, mut, position, total):
            if len(completed) == 2:
                raise _Interrupt()
            completed.append((variant, mut))

        # Fabricate the killed win98 worker: a lone serial run against
        # that variant's shard path dies two MuTs in.
        with pytest.raises(_Interrupt):
            serial_campaign([WIN98], cap).run(
                progress=die_mid_variant,
                checkpoint_path=shard_path(path, "win98"),
                checkpoint_every=1,
            )
        assert shard_path(path, "win98").exists()

        executed: list[tuple[str, str]] = []
        resumed = parallel_campaign(variants, cap).run(
            progress=lambda v, m, p, t: executed.append((v, m)),
            checkpoint_path=path,
        )
        assert dumps(resumed) == dumps(clean)
        assert not (set(executed) & set(completed)), (
            "MuTs recorded in the shard must not run again"
        )
        final = load_checkpoint(path)
        assert final.complete is True
        assert not shard_path(path, "win98").exists()

    def test_parallel_resumes_a_serial_combined_checkpoint(self, tmp_path):
        """Interrupt a serial run, then finish it in parallel: the
        combined checkpoint is split into per-variant slices."""
        variants = [WIN98, WINNT]
        cap = 30
        clean = serial_campaign(variants, cap).run()

        path = tmp_path / "campaign.ckpt"
        seen = {"muts": 0}

        def die_late(variant, mut, position, total):
            if seen["muts"] == 6:
                raise _Interrupt()
            seen["muts"] += 1

        with pytest.raises(_Interrupt):
            serial_campaign(variants, cap).run(
                progress=die_late, checkpoint_path=path, checkpoint_every=1
            )
        resumed = parallel_campaign(variants, cap).run(
            checkpoint_path=path, resume=path
        )
        assert dumps(resumed) == dumps(clean)
        assert load_checkpoint(path).complete is True

    def test_resume_under_different_cap_refused(self, tmp_path):
        path = tmp_path / "campaign.ckpt"
        parallel_campaign([WINNT], 20, jobs=1).run(checkpoint_path=path)
        with pytest.raises(ValueError, match="cap"):
            parallel_campaign([WINNT], 40).run(resume=path)

    def test_resume_with_different_variants_refused(self, tmp_path):
        path = tmp_path / "campaign.ckpt"
        parallel_campaign([WINNT], 20, jobs=1).run(checkpoint_path=path)
        with pytest.raises(ValueError, match="variants"):
            parallel_campaign([WIN98, WINNT], 20).run(resume=path)

    def test_stale_shard_with_wrong_cap_fails_the_worker(self, tmp_path):
        """A leftover shard from a run at another cap must not be
        silently spliced in: the worker refuses it and the parent
        surfaces the failure."""
        path = tmp_path / "campaign.ckpt"
        stale = CampaignCheckpoint(
            ResultSet(), cap=99, variants=["win98"], complete=False
        )
        save_checkpoint(stale, shard_path(path, "win98"))
        with pytest.raises(RuntimeError, match="win98"):
            parallel_campaign([WIN98, WINNT], 20).run(checkpoint_path=path)
        # Even a run that dies before any shard merges leaves a loadable
        # combined document recording cap + variants, so ``--resume``
        # works against it.
        skeleton = load_checkpoint(path)
        assert skeleton.cap == 20
        assert skeleton.variants == ["win98", "winnt"]
        assert skeleton.complete is False


# ----------------------------------------------------------------------
# Knobs
# ----------------------------------------------------------------------


class TestJobs:
    def test_default_jobs_bounded_by_variants_and_cores(self):
        cores = os.cpu_count() or 1
        assert default_jobs(7) == min(7, cores)
        assert default_jobs(1) == 1
        assert default_jobs(0) == 1

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelCampaign([WINNT], jobs=0)

    def test_single_job_runs_serially_in_process(self):
        campaign = parallel_campaign([WIN98, WINNT], 20, jobs=1)
        results = campaign.run()
        assert dumps(results) == dumps(serial_campaign([WIN98, WINNT], 20).run())
        assert campaign.last_checkpoint is not None
        assert campaign.last_checkpoint.complete is True


# ----------------------------------------------------------------------
# Server-side local fallback
# ----------------------------------------------------------------------


class TestServerLocalFallback:
    def test_run_local_parallel_matches_campaign(self, winnt, win98):
        from repro.service import BallistaServer

        server = BallistaServer([win98, winnt], cap=20)
        results = server.run_local(jobs=JOBS)
        expected = Campaign(
            [win98, winnt], config=CampaignConfig(cap=20)
        ).run()
        assert dumps(results) == dumps(expected)
        assert server.completed_variants() == {"win98", "winnt"}
        server.join({"win98", "winnt"}, timeout=1.0)  # returns immediately

    def test_run_local_with_custom_registry_falls_back_to_serial(
        self, winnt, registry
    ):
        from repro.core.mut import MuTRegistry
        from repro.service import BallistaServer

        sub = MuTRegistry()
        for mut in registry.all():
            if mut.name in SUBSET:
                sub.register(mut)
        server = BallistaServer([winnt], registry=sub, cap=20)
        results = server.run_local(jobs=JOBS)
        expected = Campaign(
            [winnt], registry=sub, config=CampaignConfig(cap=20)
        ).run()
        assert dumps(results) == dumps(expected)


# ----------------------------------------------------------------------
# ResultSet merge building blocks
# ----------------------------------------------------------------------


class TestResultSetMerge:
    def test_merge_unions_rows_and_partial_flags(self):
        left = serial_campaign([WIN98], 20).run()
        right = serial_campaign([WINNT], 20).run()
        right.mark_partial("winnt")
        merged = ResultSet()
        merged.merge(left)
        merged.merge(right)
        assert merged.variants() == ["win98", "winnt"]
        assert len(merged) == len(left) + len(right)
        assert merged.is_partial("winnt") and not merged.is_partial("win98")

    def test_merge_rejects_overlapping_rows(self):
        results = serial_campaign([WINNT], 20).run()
        with pytest.raises(ValueError, match="duplicate"):
            results.merge(serial_campaign([WINNT], 20).run())
