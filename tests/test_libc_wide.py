"""Unit tests for the Windows CE UNICODE twin functions."""

import pytest

from repro.core.context import TestContext
from repro.sim.errors import AccessViolation, SystemCrash
from repro.sim.machine import Machine
from repro.win32.variants import WINCE


@pytest.fixture()
def ce():
    machine = Machine(WINCE)
    ctx = TestContext(machine, machine.spawn_process())
    return ctx, ctx.crt


def wstr(ctx, text: str) -> int:
    data = text.encode("utf-16-le") + b"\x00\x00"
    pad = (4 - len(data) % 4) % 4
    return ctx.mem.alloc(data, tag="wstr", pad=pad)


def read_wide(ctx, addr: int) -> str:
    return ctx.mem.read_wstring(addr).decode("utf-16-le")


class TestWideStrings:
    def test_wcscpy_roundtrip(self, ce):
        ctx, crt = ce
        dest = ctx.buffer(64)
        crt.wcscpy(dest, wstr(ctx, "ballista"))
        assert read_wide(ctx, dest) == "ballista"

    def test_wcslen(self, ce):
        ctx, crt = ce
        assert crt.wcslen(wstr(ctx, "12345")) == 5
        assert crt.wcslen(wstr(ctx, "")) == 0

    def test_wcscmp_and_ncmp(self, ce):
        ctx, crt = ce
        a = wstr(ctx, "apple")
        b = wstr(ctx, "apric")
        assert crt.wcscmp(a, b) < 0
        assert crt.wcsncmp(a, b, 2) == 0

    def test_wcscat(self, ce):
        ctx, crt = ce
        dest = ctx.buffer(64)
        crt.wcscpy(dest, wstr(ctx, "one"))
        crt.wcscat(dest, wstr(ctx, "two"))
        assert read_wide(ctx, dest) == "onetwo"

    def test_wcsncat_limits_units(self, ce):
        ctx, crt = ce
        dest = ctx.buffer(64)
        crt.wcscpy(dest, wstr(ctx, "x"))
        crt.wcsncat(dest, wstr(ctx, "abcdef"), 2)
        assert read_wide(ctx, dest) == "xab"

    def test_wcschr_and_rchr(self, ce):
        ctx, crt = ce
        s = wstr(ctx, "hello")
        assert crt.wcschr(s, ord("l")) == s + 2 * 2
        assert crt.wcsrchr(s, ord("l")) == s + 3 * 2
        assert crt.wcschr(s, ord("z")) == 0

    def test_wcsstr(self, ce):
        ctx, crt = ce
        hay = wstr(ctx, "the ballista")
        assert crt.wcsstr(hay, wstr(ctx, "ball")) == hay + 4 * 2
        assert crt.wcsstr(hay, wstr(ctx, "nope")) == 0

    def test_wcsspn_cspn_pbrk(self, ce):
        ctx, crt = ce
        s = wstr(ctx, "112358x")
        digits = wstr(ctx, "0123456789")
        assert crt.wcsspn(s, digits) == 6
        assert crt.wcscspn(s, wstr(ctx, "x")) == 6
        assert crt.wcspbrk(s, wstr(ctx, "x")) == s + 6 * 2

    def test_wcstok_sequence(self, ce):
        ctx, crt = ce
        s = wstr(ctx, "a,b")
        sep = wstr(ctx, ",")
        first = crt.wcstok(s, sep)
        assert read_wide(ctx, first) == "a"
        second = crt.wcstok(0, sep)
        assert read_wide(ctx, second) == "b"
        assert crt.wcstok(0, sep) == 0

    def test_tcsncpy_pads_like_strncpy(self, ce):
        ctx, crt = ce
        dest = ctx.buffer(32, b"\xff" * 32)
        crt._tcsncpy(dest, wstr(ctx, "ab"), 4)
        # 2 units copied + 2 NUL units, trailing bytes untouched.
        assert ctx.mem.read(dest, 8) == "ab".encode("utf-16-le") + b"\x00" * 4
        assert ctx.mem.read(dest + 8, 1) == b"\xff"

    def test_tcsncpy_bad_dest_corrupts_ce(self, ce):
        ctx, crt = ce
        crt._tcsncpy(0xDEAD_0000, wstr(ctx, "abc"), 3)
        assert ctx.machine.corruption_level >= 1

    def test_wide_null_pointer_faults(self, ce):
        ctx, crt = ce
        with pytest.raises(AccessViolation):
            crt.wcslen(0)


class TestWideStdio:
    def open_wide(self, ctx, crt, content=b"w1 w2\n"):
        path = ctx.existing_file(content)
        return crt.open_stream_for_test(path, "r")

    def test_wfopen_and_read(self, ce):
        ctx, crt = ce
        path = ctx.existing_file(b"AB")
        fp = crt._wfopen(wstr(ctx, path), wstr(ctx, "r"))
        assert fp != 0
        assert crt.fgetc(fp) == ord("A")

    def test_wfopen_bad_mode(self, ce):
        ctx, crt = ce
        assert crt._wfopen(wstr(ctx, "/tmp/x"), wstr(ctx, "zz")) == 0

    def test_wfreopen_switches(self, ce):
        ctx, crt = ce
        fp = self.open_wide(ctx, crt, b"first")
        other = ctx.existing_file(b"second")
        assert crt._wfreopen(wstr(ctx, other), wstr(ctx, "r"), fp) == fp
        assert crt.fgetc(fp) == ord("s")

    def test_wfreopen_wild_file_crashes_ce(self, ce):
        ctx, crt = ce
        wild = ctx.cstring(b"this is not a FILE structure at all.....")
        with pytest.raises(SystemCrash):
            crt._wfreopen(wstr(ctx, "/tmp/x"), wstr(ctx, "r"), wild)

    def test_wfread_into_buffer(self, ce):
        ctx, crt = ce
        fp = self.open_wide(ctx, crt, b"0123456789")
        dest = ctx.buffer(16)
        assert crt.wfread(dest, 1, 10, fp) == 10
        assert ctx.mem.read(dest, 10) == b"0123456789"

    def test_wfread_wild_file_corrupts(self, ce):
        ctx, crt = ce
        wild = ctx.cstring(b"this is not a FILE structure at all.....")
        crt.wfread(ctx.buffer(8), 1, 8, wild)
        assert ctx.machine.corruption_level >= 1

    def test_fgetwc_reads_units(self, ce):
        ctx, crt = ce
        fp = self.open_wide(ctx, crt, "hi".encode("utf-16-le"))
        assert crt.fgetwc(fp) == ord("h")
        assert crt.fgetwc(fp) == ord("i")
        assert crt.fgetwc(fp) == -1

    def test_fputwc_fputws(self, ce):
        ctx, crt = ce
        fp = crt.open_stream_for_test("/tmp/wide.out", "w")
        assert crt.fputwc(ord("Z"), fp) == ord("Z")
        assert crt.fputws(wstr(ctx, "ok"), fp) == 4  # bytes written
        data = bytes(ctx.machine.fs.lookup("/tmp/wide.out").data)
        assert data == "Z".encode("utf-16-le") + "ok".encode("utf-16-le")

    def test_fgetws_line(self, ce):
        ctx, crt = ce
        fp = self.open_wide(ctx, crt, "ab\n".encode("utf-16-le"))
        buf = ctx.buffer(64)
        assert crt.fgetws(buf, 16, fp) == buf
        assert read_wide(ctx, buf) == "ab\n"

    def test_fwprintf(self, ce):
        ctx, crt = ce
        fp = crt.open_stream_for_test("/tmp/wp.out", "w")
        written = crt.fwprintf(fp, wstr(ctx, "n=%d"), 7)
        assert written == len("n=7".encode("utf-16-le"))

    def test_fwscanf_parses_number(self, ce):
        ctx, crt = ce
        fp = self.open_wide(ctx, crt, b"42")
        out = ctx.buffer(8)
        assert crt.fwscanf(fp, wstr(ctx, "%d"), out) == 1
        assert ctx.mem.read_u32(out) == 42

    def test_wide_registry_is_ce_only(self, registry, winnt, wince):
        wide = registry.get("libc", "wcscpy")
        assert wide.available_on(wince)
        assert not wide.available_on(winnt)
        assert wide.charset == "unicode"
