"""Unit tests for the Ballista type system and the case generator."""

import pytest

from repro.core.generator import CaseGenerator, PAPER_CAP
from repro.core.mut import MuT, MuTRegistry, facade_call
from repro.core.types import ParamType, TypeRegistry, default_types


def dummy_call(ctx, args):
    return 0


def make_mut(name, params, api="libc", group="C string"):
    return MuT(name, api, group, tuple(params), dummy_call)


class TestParamTypes:
    def test_values_inherit_from_parent(self):
        types = TypeRegistry()
        base = types.new_type("base")
        base.add("B1", lambda ctx: 1)
        child = types.new_type("child", parent="base")
        child.add("C1", lambda ctx: 2)
        names = [v.name for v in child.all_values()]
        assert names == ["B1", "C1"]  # parents first, stable order

    def test_grandparent_inheritance(self):
        types = TypeRegistry()
        types.new_type("a").add("A", lambda ctx: 0)
        types.new_type("b", parent="a").add("B", lambda ctx: 0)
        c = types.new_type("c", parent="b")
        assert [v.name for v in c.all_values()] == ["A", "B"]

    def test_find_by_name_and_missing(self):
        types = TypeRegistry()
        t = types.new_type("t")
        t.add("X", lambda ctx: 7)
        assert t.find("X").name == "X"
        with pytest.raises(KeyError):
            t.find("Y")

    def test_duplicate_type_rejected(self):
        types = TypeRegistry()
        types.new_type("t")
        with pytest.raises(ValueError):
            types.new_type("t")

    def test_unknown_type_lookup(self):
        with pytest.raises(KeyError, match="unknown parameter type"):
            TypeRegistry().get("nope")

    def test_decorator_registration(self):
        t = ParamType("t")

        @t.value(exceptional=True)
        def weird_value(ctx):
            return -1

        assert t.find("WEIRD_VALUE").exceptional

    def test_default_types_complete(self):
        types = default_types()
        for name in (
            "buffer", "cstring", "filename", "fileptr", "fd", "handle",
            "dword", "double_val", "char_int", "format_string", "wstring",
        ):
            assert name in types
        assert types.total_values() > 100


class TestGenerator:
    @pytest.fixture()
    def types(self):
        types = TypeRegistry()
        small = types.new_type("small")
        for index in range(3):
            small.add(f"S{index}", lambda ctx, i=index: i)
        big = types.new_type("big")
        for index in range(10):
            big.add(f"B{index}", lambda ctx, i=index: i)
        return types

    def test_combination_count(self, types):
        gen = CaseGenerator(types)
        assert gen.combination_count(make_mut("m", ["small", "big"])) == 30
        assert gen.combination_count(make_mut("m0", [])) == 1

    def test_exhaustive_below_cap(self, types):
        gen = CaseGenerator(types, cap=100)
        cases = list(gen.cases(make_mut("m", ["small", "small"])))
        assert len(cases) == 9
        assert len({c.value_names for c in cases}) == 9
        # Odometer order: last parameter varies fastest.
        assert cases[0].value_names == ("S0", "S0")
        assert cases[1].value_names == ("S0", "S1")

    def test_cap_limits_and_dedups(self, types):
        gen = CaseGenerator(types, cap=20)
        mut = make_mut("m", ["big", "big"])  # 100 combinations
        cases = list(gen.cases(mut))
        assert len(cases) == 20
        assert len({c.value_names for c in cases}) == 20
        assert gen.is_capped(mut)
        assert gen.case_count(mut) == 20

    def test_identical_sequence_across_runs(self, types):
        gen = CaseGenerator(types, cap=15)
        mut = make_mut("SomeCall", ["big", "big"])
        first = [c.value_names for c in gen.cases(mut)]
        second = [c.value_names for c in gen.cases(mut)]
        assert first == second

    def test_identical_sequence_across_generator_instances(self, types):
        mut = make_mut("SomeCall", ["big", "big"])
        a = [c.value_names for c in CaseGenerator(types, cap=15).cases(mut)]
        b = [c.value_names for c in CaseGenerator(types, cap=15).cases(mut)]
        assert a == b

    def test_different_muts_sample_differently(self, types):
        gen = CaseGenerator(types, cap=15)
        a = [c.value_names for c in gen.cases(make_mut("CallA", ["big", "big"]))]
        b = [c.value_names for c in gen.cases(make_mut("CallB", ["big", "big"]))]
        assert a != b

    def test_case_indices_sequential(self, types):
        gen = CaseGenerator(types, cap=10)
        cases = list(gen.cases(make_mut("m", ["big", "big"])))
        assert [c.index for c in cases] == list(range(10))

    def test_resolve_maps_names_back(self, types):
        gen = CaseGenerator(types, cap=10)
        mut = make_mut("m", ["small", "big"])
        case = next(iter(gen.cases(mut)))
        values = gen.resolve(mut, case)
        assert [v.name for v in values] == list(case.value_names)

    def test_describe(self, types):
        gen = CaseGenerator(types, cap=5)
        case = next(iter(gen.cases(make_mut("m", ["small"]))))
        assert case.describe() == "m(S0)"


class TestPaperScaleCounts:
    """Section 3.1: 'Testing was capped at 5000 ... 72 Windows MuTs and
    34 POSIX MuTs were capped at 5000 tests each.'  Our pools are smaller
    than the paper's, so the absolute counts differ; the *structure*
    (many multi-parameter Win32 calls cap, few POSIX ones do) must hold.
    """

    def test_capped_mut_counts_at_paper_cap(self, registry, types):
        gen = CaseGenerator(types, cap=PAPER_CAP)
        win32_capped = [
            m.name for m in registry.by_api("win32") if gen.is_capped(m)
        ]
        posix_capped = [
            m.name for m in registry.by_api("posix") if gen.is_capped(m)
        ]
        assert len(win32_capped) > len(posix_capped)
        assert "CreateFileA" in win32_capped  # 7 parameters
        assert "CreateProcessA" in win32_capped  # 10 parameters
        assert "read" not in posix_capped  # 3 small pools

    def test_total_case_volume_is_substantial(self, registry, types):
        gen = CaseGenerator(types, cap=PAPER_CAP)
        total = sum(gen.case_count(m) for m in registry.by_api("win32"))
        assert total > 100_000  # the paper ran 380k on Win32 at its pools


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        registry = MuTRegistry()
        registry.register(make_mut("x", ["small"] if False else []))
        with pytest.raises(ValueError):
            registry.register(make_mut("x", []))

    def test_find_unique_and_ambiguous(self, registry):
        assert registry.find("GetThreadContext").api == "win32"
        with pytest.raises(KeyError, match="ambiguous"):
            registry.find("rename")  # exists in libc and posix

    def test_facade_call_dispatches(self, nt_ctx):
        call = facade_call("win32", "GetTickCount")
        assert call(nt_ctx, ()) == nt_ctx.machine.clock.tick_count()

    def test_for_variant_counts_match_paper(self, registry):
        from repro.posix.linux import LINUX
        from repro.win32.variants import WIN95, WIN98, WINCE, WINNT

        assert len(registry.for_variant(WIN95)) == 227
        assert len(registry.for_variant(WIN98)) == 237
        assert len(registry.for_variant(WINNT)) == 237
        assert len(registry.for_variant(WINCE)) == 179  # 71 + 108
        assert len(registry.for_variant(LINUX)) == 185  # 91 + 94
