"""Sequence-campaign tests: seeded stateful call-sequence plans, the
``--mode sequence`` campaign loop with sequence-level crash attribution,
deterministic fault-injection families with failure-atomicity checking,
and the triage path from a crashed sequence row back to a minimal
standalone reproducer."""

import json
import os

import pytest

from repro.analysis.tables import render_sequence_table, render_table1
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.crash_scale import CaseCode
from repro.core.generator import CaseGenerator
from repro.core.mut import default_registry
from repro.core.parallel import ParallelCampaign
from repro.core.results import ResultSet
from repro.core.results_io import (
    CampaignCheckpoint,
    checkpoint_from_dict,
    checkpoint_plan,
    checkpoint_to_dict,
    load_checkpoint,
    load_results,
    results_from_dict,
    results_to_dict,
    save_results,
)
from repro.core.sequences import (
    SEQUENCE_API,
    SequencePlan,
    SequencePlanner,
    SequenceStep,
    run_variant_sequences,
    sequence_name,
)
from repro.core.supervisor import SupervisedCampaign, SupervisorPolicy
from repro.core.types import default_types
from repro.obs import (
    MemoryRecorder,
    MetricsAggregator,
    render_stats,
    strip_wall,
    variant_stream,
)
from repro.sim.faults import FAULT_FAMILIES
from repro.sim.machine import Machine
from repro.triage import (
    minimize_crash_sequence,
    minimize_from_sequence_record,
    render_repro_program,
    replay_sequence,
    steps_from_sequence_record,
)
from repro.win32.variants import WIN98, WINNT

SUBSET = ["GetThreadContext", "CloseHandle", "strcpy", "isalpha", "fclose"]
JOBS = int(os.environ.get("BALLISTA_JOBS", "2"))
DEADLINE = float(os.environ.get("BALLISTA_TEST_DEADLINE", "5.0"))
FAST = dict(backoff_base=0.05, backoff_max=0.2)

#: Silently corrupts the shared arena on win98 (PASS_NO_ERROR); the
#: fourth cumulative hit exceeds win98's corruption tolerance of 3.
CORRUPTING = SequenceStep("libc", "strncpy", ("PTR_FREED", "STR_SHORT", "SIZE_16"))
#: Same MuT, harmless values.
BENIGN = SequenceStep("libc", "strncpy", ("PTR_PAGE", "STR_SHORT", "SIZE_16"))
#: Crashes win98 immediately, in any state.
IMMEDIATE = SequenceStep("win32", "GetThreadContext", ("TH_CURRENT", "PTR_NULL"))
#: Under an armed "handles" fault the call creates the file node, then
#: fails inserting the handle -- a failed call that left wear residue.
ATOMIC = SequenceStep(
    "win32",
    "CreateFileA",
    (
        "FN_MISSING",
        "AM_WRITE",
        "SM_ZERO",
        "SA_NULL",
        "CD_CREATE_NEW",
        "FA_NORMAL",
        "H_NULL",
    ),
)


def seq_config(**overrides):
    base = dict(
        cap=40, mode="sequence", sequences=12, sequence_length=5, sequence_seed=7
    )
    base.update(overrides)
    return CampaignConfig(**base)


def dumps(results: ResultSet) -> str:
    return json.dumps(results_to_dict(results), separators=(",", ":"))


def make_plan(steps, index=0, fault_family=None, fault_step=None, registry=None):
    registry = registry or default_registry()
    muts = tuple(registry.get(s.api, s.mut_name) for s in steps)
    return SequencePlan(
        sequence_name(index), index, tuple(steps), muts, fault_family, fault_step
    )


def run_plans(personality, plans, config=None, recorder=None):
    """Drive hand-built plans through the real sequence-campaign loop."""
    config = config or CampaignConfig(cap=40, mode="sequence")
    generator = CaseGenerator(default_types(), cap=config.cap)
    checkpoint = CampaignCheckpoint(
        ResultSet(), cap=config.cap, variants=[personality.key]
    )
    run_variant_sequences(
        personality,
        list(plans),
        generator,
        config,
        checkpoint.results,
        None,
        checkpoint,
        None,
        1,
        recorder=recorder,
    )
    return checkpoint.results


def subset_pool(personality):
    return [
        m
        for m in default_registry().for_variant(personality)
        if m.name in SUBSET
    ]


# ----------------------------------------------------------------------
# The planner: seeded, pure, and order-independent
# ----------------------------------------------------------------------


class TestPlanner:
    def _planner(self, count=20, length=5, seed=7, pool=None):
        return SequencePlanner(
            pool if pool is not None else subset_pool(WIN98),
            CaseGenerator(default_types(), cap=40),
            count,
            length,
            seed=seed,
        )

    def test_same_seed_plans_identical(self):
        assert self._planner().plans() == self._planner().plans()

    def test_plan_is_pure_and_order_free(self):
        planner = self._planner()
        plans = planner.plans()
        # Any index, any order, any number of times: same plan.
        assert planner.plan(13) == plans[13]
        assert planner.plan(0) == plans[0]
        # Pool construction order cannot perturb the plans.
        reversed_pool = list(reversed(subset_pool(WIN98)))
        assert self._planner(pool=reversed_pool).plans() == plans

    def test_seed_changes_plans(self):
        assert self._planner(seed=7).plans() != self._planner(seed=8).plans()

    def test_fault_decisions_are_well_formed(self):
        plans = self._planner(count=60).plans()
        armed = [p for p in plans if p.fault_family is not None]
        # Roughly 2/3 of sequences arm a fault.
        assert 0.4 < len(armed) / len(plans) < 0.9
        for plan in armed:
            assert plan.fault_family in FAULT_FAMILIES
            assert 0 <= plan.fault_step < len(plan.steps)
        assert any(p.fault_family is None for p in plans)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="empty MuT pool"):
            self._planner(pool=[]).plan(0)
        with pytest.raises(ValueError, match="unknown fault family"):
            SequencePlanner(
                subset_pool(WIN98),
                CaseGenerator(default_types(), cap=40),
                1,
                3,
                fault_families=("cosmic-rays",),
            )
        with pytest.raises(ValueError, match="length must be >= 1"):
            self._planner(length=0)


# ----------------------------------------------------------------------
# The campaign loop: determinism, parallel byte-identity, resume
# ----------------------------------------------------------------------


class TestSequenceCampaign:
    def test_serial_runs_are_deterministic(self):
        first = Campaign([WIN98, WINNT], config=seq_config(), muts=SUBSET).run()
        second = Campaign([WIN98, WINNT], config=seq_config(), muts=SUBSET).run()
        assert dumps(first) == dumps(second)
        rows = first.for_variant("win98")
        assert len(rows) == seq_config().sequences
        assert all(r.api == SEQUENCE_API for r in rows)
        assert all(r.sequence is not None for r in rows)
        for row in rows:
            assert 1 <= len(row.codes) <= seq_config().sequence_length
            assert row.sequence["step_ticks"] == sorted(row.sequence["step_ticks"])

    def test_sequence_rows_stay_out_of_table1(self):
        results = Campaign([WIN98], config=seq_config(), muts=SUBSET).run()
        assert "seq0" not in render_table1(results)
        assert "seq00000" in render_sequence_table(results)

    def test_parallel_and_sharded_byte_identical(self):
        config = seq_config(sequences=10, sequence_length=4)
        serial = Campaign([WIN98, WINNT], config=config, muts=SUBSET).run()
        jobs = ParallelCampaign(
            [WIN98, WINNT], config=config, muts=SUBSET, jobs=JOBS
        ).run()
        sharded = ParallelCampaign(
            [WIN98, WINNT], config=config, muts=SUBSET, jobs=JOBS, shards=2
        ).run()
        assert dumps(jobs) == dumps(serial)
        assert dumps(sharded) == dumps(serial)
        assert render_sequence_table(sharded) == render_sequence_table(serial)

    def test_interrupted_run_resumes_byte_identical(self, tmp_path):
        class _Interrupt(Exception):
            pass

        config = seq_config()
        uninterrupted = Campaign([WIN98, WINNT], config=config, muts=SUBSET).run()

        path = tmp_path / "sequence.ckpt"
        executed_first = []

        def die_mid_campaign(variant, mut, position, total):
            if len(executed_first) == 15:
                raise _Interrupt()
            executed_first.append((variant, mut))

        with pytest.raises(_Interrupt):
            Campaign([WIN98, WINNT], config=config, muts=SUBSET).run(
                progress=die_mid_campaign,
                checkpoint_path=path,
                checkpoint_every=1,
            )
        assert path.exists()

        executed_second = []
        resumed = Campaign([WIN98, WINNT], config=config, muts=SUBSET).run(
            progress=lambda v, m, p, t: executed_second.append((v, m)),
            checkpoint_path=path,
            checkpoint_every=1,
            resume=path,
        )
        assert dumps(resumed) == dumps(uninterrupted)
        assert not (set(executed_second) & set(executed_first))
        assert executed_second, "the resumed run must finish the plan"
        assert load_checkpoint(path).complete is True

    def test_muts_subset_restricts_sequence_pool(self):
        results = Campaign([WIN98], config=seq_config(), muts=SUBSET).run()
        called = {
            step["mut"]
            for row in results.for_variant("win98")
            for step in row.sequence["steps"]
        }
        assert called <= set(SUBSET)


# ----------------------------------------------------------------------
# Fault injection and failure atomicity
# ----------------------------------------------------------------------


class TestFaultAtomicity:
    def test_run_step_reclassifies_residue_under_fault(self):
        from repro.core.context import TestContext
        from repro.core.executor import Executor
        from repro.core.generator import TestCase

        registry = default_registry()
        machine = Machine(WIN98)
        ctx = TestContext(machine, machine.spawn_process())
        executor = Executor(machine, CaseGenerator(default_types(), cap=40))
        mut = registry.get("win32", "CreateFileA")
        case = TestCase(mut.name, 0, ATOMIC.value_names)
        machine.faults.arm("handles")
        try:
            outcome = executor.run_step(ctx, mut, case, inject_fault=True)
        finally:
            machine.faults.disarm()
        assert outcome.code is CaseCode.FAULT_ATOMICITY
        assert outcome.code.is_failure
        assert "wear residue" in outcome.detail
        assert "handles exhaustion" in outcome.detail

    def test_violation_ends_sequence_and_is_observable(self):
        recorder = MemoryRecorder()
        plan = make_plan([ATOMIC, BENIGN], fault_family="handles", fault_step=0)
        results = run_plans(WIN98, [plan], recorder=recorder)
        row = results.get("win98", "seq00000", api=SEQUENCE_API)
        assert row.codes[0] == CaseCode.FAULT_ATOMICITY
        # A failure-atomicity violation is a failure: the sequence ends
        # there, the second step never runs.
        assert len(row.codes) == 1
        seq = row.sequence
        assert seq["fault"] == {"family": "handles", "step": 0, "fired": 1}
        assert seq["first_failure"] == 0
        assert seq["crash_step"] is None

        kinds = [r["kind"] for r in recorder.records]
        assert "fault_injected" in kinds
        assert "atomicity_violation" in kinds

        agg = MetricsAggregator()
        for record in recorder.records:
            agg.record(record)
        snap = agg.snapshot()
        assert snap["sequences"]["win98"]["atomicity_violations"] == 1
        assert snap["sequences"]["win98"]["faults_injected"] == 1
        assert snap["faults_by_family"] == {"handles": 1}
        assert "atomic" in render_stats(snap)

        table = render_sequence_table(results)
        assert "Atomicity" in table

    def test_unfired_fault_is_recorded_unfired(self):
        # An armed "disk" fault never fires inside an isalpha call --
        # the window wraps a call that allocates nothing on disk.
        step = SequenceStep("libc", "isalpha", ("CHAR_A",))
        registry = default_registry()
        mut = registry.get("libc", "isalpha")
        values = tuple(
            pool[0].name
            for pool in CaseGenerator(default_types(), cap=40).pools(mut)
        )
        step = SequenceStep("libc", "isalpha", values)
        plan = make_plan([step, step], fault_family="disk", fault_step=1)
        results = run_plans(WIN98, [plan])
        row = results.get("win98", "seq00000", api=SEQUENCE_API)
        assert len(row.codes) == 2
        assert row.sequence["fault"]["fired"] == 0


# ----------------------------------------------------------------------
# Crash attribution
# ----------------------------------------------------------------------


class TestAttribution:
    def test_immediate_crash_classifies_as_origin(self):
        plan = make_plan([BENIGN, BENIGN, IMMEDIATE, BENIGN])
        results = run_plans(WIN98, [plan])
        row = results.get("win98", "seq00000", api=SEQUENCE_API)
        assert row.codes[2] == CaseCode.CATASTROPHIC
        assert len(row.codes) == 3  # the trailing step never ran
        seq = row.sequence
        assert seq["crash_step"] == 2
        assert seq["first_failure"] == 2
        assert seq["classification"] == "origin"
        assert seq["origin_step"] == 2
        assert len(seq["step_ticks"]) == len(row.codes)
        assert not row.interference_crash

    def test_accumulated_corruption_classifies_as_propagated(self):
        plan = make_plan([CORRUPTING] * 5)
        results = run_plans(WIN98, [plan])
        row = results.get("win98", "seq00000", api=SEQUENCE_API)
        seq = row.sequence
        # Corrupting calls pass silently; the fourth exceeds win98's
        # tolerance of 3 and the machine goes down.
        assert seq["crash_step"] == 3
        assert seq["classification"] == "propagated"
        assert seq["origin_step"] == 0
        assert row.interference_crash

    def test_clean_mode_reboots_between_sequences(self):
        # Two sequences of two corrupting calls each: 2 + 2 would crash
        # on one machine (tolerance 3), but each sequence starts from a
        # fresh boot, so neither does.
        plans = [
            make_plan([CORRUPTING, CORRUPTING], index=i) for i in range(2)
        ]
        results = run_plans(WIN98, plans)
        for row in results.for_variant("win98"):
            assert CaseCode.CATASTROPHIC not in row.codes

    def test_dirty_machine_accumulates_wear_across_sequences(self):
        config = CampaignConfig(cap=40, mode="sequence", dirty_machine=True)
        plans = [
            make_plan([CORRUPTING] * 3, index=0),
            make_plan([CORRUPTING, BENIGN], index=1),
        ]
        results = run_plans(WIN98, plans, config=config)
        first = results.get("win98", "seq00000", api=SEQUENCE_API)
        second = results.get("win98", "seq00001", api=SEQUENCE_API)
        assert CaseCode.CATASTROPHIC not in first.codes
        # The same step that passed three times in sequence 0 crashes at
        # step 0 of sequence 1, on the wear sequence 0 left behind.
        assert second.sequence["crash_step"] == 0
        assert second.sequence["classification"] == "propagated"
        # Crashed dirty rows record their starting wear for replay.
        assert "base_wear" not in (first.sequence or {})
        assert second.sequence["base_wear"]


# ----------------------------------------------------------------------
# Triage satellites: minimisation and step timestamps
# ----------------------------------------------------------------------


class TestMinimize:
    def test_multiple_independent_crashes_minimize_to_one(self):
        steps = [BENIGN, IMMEDIATE, BENIGN, IMMEDIATE, BENIGN]
        minimal = minimize_crash_sequence(WIN98, steps, shared_process=True)
        assert minimal == [IMMEDIATE]
        # The historical per-step isolation regime agrees.
        assert minimize_crash_sequence(WIN98, steps) == [IMMEDIATE]

    def test_dirty_wear_only_crash_needs_base_wear(self):
        worn = Machine(WIN98)
        for _ in range(3):
            worn.note_corruption("strncpy")
        base = worn.wear_state()
        steps = [CORRUPTING, BENIGN]
        clean = replay_sequence(WIN98, steps, shared_process=True)
        assert not clean.crashed
        dirty = replay_sequence(
            WIN98, steps, shared_process=True, base_wear=base
        )
        assert dirty.crashed and dirty.crash_step == 0
        minimal = minimize_crash_sequence(
            WIN98, steps, shared_process=True, base_wear=base
        )
        assert minimal == [CORRUPTING]

    def test_minimize_from_campaign_record(self):
        plan = make_plan([BENIGN, IMMEDIATE, BENIGN])
        results = run_plans(WIN98, [plan])
        record = results.get("win98", "seq00000", api=SEQUENCE_API).sequence
        minimal = minimize_from_sequence_record(WIN98, record)
        assert len(minimal) == 1
        assert minimal[0].mut_name == "GetThreadContext"
        program = render_repro_program(WIN98, minimal)
        assert "GetThreadContext(GetCurrentThread()" in program

    def test_record_round_trip_keeps_fault_on_its_step(self):
        plan = make_plan([BENIGN, ATOMIC], fault_family="alloc", fault_step=1)
        results = run_plans(WIN98, [plan])
        record = results.get("win98", "seq00000", api=SEQUENCE_API).sequence
        steps = steps_from_sequence_record(record)
        assert steps[0].fault_family is None
        assert steps[1].fault_family == "alloc"

    def test_minimize_refuses_crash_free_record(self):
        plan = make_plan([BENIGN, BENIGN])
        results = run_plans(WIN98, [plan])
        record = results.get("win98", "seq00000", api=SEQUENCE_API).sequence
        with pytest.raises(ValueError, match="no Catastrophic step"):
            minimize_from_sequence_record(WIN98, record)

    def test_step_ticks_recorded_per_executed_step(self):
        for shared in (False, True):
            outcome = replay_sequence(
                WIN98, [BENIGN, BENIGN, BENIGN], shared_process=shared
            )
            assert len(outcome.step_ticks) == 3
            assert all(t > 0 for t in outcome.step_ticks)
            assert outcome.step_ticks == sorted(outcome.step_ticks)


# ----------------------------------------------------------------------
# Supervised resilience: SIGKILL a worker mid-sequence
# ----------------------------------------------------------------------


class TestResilienceDrill:
    def test_sigkilled_worker_resumes_byte_identical(
        self, tmp_path, monkeypatch
    ):
        """The acceptance bar: SIGKILL a worker in the middle of a
        sequence; the supervisor relaunches it and results, attribution
        table, checkpoint bytes, and stripped event streams all match a
        serial run -- while the restart stays visible in repro stats."""
        variants = [WIN98, WINNT]
        serial_ckpt = tmp_path / "serial.json"
        serial_recorder = MemoryRecorder()
        serial = Campaign(variants, config=seq_config(), muts=SUBSET).run(
            checkpoint_path=serial_ckpt, recorder=serial_recorder
        )

        marker = tmp_path / "killed-once"
        monkeypatch.setenv(
            "BALLISTA_FAULT_KILL", f"win98|seq:seq00002|0|{marker}"
        )
        sup_ckpt = tmp_path / "supervised.json"
        recorder = MemoryRecorder()
        sup = SupervisedCampaign(
            variants,
            config=seq_config(),
            muts=SUBSET,
            jobs=JOBS,
            policy=SupervisorPolicy(mut_deadline=DEADLINE, **FAST),
        )
        supervised = sup.run(checkpoint_path=sup_ckpt, recorder=recorder)

        assert marker.exists(), "the fault never fired"
        assert dumps(supervised) == dumps(serial)
        assert render_sequence_table(supervised) == render_sequence_table(serial)
        assert sup_ckpt.read_bytes() == serial_ckpt.read_bytes()
        assert "restart" in [e["event"] for e in sup.supervision_log]

        # The healed deterministic event streams match the serial ones.
        for personality in variants:
            key = personality.key
            healed = [
                strip_wall(r) for r in variant_stream(recorder.records, key)
            ]
            reference = [
                strip_wall(r)
                for r in variant_stream(serial_recorder.records, key)
            ]
            assert healed == reference

        # repro stats sees both the restart and the sequence campaign.
        agg = MetricsAggregator()
        for record in recorder.records:
            agg.record(record)
        snap = agg.snapshot()
        assert snap["ops"]["worker_restarts"] >= 1
        assert snap["sequences"]["win98"]["sequences"] == seq_config().sequences
        report = render_stats(snap)
        assert "seqs" in report
        assert "restarted" in report


# ----------------------------------------------------------------------
# Persistence and aggregation
# ----------------------------------------------------------------------


class TestPersistence:
    def test_results_v3_round_trip_preserves_sequence_rows(self, tmp_path):
        results = Campaign(
            [WIN98], config=seq_config(sequences=6), muts=SUBSET
        ).run()
        document = results_to_dict(results)
        assert document["version"] == 3
        assert dumps(results_from_dict(document)) == dumps(results)
        path = tmp_path / "seq.json"
        save_results(results, path)
        loaded = load_results(path)
        assert dumps(loaded) == dumps(results)
        row = loaded.for_variant("win98")[0]
        assert row.sequence["length"] == seq_config().sequence_length

    def test_aggregator_dedupes_restart_replays(self):
        finished = {
            "kind": "sequence_finished",
            "variant": "win98",
            "sequence": "seq00004",
            "crash_step": 2,
            "classification": "origin",
        }
        fault = {
            "kind": "fault_injected",
            "variant": "win98",
            "sequence": "seq00004",
            "step": 1,
            "family": "alloc",
        }
        agg = MetricsAggregator()
        for record in (finished, fault, finished, fault):
            agg.record(dict(record))
        snap = agg.snapshot()
        assert snap["sequences"]["win98"]["sequences"] == 1
        assert snap["sequences"]["win98"]["crashed"] == 1
        assert snap["sequences"]["win98"]["origin"] == 1
        assert snap["sequences"]["win98"]["faults_injected"] == 1
        assert snap["faults_by_family"] == {"alloc": 1}

    def test_checkpoint_v3_records_the_sequence_plan(self, tmp_path):
        path = tmp_path / "seq.ckpt"
        config = seq_config(sequences=4)
        Campaign([WIN98], config=config, muts=SUBSET).run(
            checkpoint_path=path, checkpoint_every=1
        )
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["version"] == 3
        assert document["plan"] == {
            "mode": "sequence",
            "sequences": 4,
            "sequence_length": config.sequence_length,
            "sequence_seed": config.sequence_seed,
            "dirty_machine": False,
            "fault_families": list(FAULT_FAMILIES),
        }
        assert checkpoint_from_dict(document).plan == document["plan"]
        # Per-case documents stay plan-free: for them the v3 bump only
        # changes the version number.
        case = checkpoint_to_dict(CampaignCheckpoint(ResultSet(), cap=10))
        assert "plan" not in case
        assert checkpoint_plan(CampaignConfig(cap=10)) is None

    def test_resume_refuses_plan_mismatch(self, tmp_path):
        path = tmp_path / "seq.ckpt"
        Campaign([WIN98], config=seq_config(sequences=4), muts=SUBSET).run(
            checkpoint_path=path, checkpoint_every=1
        )
        other = Campaign(
            [WIN98],
            config=seq_config(sequences=4, sequence_seed=99),
            muts=SUBSET,
        )
        with pytest.raises(ValueError, match="campaign plan"):
            other.run(resume=path)


# ----------------------------------------------------------------------
# CLI entry points
# ----------------------------------------------------------------------


class TestCli:
    def test_sequence_mode_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "seq-results.json"
        code = main(
            [
                "--mode",
                "sequence",
                "--sequences",
                "4",
                "--sequence-length",
                "3",
                "--variants",
                "win98",
                "--jobs",
                "1",
                "--quiet",
                "--save",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sequence" in out
        loaded = load_results(path)
        rows = loaded.for_variant("win98")
        assert len(rows) == 4
        assert all(r.api == SEQUENCE_API for r in rows)

    def test_leaks_subcommand(self, capsys):
        from repro.cli import main

        code = main(
            [
                "leaks",
                "--variant",
                "win98",
                "--muts",
                "CreateFileA,fopen",
                "--cap",
                "40",
            ]
        )
        assert code == 0
        assert "Resource-leak audit" in capsys.readouterr().out

    def test_minimize_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        plan = make_plan([BENIGN, IMMEDIATE])
        results = run_plans(WIN98, [plan])
        path = tmp_path / "crashed.json"
        save_results(results, path)
        code = main(["minimize", str(path), "--variant", "win98", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "minimal step" in out
        assert "GetThreadContext" in out

    def test_bare_resume_adopts_sequence_plan(self, tmp_path, capsys):
        from repro.cli import main

        ckpt = tmp_path / "seq.ckpt"
        argv = [
            "--mode",
            "sequence",
            "--sequences",
            "4",
            "--sequence-length",
            "3",
            "--variants",
            "win98",
            "--quiet",
            "--checkpoint",
            str(ckpt),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        # No mode flags at all: the resumed run must adopt the
        # checkpoint's plan and render the sequence tables instead of
        # reinterpreting the document as a per-case campaign.
        assert main(["--resume", str(ckpt), "--quiet"]) == 0
        assert capsys.readouterr().out == first

    def test_sequence_mode_refuses_case_checkpoint(self, tmp_path, capsys):
        from repro.cli import main

        ckpt = tmp_path / "case.ckpt"
        argv = [
            "--variants",
            "win98",
            "--cap",
            "5",
            "--tables",
            "table1",
            "--quiet",
            "--checkpoint",
            str(ckpt),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as err:
            main(["--resume", str(ckpt), "--mode", "sequence"])
        assert err.value.code == 2
