"""The acceptance drill for ``repro lint``: inject one violation of each
rule -- the five per-file rules and the four interprocedural ones -- into
a copy of the tree and prove ``repro lint --fail-on-new`` catches every
one.

Each test copies ``src/repro`` into a scratch directory, applies exactly
one doctoring, and runs the real CLI as a subprocess with ``PYTHONPATH``
pointing at the doctored tree -- the same invocation CI uses, against
the same committed (empty) baseline semantics.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import subprocess
import sys
import textwrap

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


@pytest.fixture()
def doctored_src(tmp_path):
    """A private copy of src/ that a test may freely vandalise."""
    target = tmp_path / "src"
    shutil.copytree(SRC / "repro", target / "repro")
    return target


def run_lint(src_root, *extra):
    env = {**os.environ, "PYTHONPATH": str(src_root)}
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--fail-on-new", *extra],
        env=env,
        cwd=src_root.parent,  # no committed baseline in scope -> empty
        capture_output=True,
        text=True,
        timeout=120,
    )


def edit(src_root, rel, old, new):
    path = src_root / "repro" / rel
    text = path.read_text(encoding="utf-8")
    assert old in text, f"injection anchor missing from {rel}"
    path.write_text(text.replace(old, new), encoding="utf-8")


def append(src_root, rel, code):
    path = src_root / "repro" / rel
    with path.open("a", encoding="utf-8") as fh:
        fh.write("\n\n" + textwrap.dedent(code).strip() + "\n")


def assert_caught(proc, rule, code):
    assert proc.returncode == 1, (
        f"lint should have failed on the injected {code} violation\n"
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert rule in proc.stdout
    assert code in proc.stdout


def test_clean_copy_passes(doctored_src):
    proc = run_lint(doctored_src)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_unregistered_param_type_is_caught(doctored_src):
    edit(
        doctored_src,
        "win32/registration.py",
        '("VirtualLock", GROUP_MEMORY, ["buffer", "size"]),',
        '("VirtualLock", GROUP_MEMORY, ["buffer_xl", "size"]),',
    )
    proc = run_lint(doctored_src)
    assert_caught(proc, "registry-contract", "RC-TYPE")
    assert "buffer_xl" in proc.stdout


def test_wallclock_in_core_is_caught(doctored_src):
    append(
        doctored_src,
        "core/classify.py",
        """
        def _injected_timestamp():
            import time

            return time.time()
        """,
    )
    proc = run_lint(doctored_src)
    assert_caught(proc, "determinism", "DET-WALLCLOCK")
    assert "repro/core/classify.py" in proc.stdout


def test_real_open_in_mut_impl_is_caught(doctored_src):
    append(
        doctored_src,
        "win32/file_api.py",
        """
        def _injected_escape(path):
            return open(path, "rb").read()
        """,
    )
    proc = run_lint(doctored_src)
    assert_caught(proc, "sim-isolation", "ISO-BUILTIN")
    assert "repro/win32/file_api.py" in proc.stdout


def test_unbumped_serialized_field_is_caught(doctored_src):
    anchor = "supervision: list[dict] = field(default_factory=list)"
    edit(
        doctored_src,
        "core/results_io.py",
        anchor,
        anchor + "\n    injected_field: int = 0",
    )
    proc = run_lint(doctored_src)
    assert_caught(proc, "serialization-version", "SER-DRIFT")
    assert "injected_field" in proc.stdout
    assert "CHECKPOINT_VERSION" in proc.stdout


def test_bare_except_is_caught(doctored_src):
    append(
        doctored_src,
        "core/campaign.py",
        """
        def _injected_swallow(fn):
            try:
                return fn()
            except:
                return None
        """,
    )
    proc = run_lint(doctored_src)
    assert_caught(proc, "exception-discipline", "EXC-BARE")


def test_injection_report_artifact_shape(doctored_src, tmp_path):
    """The CI artifact for a failing run names the injected violation."""
    append(
        doctored_src,
        "core/campaign.py",
        """
        def _injected_swallow(fn):
            try:
                return fn()
            except:
                return None
        """,
    )
    report = tmp_path / "lint-report.json"
    proc = run_lint(doctored_src, "--report", str(report))
    assert proc.returncode == 1
    doc = json.loads(report.read_text())
    assert doc["summary"]["new"] == 1
    (finding,) = doc["findings"]
    assert finding["code"] == "EXC-BARE"
    assert finding["new"] is True


def test_perf_counter_in_core_is_caught(doctored_src):
    """The obs/ allowance must not leak: time.perf_counter anywhere in a
    deterministic package outside obs/ is still a violation."""
    append(
        doctored_src,
        "core/classify.py",
        """
        def _injected_perf_read():
            import time

            return time.perf_counter()
        """,
    )
    proc = run_lint(doctored_src)
    assert_caught(proc, "determinism", "DET-WALLCLOCK")
    assert "repro/core/classify.py" in proc.stdout


def test_perf_counter_in_obs_is_allowed(doctored_src):
    """The WALLCLOCK_ALLOWANCES manifest grants obs/ exactly
    time.perf_counter -- a recorder stamping telemetry records must
    lint clean without a pragma."""
    append(
        doctored_src,
        "obs/recorder.py",
        """
        def _injected_extra_stamp():
            import time

            return time.perf_counter()
        """,
    )
    proc = run_lint(doctored_src)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_absolute_wallclock_in_obs_is_caught(doctored_src):
    """The allowance is per call, not per package: absolute time.time
    in obs/ (a calendar timestamp leaking into event files) still
    fails."""
    append(
        doctored_src,
        "obs/events.py",
        """
        def _injected_calendar_read():
            import time

            return time.time()
        """,
    )
    proc = run_lint(doctored_src)
    assert_caught(proc, "determinism", "DET-WALLCLOCK")
    assert "repro/obs/events.py" in proc.stdout


# ----------------------------------------------------------------------
# Interprocedural rules (the call-graph engine)
# ----------------------------------------------------------------------


def test_propagated_wallclock_is_caught(doctored_src):
    """A clean core/ wrapper around a dirty service/ helper: the per-file
    determinism rule cannot see it, the propagation rule must."""
    append(
        doctored_src,
        "service/serial.py",
        """
        def _injected_wall_helper():
            import time

            return time.time()
        """,
    )
    append(
        doctored_src,
        "core/campaign.py",
        """
        def _injected_label():
            from repro.service.serial import _injected_wall_helper

            return _injected_wall_helper()
        """,
    )
    proc = run_lint(doctored_src)
    assert_caught(proc, "determinism-propagation", "DET-PROPAGATED")
    assert "repro/core/campaign.py" in proc.stdout
    # The finding names the true origin two hops away.
    assert "repro/service/serial.py" in proc.stdout


def test_unlocked_cross_thread_mutation_is_caught(doctored_src):
    """_readable runs on the selector network thread; _plan_cache is also
    written from the scheduler thread (under the lock, via _plan_keys).
    An unlocked mutation from the network side is the exact race class
    the rule exists for."""
    edit(
        doctored_src,
        "service/server.py",
        "    def _readable(self, conn: _ServiceConnection) -> None:\n"
        "        try:",
        "    def _readable(self, conn: _ServiceConnection) -> None:\n"
        "        self._plan_cache.clear()\n"
        "        try:",
    )
    proc = run_lint(doctored_src)
    assert_caught(proc, "concurrency-contract", "CONC-CROSS-THREAD")
    assert "_plan_cache" in proc.stdout
    assert "repro/service/server.py" in proc.stdout


def test_lambda_in_spawn_args_is_caught(doctored_src):
    """The spawn context pickles Process args into the worker; a lambda
    smuggled into the payload dies at spawn time in production."""
    edit(
        doctored_src,
        "core/parallel.py",
        "target=_variant_worker, args=(spec, events), daemon=True",
        "target=_variant_worker, args=(spec, events, (lambda: None)), daemon=True",
    )
    proc = run_lint(doctored_src)
    assert_caught(proc, "pickle-safety", "PICKLE-UNSAFE")
    assert "repro/core/parallel.py" in proc.stdout


def test_out_of_band_wear_mutation_is_caught(doctored_src):
    """Rewinding the simulated clock between shard seams falsifies the
    recorded wear fingerprint; only the sanctioned wear API may move
    machine state."""
    append(
        doctored_src,
        "core/sequences.py",
        """
        def _injected_rewind(machine):
            machine.clock.ticks = 0
        """,
    )
    proc = run_lint(doctored_src)
    assert_caught(proc, "wear-escape", "WEAR-ESCAPE")
    assert "machine.clock.ticks" in proc.stdout
    assert "repro/core/sequences.py" in proc.stdout


def test_machine_import_in_pool_layer_is_caught(doctored_src):
    """The memoized plan/value pools are shared across every variant and
    shard; importing the machine layer into them couples the caches to
    per-variant state and is banned by the POOL_PURITY manifest."""
    append(
        doctored_src,
        "core/generator.py",
        """
        from repro.sim.machine import Machine

        def _injected_pool_key(machine: Machine) -> str:
            return machine.personality.key
        """,
    )
    proc = run_lint(doctored_src)
    assert_caught(proc, "determinism", "DET-POOL-IMPORT")
    assert "repro/core/generator.py" in proc.stdout


def test_cow_revert_outside_wear_api_scope_is_sanctioned(doctored_src):
    """machine.revert() is part of the sanctioned lifecycle surface (the
    copy-on-write snapshot verb machine_per_case isolation runs
    through): orchestration code calling it must lint clean."""
    append(
        doctored_src,
        "core/sequences.py",
        """
        def _injected_isolation_reset(machine):
            machine.revert()
        """,
    )
    proc = run_lint(doctored_src)
    assert proc.returncode == 0, proc.stdout + proc.stderr
