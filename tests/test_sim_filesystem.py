"""Unit tests for the in-memory filesystem."""

import pytest

from repro.sim.filesystem import FileSystem, FileSystemError, Pipe


@pytest.fixture()
def fs() -> FileSystem:
    filesystem = FileSystem()
    filesystem.mkdir("/tmp")
    return filesystem


@pytest.fixture()
def winfs() -> FileSystem:
    filesystem = FileSystem(case_insensitive=True)
    filesystem.mkdir("/tmp")
    return filesystem


class TestPaths:
    def test_split_normalises_dots(self, fs):
        assert fs.split("/a/./b/../c") == ["a", "c"]

    def test_split_windows_separators(self, winfs):
        assert winfs.split(r"C:\tmp\file.txt") == ["tmp", "file.txt"]

    def test_split_posix_keeps_backslash_as_name(self, fs):
        assert fs.split(r"/tmp/a\b") == ["tmp", "a\\b"]

    def test_case_insensitive_lookup(self, winfs):
        winfs.create_file("/tmp/File.TXT", b"x")
        assert winfs.lookup("/TMP/file.txt") is not None

    def test_case_sensitive_lookup(self, fs):
        fs.create_file("/tmp/File.TXT", b"x")
        assert fs.lookup("/tmp/file.txt") is None


class TestFiles:
    def test_create_and_read_back(self, fs):
        fs.create_file("/tmp/a", b"payload")
        handle = fs.open("/tmp/a")
        assert handle.read(100) == b"payload"

    def test_create_exclusive_conflict(self, fs):
        fs.create_file("/tmp/a")
        with pytest.raises(FileSystemError, match="EEXIST"):
            fs.create_file("/tmp/a", exclusive=True)

    def test_create_overwrites_content(self, fs):
        fs.create_file("/tmp/a", b"one")
        fs.create_file("/tmp/a", b"two")
        assert fs.open("/tmp/a").read(10) == b"two"

    def test_open_missing_raises_enoent(self, fs):
        with pytest.raises(FileSystemError, match="ENOENT"):
            fs.open("/tmp/missing")

    def test_open_create_flag(self, fs):
        handle = fs.open("/tmp/new", writable=True, create=True)
        handle.write(b"x")
        assert fs.lookup("/tmp/new") is not None

    def test_open_directory_is_error(self, fs):
        with pytest.raises(FileSystemError, match="EISDIR"):
            fs.open("/tmp", writable=True)

    def test_write_readonly_file_denied(self, fs):
        node = fs.create_file("/tmp/a")
        node.read_only = True
        with pytest.raises(FileSystemError, match="EACCES"):
            fs.open("/tmp/a", writable=True)

    def test_truncate_on_open(self, fs):
        fs.create_file("/tmp/a", b"longer content")
        fs.open("/tmp/a", writable=True, truncate=True)
        assert fs.open("/tmp/a").read(100) == b""

    def test_unlink(self, fs):
        fs.create_file("/tmp/a")
        fs.unlink("/tmp/a")
        assert fs.lookup("/tmp/a") is None

    def test_unlink_directory_is_eisdir(self, fs):
        fs.mkdir("/tmp/d")
        with pytest.raises(FileSystemError, match="EISDIR"):
            fs.unlink("/tmp/d")


class TestOpenFile:
    def test_seek_set_cur_end(self, fs):
        fs.create_file("/tmp/a", b"0123456789")
        handle = fs.open("/tmp/a")
        assert handle.seek(4, 0) == 4
        assert handle.seek(2, 1) == 6
        assert handle.seek(-1, 2) == 9

    def test_seek_negative_is_einval(self, fs):
        fs.create_file("/tmp/a", b"abc")
        handle = fs.open("/tmp/a")
        with pytest.raises(FileSystemError, match="EINVAL"):
            handle.seek(-1, 0)

    def test_seek_bad_whence(self, fs):
        fs.create_file("/tmp/a")
        with pytest.raises(FileSystemError, match="EINVAL"):
            fs.open("/tmp/a").seek(0, 9)

    def test_write_extends_with_zero_fill(self, fs):
        fs.create_file("/tmp/a", b"ab")
        handle = fs.open("/tmp/a", writable=True)
        handle.seek(5, 0)
        handle.write(b"z")
        assert bytes(fs.lookup("/tmp/a").data) == b"ab\x00\x00\x00z"

    def test_append_mode_always_writes_at_end(self, fs):
        fs.create_file("/tmp/a", b"start")
        handle = fs.open("/tmp/a", writable=True, append=True)
        handle.seek(0, 0)
        handle.write(b"!")
        assert bytes(fs.lookup("/tmp/a").data) == b"start!"

    def test_read_after_close_is_ebadf(self, fs):
        fs.create_file("/tmp/a", b"x")
        handle = fs.open("/tmp/a")
        handle.close()
        with pytest.raises(FileSystemError, match="EBADF"):
            handle.read(1)

    def test_write_without_write_access(self, fs):
        fs.create_file("/tmp/a")
        handle = fs.open("/tmp/a")
        with pytest.raises(FileSystemError, match="EBADF"):
            handle.write(b"x")

    def test_truncate_shrink_and_grow(self, fs):
        fs.create_file("/tmp/a", b"0123456789")
        handle = fs.open("/tmp/a", writable=True)
        handle.truncate(4)
        assert bytes(fs.lookup("/tmp/a").data) == b"0123"
        handle.truncate(6)
        assert bytes(fs.lookup("/tmp/a").data) == b"0123\x00\x00"


class TestDirectories:
    def test_mkdir_and_listdir(self, fs):
        fs.mkdir("/tmp/sub")
        fs.create_file("/tmp/sub/a")
        fs.create_file("/tmp/sub/b")
        assert fs.listdir("/tmp/sub") == ["a", "b"]

    def test_mkdir_existing_is_eexist(self, fs):
        with pytest.raises(FileSystemError, match="EEXIST"):
            fs.mkdir("/tmp")

    def test_mkdir_missing_parent_is_enoent(self, fs):
        with pytest.raises(FileSystemError, match="ENOENT"):
            fs.mkdir("/no/such/dir")

    def test_rmdir_requires_empty(self, fs):
        fs.mkdir("/tmp/sub")
        fs.create_file("/tmp/sub/a")
        with pytest.raises(FileSystemError, match="ENOTEMPTY"):
            fs.rmdir("/tmp/sub")

    def test_rmdir_on_file_is_enotdir(self, fs):
        fs.create_file("/tmp/a")
        with pytest.raises(FileSystemError, match="ENOTDIR"):
            fs.rmdir("/tmp/a")

    def test_listdir_on_file_is_enotdir(self, fs):
        fs.create_file("/tmp/a")
        with pytest.raises(FileSystemError, match="ENOTDIR"):
            fs.listdir("/tmp/a")


class TestRename:
    def test_rename_file(self, fs):
        fs.create_file("/tmp/a", b"data")
        fs.rename("/tmp/a", "/tmp/b")
        assert fs.lookup("/tmp/a") is None
        assert bytes(fs.lookup("/tmp/b").data) == b"data"

    def test_rename_replaces_existing_file(self, fs):
        fs.create_file("/tmp/a", b"new")
        fs.create_file("/tmp/b", b"old")
        fs.rename("/tmp/a", "/tmp/b")
        assert bytes(fs.lookup("/tmp/b").data) == b"new"

    def test_rename_directory_into_itself_rejected(self, fs):
        fs.mkdir("/tmp/d")
        with pytest.raises(FileSystemError, match="EINVAL"):
            fs.rename("/tmp/d", "/tmp/d/inner")

    def test_rename_missing_source(self, fs):
        with pytest.raises(FileSystemError, match="ENOENT"):
            fs.rename("/tmp/missing", "/tmp/x")

    def test_protected_node_cannot_be_renamed(self, fs):
        fs.lookup("/tmp").protected = True
        with pytest.raises(FileSystemError, match="EACCES"):
            fs.rename("/tmp", "/owned")

    def test_protected_node_cannot_be_unlinked(self, fs):
        node = fs.create_file("/tmp/sys")
        node.protected = True
        with pytest.raises(FileSystemError, match="EACCES"):
            fs.unlink("/tmp/sys")

    def test_rename_root_rejected(self, fs):
        with pytest.raises(FileSystemError, match="EBUSY"):
            fs.rename("/", "/other")


class TestPipe:
    def test_fifo_ordering(self):
        pipe = Pipe()
        pipe.write(b"abc")
        pipe.write(b"def")
        assert pipe.read(4) == b"abcd"
        assert pipe.read(10) == b"ef"

    def test_capacity_backpressure(self):
        pipe = Pipe(capacity=4)
        assert pipe.write(b"abcdef") == 4
        assert pipe.read(10) == b"abcd"

    def test_write_after_reader_gone_is_epipe(self):
        pipe = Pipe()
        pipe.read_open = False
        with pytest.raises(FileSystemError, match="EPIPE"):
            pipe.write(b"x")


class TestIterFiles:
    def test_iterates_all_regular_files(self, fs):
        fs.create_file("/tmp/a")
        fs.mkdir("/tmp/sub")
        fs.create_file("/tmp/sub/b")
        paths = [path for path, _ in fs.iter_files()]
        assert "/tmp/a" in paths
        assert "/tmp/sub/b" in paths
