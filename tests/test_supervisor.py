"""Self-healing supervision: a SIGKILLed worker restarts from its shard
into byte-identical output, a worker hung in *real* time (invisible to
the simulated watchdog) is killed and its poison MuT quarantined, and
budget exhaustion fails loudly instead of hanging the campaign."""

import json
import os

import pytest

from repro.analysis.tables import render_table1
from repro.core.campaign import Campaign, CampaignConfig, run_single_case
from repro.core.crash_scale import CaseCode
from repro.core.results import ResultSet
from repro.core.results_io import (
    checkpoint_from_dict,
    checkpoint_to_dict,
    load_checkpoint,
    merge_checkpoints,
    results_from_dict,
    results_to_dict,
    save_checkpoint,
)
from repro.core.supervisor import (
    SupervisedCampaign,
    SupervisorPolicy,
    default_max_mut_retries,
    default_max_restarts,
    default_mut_deadline,
)
from repro.posix.linux import LINUX
from repro.win32.variants import WIN98, WINNT

SUBSET = ["GetThreadContext", "CloseHandle", "strcpy", "isalpha", "fclose"]
JOBS = int(os.environ.get("BALLISTA_JOBS", "2"))

#: Deadline generous enough that spawn + registry rebuild never trips
#: the watchdog on a loaded CI box, short enough to keep tests quick.
DEADLINE = float(os.environ.get("BALLISTA_TEST_DEADLINE", "5.0"))

FAST = dict(backoff_base=0.05, backoff_max=0.2)


def serial_campaign(variants, cap):
    return Campaign(variants, config=CampaignConfig(cap=cap), muts=SUBSET)


def supervised_campaign(variants, cap, policy=None, muts=SUBSET):
    return SupervisedCampaign(
        variants,
        config=CampaignConfig(cap=cap),
        muts=muts,
        jobs=JOBS,
        policy=policy or SupervisorPolicy(mut_deadline=DEADLINE, **FAST),
    )


def dumps(results: ResultSet) -> str:
    return json.dumps(results_to_dict(results), separators=(",", ":"))


# ----------------------------------------------------------------------
# Fault-free supervision: byte-identity and overhead-free pass-through
# ----------------------------------------------------------------------


class TestNoFault:
    def test_supervised_run_byte_identical_to_serial(self):
        variants = [WIN98, WINNT, LINUX]
        serial = serial_campaign(variants, 40).run()
        sup = supervised_campaign(variants, 40)
        supervised = sup.run()
        assert dumps(supervised) == dumps(serial)
        assert render_table1(supervised) == render_table1(serial)
        assert sup.supervision_log == []

    def test_supervised_checkpoint_byte_identical(self, tmp_path):
        variants = [WIN98, LINUX]
        serial_ckpt = tmp_path / "serial.json"
        sup_ckpt = tmp_path / "supervised.json"
        serial_campaign(variants, 30).run(checkpoint_path=serial_ckpt)
        supervised_campaign(variants, 30).run(checkpoint_path=sup_ckpt)
        assert sup_ckpt.read_bytes() == serial_ckpt.read_bytes()

    def test_jobs_one_falls_back_to_serial(self):
        sup = SupervisedCampaign(
            [LINUX], config=CampaignConfig(cap=20), muts=SUBSET, jobs=1
        )
        serial = serial_campaign([LINUX], 20).run()
        assert dumps(sup.run()) == dumps(serial)


# ----------------------------------------------------------------------
# Automatic restart: the CI resilience drill, in-process
# ----------------------------------------------------------------------


class TestWorkerRestart:
    def test_sigkilled_worker_restarts_byte_identical(
        self, tmp_path, monkeypatch
    ):
        """The acceptance bar: SIGKILL one worker mid-variant; the
        supervisor relaunches it from its shard and the final results,
        rendered table, and checkpoint document are byte-for-byte what
        an uninterrupted run produces."""
        variants = [WIN98, WINNT, LINUX]
        serial_ckpt = tmp_path / "serial.json"
        serial = serial_campaign(variants, 40).run(
            checkpoint_path=serial_ckpt
        )
        marker = tmp_path / "killed-once"
        monkeypatch.setenv(
            "BALLISTA_FAULT_KILL", f"winnt|libc:strcpy|3|{marker}"
        )
        sup_ckpt = tmp_path / "supervised.json"
        sup = supervised_campaign(variants, 40)
        supervised = sup.run(checkpoint_path=sup_ckpt)
        assert marker.exists(), "the fault never fired"
        assert dumps(supervised) == dumps(serial)
        assert render_table1(supervised) == render_table1(serial)
        assert sup_ckpt.read_bytes() == serial_ckpt.read_bytes()
        events = [e["event"] for e in sup.supervision_log]
        assert "restart" in events
        assert "quarantine" not in events  # one strike is within budget

    def test_restart_budget_exhaustion_fails_loudly(self, monkeypatch):
        """A kill spec without a marker fires on every attempt; with the
        MuT retry budget out of reach, the variant burns its restart
        budget and the campaign raises instead of looping forever."""
        monkeypatch.setenv("BALLISTA_FAULT_KILL", "linux|libc:strcpy|2")
        policy = SupervisorPolicy(
            mut_deadline=DEADLINE,
            max_restarts=1,
            max_mut_retries=5,
            **FAST,
        )
        sup = supervised_campaign([WIN98, LINUX], 20, policy=policy)
        with pytest.raises(RuntimeError, match="restart budget exhausted"):
            sup.run()
        events = [e["event"] for e in sup.supervision_log]
        assert "budget_exhausted" in events


# ----------------------------------------------------------------------
# Watchdog + quarantine: the poison-MuT path
# ----------------------------------------------------------------------


class TestQuarantine:
    def test_hung_mut_is_quarantined_and_campaign_completes(
        self, tmp_path, monkeypatch
    ):
        """A MuT that hangs its worker in real time on every attempt is
        watchdog-killed, retried, then quarantined; the campaign
        completes with every other MuT's row intact and the quarantined
        MuT footnoted in Table 1."""
        variants = [WIN98, LINUX]
        serial = serial_campaign(variants, 30).run()
        monkeypatch.setenv("BALLISTA_FAULT_HANG", "win98|libc:strcpy|2")
        policy = SupervisorPolicy(mut_deadline=1.5, **FAST)
        sup = supervised_campaign(variants, 30, policy=policy)
        results = sup.run()

        records = results.quarantined_records()
        assert [(r.variant, r.api, r.mut_name) for r in records] == [
            ("win98", "libc", "strcpy")
        ]
        assert results.is_quarantined("win98", "libc", "strcpy")
        assert not results.has("win98", "strcpy", api="libc")
        # Every other row matches the serial run exactly.
        for row in serial:
            if (row.variant, row.api, row.mut_name) == (
                "win98", "libc", "strcpy",
            ):
                continue
            got = results.get(row.variant, row.mut_name, api=row.api)
            assert bytes(got.codes) == bytes(row.codes)
        events = [e["event"] for e in sup.supervision_log]
        assert "watchdog_kill" in events
        assert "quarantine" in events

        table = render_table1(results)
        assert "~Windows 98" in table
        assert "libc:strcpy [win98]" in table
        assert "quarantined MuTs excluded from rates" in table
        # The undisturbed variant is unmarked.
        assert "~Linux" not in table

    def test_quarantine_spec_honoured_by_run_variant(self):
        """The serial loop records a pre-declared quarantine verdict
        without executing the MuT -- the mechanism a restarted worker
        uses to skip its poison MuT."""
        campaign = Campaign(
            [LINUX], config=CampaignConfig(cap=15), muts=SUBSET
        )
        results = campaign.run(
            quarantine={"libc:strcpy": "killed its worker twice"}
        )
        assert results.is_quarantined("linux", "libc", "strcpy")
        assert not results.has("linux", "strcpy", api="libc")
        # The other MuTs ran normally.
        assert results.has("linux", "isalpha", api="libc")
        record = results.quarantined_records()[0]
        assert record.reason == "killed its worker twice"

    def test_quarantine_survives_serialisation_round_trip(self):
        results = ResultSet()
        results.quarantine("win98", "libc", "strcpy", "hung twice")
        document = results_to_dict(results)
        assert document["version"] == 3  # optional key, same format
        restored = results_from_dict(document)
        record = restored.quarantined_records()[0]
        assert (record.variant, record.api, record.mut_name, record.reason) == (
            "win98", "libc", "strcpy", "hung twice",
        )
        # No quarantine -> no key: old documents stay byte-identical.
        assert "quarantined" not in results_to_dict(ResultSet())

    def test_quarantine_is_idempotent_and_merges(self):
        a = ResultSet()
        a.quarantine("win98", "libc", "strcpy", "first reason")
        a.quarantine("win98", "libc", "strcpy", "second reason")
        assert a.quarantined_records()[0].reason == "first reason"
        b = ResultSet()
        b.quarantine("winnt", "win32", "CloseHandle", "other")
        a.merge(b)
        assert [(r.variant, r.mut_name) for r in a.quarantined_records()] == [
            ("win98", "strcpy"), ("winnt", "CloseHandle"),
        ]


# ----------------------------------------------------------------------
# Simulated-hang path: Clock.watchdog_ticks -> TaskHang -> RESTART
# ----------------------------------------------------------------------


class TestSimulatedHang:
    def test_infinite_sleep_classified_restart_in_single_case(self):
        """A MuT that exhausts the *simulated* watchdog budget is a
        Restart failure inside one worker -- no supervisor involved."""
        outcome = run_single_case(WINNT, "win32:Sleep", ["TO_INFINITE"])
        assert outcome.code is CaseCode.RESTART

    def test_simulated_hangs_match_serial_under_supervision(self):
        """TaskHang cases flow through the supervised parallel path as
        ordinary RESTART codes: the wall-clock watchdog must never fire
        for hangs the simulation already catches."""
        muts = ["Sleep", "CloseHandle"]
        variants = [WIN98, WINNT]
        serial = Campaign(
            variants, config=CampaignConfig(cap=25), muts=muts
        ).run()
        sup = SupervisedCampaign(
            variants,
            config=CampaignConfig(cap=25),
            muts=muts,
            jobs=JOBS,
            policy=SupervisorPolicy(mut_deadline=DEADLINE, **FAST),
        )
        supervised = sup.run()
        assert dumps(supervised) == dumps(serial)
        restarts = sum(
            row.count(CaseCode.RESTART) for row in supervised
        )
        assert restarts > 0, "Sleep(TO_INFINITE) should hang the task"
        assert sup.supervision_log == []


# ----------------------------------------------------------------------
# Corrupt-shard quarantine in merge_checkpoints
# ----------------------------------------------------------------------


class TestCorruptShard:
    def _shard(self, variant: str, cap: int):
        campaign = Campaign(
            [LINUX if variant == "linux" else WIN98],
            config=CampaignConfig(cap=cap),
            muts=SUBSET,
        )
        results = campaign.run()
        from repro.core.results_io import CampaignCheckpoint

        return CampaignCheckpoint(
            results, cap=cap, variants=[variant], complete=True
        )

    def test_truncated_shard_is_quarantined_with_warning(self, tmp_path):
        good = self._shard("linux", 15)
        bad_path = tmp_path / "campaign.json.win98.shard"
        bad_path.write_text('{"version": 1, "results"')  # truncated
        with pytest.warns(UserWarning, match=str(bad_path)):
            merged = merge_checkpoints(
                [good, str(bad_path)], cap=15, variants=["linux", "win98"]
            )
        assert not merged.complete
        assert merged.results.variants() == ["linux"]
        assert (tmp_path / "campaign.json.win98.shard.corrupt").exists()
        assert not bad_path.exists()

    def test_missing_shard_path_is_quarantined(self, tmp_path):
        good = self._shard("linux", 15)
        gone = tmp_path / "never-written.shard"
        with pytest.warns(UserWarning, match="never-written"):
            merged = merge_checkpoints([good, gone], cap=15)
        assert not merged.complete
        assert merged.results.variants() == ["linux"]

    def test_healthy_paths_still_merge_complete(self, tmp_path):
        good = self._shard("linux", 15)
        path = tmp_path / "linux.shard"
        save_checkpoint(good, path)
        merged = merge_checkpoints([str(path)], cap=15, variants=["linux"])
        assert merged.complete
        assert merged.results.variants() == ["linux"]


# ----------------------------------------------------------------------
# Supervision log on in-flight checkpoints
# ----------------------------------------------------------------------


class TestSupervisionLog:
    def test_supervision_round_trips_through_checkpoint(self):
        from repro.core.results_io import CampaignCheckpoint

        ckpt = CampaignCheckpoint(
            ResultSet(),
            cap=10,
            supervision=[{"event": "restart", "variant": "win98"}],
        )
        document = checkpoint_to_dict(ckpt)
        assert document["version"] == 3  # optional key, same format
        restored = checkpoint_from_dict(document)
        assert restored.supervision == [
            {"event": "restart", "variant": "win98"}
        ]
        # Empty log -> no key: undisturbed documents stay byte-identical.
        clean = checkpoint_to_dict(CampaignCheckpoint(ResultSet(), cap=10))
        assert "supervision" not in clean

    def test_final_checkpoint_carries_no_supervision_after_faults(
        self, tmp_path, monkeypatch
    ):
        """Mid-run checkpoints record the fault history; the *final*
        document must not, or a healed run would differ from a clean
        one."""
        marker = tmp_path / "killed-once"
        monkeypatch.setenv(
            "BALLISTA_FAULT_KILL", f"linux|libc:strcpy|2|{marker}"
        )
        path = tmp_path / "campaign.json"
        sup = supervised_campaign([WIN98, LINUX], 25)
        sup.run(checkpoint_path=path)
        assert [e["event"] for e in sup.supervision_log] == ["restart"]
        final = load_checkpoint(path)
        assert final.supervision == []
        assert final.complete


# ----------------------------------------------------------------------
# Policy knobs and env-var defaults
# ----------------------------------------------------------------------


class TestPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = SupervisorPolicy(
            mut_deadline=None, backoff_base=0.25, backoff_max=1.0
        )
        assert [policy.backoff(i) for i in range(4)] == [0.25, 0.5, 1.0, 1.0]

    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("BALLISTA_MUT_DEADLINE", raising=False)
        monkeypatch.delenv("BALLISTA_MAX_RESTARTS", raising=False)
        monkeypatch.delenv("BALLISTA_MAX_MUT_RETRIES", raising=False)
        assert default_mut_deadline() == 300.0
        assert default_max_restarts() == 5
        assert default_max_mut_retries() == 1
        monkeypatch.setenv("BALLISTA_MUT_DEADLINE", "0")
        assert default_mut_deadline() is None  # 0 = watchdog off
        monkeypatch.setenv("BALLISTA_MUT_DEADLINE", "12.5")
        assert default_mut_deadline() == 12.5

    @pytest.mark.parametrize(
        "name,reader",
        [
            ("BALLISTA_MUT_DEADLINE", default_mut_deadline),
            ("BALLISTA_MAX_RESTARTS", default_max_restarts),
            ("BALLISTA_MAX_MUT_RETRIES", default_max_mut_retries),
        ],
    )
    def test_env_junk_raises_naming_the_variable(
        self, name, reader, monkeypatch
    ):
        monkeypatch.setenv(name, "soon")
        with pytest.raises(ValueError, match=name):
            reader()
        monkeypatch.setenv(name, "-1")
        with pytest.raises(ValueError, match=name):
            reader()


class TestCliFlags:
    def test_negative_deadline_rejected(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--mut-deadline", "-1", "--variants", "linux"])
        assert "--mut-deadline" in capsys.readouterr().err

    def test_negative_restarts_rejected(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--max-restarts", "-2", "--variants", "linux"])
        assert "--max-restarts" in capsys.readouterr().err

    def test_env_junk_reported_not_raised(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("BALLISTA_MAX_MUT_RETRIES", "plenty")
        with pytest.raises(SystemExit):
            main(["--variants", "linux"])
        assert "BALLISTA_MAX_MUT_RETRIES" in capsys.readouterr().err
