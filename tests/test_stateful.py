"""Model-based (stateful) property tests.

Each machine subsystem is driven through random operation sequences by
hypothesis while a trivial Python model predicts the outcome -- the
classic oracle pattern for catching state-dependent bugs, which is
exactly the failure class the paper's ``*`` crashes live in.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.core.context import TestContext
from repro.posix.linux import LINUX
from repro.sim.errors import AccessViolation
from repro.sim.filesystem import FileSystem, FileSystemError
from repro.sim.machine import Machine
from repro.sim.objects import EventObject, HandleTable

_NAMES = st.sampled_from(["a", "b", "c", "sub", "Data.txt"])
_PAYLOADS = st.binary(max_size=32)


class FileSystemModel(RuleBasedStateMachine):
    """FileSystem vs a flat dict oracle {path: bytes | DIR}."""

    DIR = object()

    def __init__(self):
        super().__init__()
        self.fs = FileSystem()
        self.fs.mkdir("/d")
        self.model = {"/d": self.DIR}

    def _parent_exists(self, path: str) -> bool:
        parent = path.rsplit("/", 1)[0]
        return parent == "" or self.model.get(parent) is self.DIR

    @rule(name=_NAMES, data=_PAYLOADS, under=st.sampled_from(["", "/d"]))
    def create_file(self, name, data, under):
        path = f"{under}/{name}"
        expected_dir = self.model.get(path) is self.DIR
        try:
            self.fs.create_file(path, data)
            assert not expected_dir
            self.model[path] = bytes(data)
        except FileSystemError as exc:
            assert expected_dir or not self._parent_exists(path), exc.code

    @rule(name=_NAMES, under=st.sampled_from(["", "/d"]))
    def mkdir(self, name, under):
        path = f"{under}/{name}"
        try:
            self.fs.mkdir(path)
            assert path not in self.model
            self.model[path] = self.DIR
        except FileSystemError:
            assert path in self.model or not self._parent_exists(path)

    @rule(name=_NAMES, under=st.sampled_from(["", "/d"]))
    def unlink(self, name, under):
        path = f"{under}/{name}"
        entry = self.model.get(path)
        try:
            self.fs.unlink(path)
            assert entry is not None and entry is not self.DIR
            del self.model[path]
        except FileSystemError:
            assert entry is None or entry is self.DIR

    @rule(name=_NAMES, under=st.sampled_from(["", "/d"]))
    def read_back(self, name, under):
        path = f"{under}/{name}"
        entry = self.model.get(path)
        node = self.fs.lookup(path)
        if entry is None:
            assert node is None
        elif entry is self.DIR:
            assert node is not None and node.is_directory
        else:
            assert node is not None and bytes(node.data) == entry

    @invariant()
    def file_listing_matches(self):
        actual = {path for path, _ in self.fs.iter_files()}
        expected = {
            path for path, entry in self.model.items() if entry is not self.DIR
        }
        assert actual == expected


class HeapModel(RuleBasedStateMachine):
    """CRT malloc/free vs a set of live (address, size) blocks."""

    blocks = Bundle("blocks")

    def __init__(self):
        super().__init__()
        machine = Machine(LINUX)
        self.ctx = TestContext(machine, machine.spawn_process())
        self.crt = self.ctx.crt
        self.live: dict[int, int] = {}

    @rule(target=blocks, size=st.integers(min_value=0, max_value=512))
    def malloc(self, size):
        address = self.crt.malloc(size)
        assert address != 0
        self.live[address] = size
        return address

    @rule(address=blocks)
    def free(self, address):
        if address not in self.live:
            return  # already freed through another path
        assert self.crt.free(address) == 0
        del self.live[address]
        with pytest.raises(AccessViolation):
            self.ctx.mem.read(address, 1)

    @rule(address=blocks, data=_PAYLOADS)
    def write_into_block(self, address, data):
        size = self.live.get(address)
        if size is None or size == 0:
            return
        payload = data[:size]
        if payload:
            self.ctx.mem.write(address, payload)
            assert self.ctx.mem.read(address, len(payload)) == payload

    @invariant()
    def live_blocks_do_not_overlap(self):
        spans = sorted(
            (address, address + max(size, 1)) for address, size in self.live.items()
        )
        for (_, first_end), (second_start, _) in zip(spans, spans[1:]):
            assert first_end <= second_start

    @invariant()
    def live_blocks_are_readable(self):
        for address, size in self.live.items():
            self.ctx.mem.read(address, max(size, 1))


class HandleTableModel(RuleBasedStateMachine):
    """HandleTable vs a dict {handle: object-id}."""

    handles = Bundle("handles")

    def __init__(self):
        super().__init__()
        self.table = HandleTable()
        self.model: dict[int, int] = {}
        self.objects: dict[int, EventObject] = {}

    @rule(target=handles)
    def insert(self):
        event = EventObject(True, False)
        handle = self.table.insert(event)
        assert handle not in self.model
        self.model[handle] = event.object_id
        self.objects[event.object_id] = event
        return handle

    @rule(target=handles, source=handles)
    def duplicate(self, source):
        obj = self.table.get(source)
        if obj is None:
            return source  # stale handle: nothing duplicated
        handle = self.table.insert(obj)
        self.model[handle] = obj.object_id
        return handle

    @rule(handle=handles)
    def close(self, handle):
        expected = handle in self.model
        assert self.table.close(handle) == expected
        if expected:
            object_id = self.model.pop(handle)
            still_referenced = object_id in self.model.values()
            assert self.objects[object_id].destroyed != still_referenced

    @rule(handle=handles)
    def resolve(self, handle):
        obj = self.table.get(handle)
        if handle in self.model:
            assert obj is not None and obj.object_id == self.model[handle]
        else:
            assert obj is None

    @invariant()
    def table_size_matches(self):
        assert len(self.table) == len(self.model)


FileSystemModelTest = FileSystemModel.TestCase
HeapModelTest = HeapModel.TestCase
HandleTableModelTest = HandleTableModel.TestCase

for test_case in (FileSystemModelTest, HeapModelTest, HandleTableModelTest):
    test_case.settings = settings(
        max_examples=30, stateful_step_count=30, deadline=None
    )
