"""Sweep tests over the builtin test-value pools: every value must
construct on every variant without harness errors, and the pools must
keep the properties the methodology depends on."""

import pytest

from repro.core.context import TestContext
from repro.core.types import default_types
from repro.sim.errors import SimFault
from repro.sim.machine import Machine


def all_values(types):
    for type_name in types.names():
        for value in types.get(type_name).own_values:
            yield type_name, value


class TestConstructorSweep:
    @pytest.mark.parametrize(
        "variant_key", ["linux", "winnt", "win98", "wince"]
    )
    def test_every_value_constructs_everywhere(
        self, variant_key, types, all_variants
    ):
        personality = {p.key: p for p in all_variants}[variant_key]
        machine = Machine(personality)
        failures = []
        for type_name, value in all_values(types):
            ctx = TestContext(machine, machine.spawn_process())
            try:
                value.construct(ctx)
            except SimFault:
                pass  # legitimate: some constructors touch bad memory
            except Exception as exc:  # noqa: BLE001 - harness bug detector
                failures.append((type_name, value.name, repr(exc)))
            finally:
                ctx.run_cleanups()
                ctx.process.terminate()
        assert not failures, failures

    def test_constructors_are_deterministic_in_value(self, types, winnt):
        # Scalar values must be identical across constructions.
        machine = Machine(winnt)
        for type_name in ("int_val", "dword", "char_int", "seek_whence"):
            for value in types.get(type_name).own_values:
                ctx1 = TestContext(machine, machine.spawn_process())
                ctx2 = TestContext(machine, machine.spawn_process())
                assert value.construct(ctx1) == value.construct(ctx2), value.name


class TestPoolProperties:
    def test_every_pool_mixes_valid_and_exceptional(self, types):
        """'These pools of values contain exceptional as well as
        non-exceptional cases' -- every pool used by pointer-ish types
        must contain both, so robust handling on one parameter cannot
        mask failures on another."""
        for type_name in (
            "buffer", "cstring", "filename", "fileptr", "fd", "handle",
            "dword", "double_val", "char_int",
        ):
            values = types.get(type_name).all_values()
            flags = {v.exceptional for v in values}
            assert flags == {True, False}, type_name

    def test_value_names_unique_within_type(self, types):
        for type_name in types.names():
            names = [v.name for v in types.get(type_name).all_values()]
            assert len(names) == len(set(names)), type_name

    def test_pointer_types_inherit_buffer_pool(self, types):
        buffer_names = {v.name for v in types.get("buffer").all_values()}
        for child in ("cstring", "stat_buf", "context_ptr", "filetime_ptr",
                      "time_t_ptr", "tm_ptr", "handle_array", "wstring",
                      "interlocked_ptr"):
            child_names = {v.name for v in types.get(child).all_values()}
            assert buffer_names <= child_names, child

    def test_handle_subtypes_inherit_bad_handles(self, types):
        bad = {"H_NULL", "H_INVALID", "H_CLOSED", "H_GARBAGE"}
        for child in ("file_handle", "thread_handle", "process_handle",
                      "waitable_handle", "heap_handle"):
            names = {v.name for v in types.get(child).all_values()}
            assert bad <= names, child

    def test_signature_types_all_registered(self, registry, types):
        for mut in registry.all():
            for type_name in mut.param_types:
                assert type_name in types, (mut.name, type_name)

    def test_pool_scale_is_documented_order(self, types):
        # README/EXPERIMENTS quote ~200 values across ~46 types.
        assert 150 <= types.total_values() <= 400
        assert 40 <= len(types.names()) <= 60


class TestSpecificValues:
    def make_ctx(self, winnt):
        machine = Machine(winnt)
        return TestContext(machine, machine.spawn_process())

    def test_freed_buffer_faults(self, types, winnt):
        ctx = self.make_ctx(winnt)
        addr = types.get("buffer").find("PTR_FREED").construct(ctx)
        from repro.sim.errors import AccessViolation

        with pytest.raises(AccessViolation):
            ctx.mem.read(addr, 1)

    def test_readonly_buffer_rejects_writes(self, types, winnt):
        ctx = self.make_ctx(winnt)
        addr = types.get("buffer").find("PTR_READONLY").construct(ctx)
        assert ctx.mem.read(addr, 8)  # readable
        from repro.sim.errors import AccessViolation

        with pytest.raises(AccessViolation):
            ctx.mem.write(addr, b"x")

    def test_fd_closed_is_really_closed(self, types, linux):
        machine = Machine(linux)
        ctx = TestContext(machine, machine.spawn_process())
        fd = types.get("fd").find("FD_CLOSED").construct(ctx)
        assert ctx.process.get_fd(fd) is None

    def test_handle_closed_is_really_closed(self, types, winnt):
        ctx = self.make_ctx(winnt)
        handle = types.get("handle").find("H_CLOSED").construct(ctx)
        assert ctx.process.handles.get(handle) is None

    def test_file_open_read_is_live_stream(self, types, winnt):
        ctx = self.make_ctx(winnt)
        fp = types.get("fileptr").find("FILE_OPEN_READ").construct(ctx)
        assert ctx.crt.fgetc(fp) != -1

    def test_existing_file_cleanup_removes_it(self, winnt):
        ctx = self.make_ctx(winnt)
        path = ctx.existing_file()
        assert ctx.machine.fs.lookup(path) is not None
        ctx.run_cleanups()
        assert ctx.machine.fs.lookup(path) is None

    def test_shared_arena_value_maps_only_on_9x(self, types, winnt, win98):
        nt_ctx = self.make_ctx(winnt)
        addr = types.get("buffer").find("PTR_SHARED_ARENA").construct(nt_ctx)
        assert not nt_ctx.mem.is_mapped(addr)
        machine98 = Machine(win98)
        ctx98 = TestContext(machine98, machine98.spawn_process())
        assert ctx98.mem.is_mapped(addr)

    def test_tm_valid_is_consistent(self, types, winnt):
        ctx = self.make_ctx(winnt)
        addr = types.get("tm_ptr").find("TM_VALID").construct(ctx)
        assert ctx.mem.read_i32(addr + 16) == 5  # tm_mon = June
        assert ctx.mem.read_i32(addr + 20) == 100  # tm_year = 2000
