"""Unit tests for the C char and C string groups across CRT flavours."""

import pytest

from repro.core.context import TestContext
from repro.posix.linux import LINUX
from repro.sim.errors import AccessViolation
from repro.sim.machine import Machine
from repro.win32.variants import WINCE, WINNT


def crt_for(personality):
    machine = Machine(personality)
    ctx = TestContext(machine, machine.spawn_process())
    return ctx, ctx.crt


@pytest.fixture()
def glibc():
    return crt_for(LINUX)


@pytest.fixture()
def msvcrt():
    return crt_for(WINNT)


@pytest.fixture()
def cecrt():
    return crt_for(WINCE)


class TestCtype:
    @pytest.mark.parametrize(
        "func,char,expected",
        [
            ("isalpha", ord("A"), 1),
            ("isalpha", ord("5"), 0),
            ("isdigit", ord("5"), 1),
            ("isspace", ord(" "), 1),
            ("isupper", ord("a"), 0),
            ("islower", ord("a"), 1),
            ("ispunct", ord("!"), 1),
            ("isxdigit", ord("f"), 1),
            ("isxdigit", ord("g"), 0),
            ("iscntrl", 0x07, 1),
            ("isprint", ord("x"), 1),
            ("isgraph", ord(" "), 0),
            ("isalnum", ord("z"), 1),
        ],
    )
    def test_classification_agrees_across_flavours(
        self, glibc, msvcrt, func, char, expected
    ):
        for _, crt in (glibc, msvcrt):
            assert getattr(crt, func)(char) == expected

    def test_eof_is_not_in_any_class(self, glibc, msvcrt):
        for _, crt in (glibc, msvcrt):
            assert crt.isalpha(-1) == 0

    def test_glibc_faults_on_out_of_range(self, glibc):
        _, crt = glibc
        with pytest.raises(AccessViolation):
            crt.isalpha(1_000_000)

    def test_glibc_faults_on_256(self, glibc):
        _, crt = glibc
        with pytest.raises(AccessViolation):
            crt.isdigit(256)

    def test_glibc_faults_on_int_min(self, glibc):
        _, crt = glibc
        with pytest.raises(AccessViolation):
            crt.tolower(-0x8000_0000)

    def test_glibc_tolerates_signed_char_range(self, glibc):
        _, crt = glibc
        assert crt.isalpha(-100) == 0  # within the -128..255 table

    def test_msvcrt_bounds_checks_everything(self, msvcrt):
        _, crt = msvcrt
        assert crt.isalpha(1_000_000) == 0
        assert crt.isdigit(256) == 0
        assert crt.tolower(-0x8000_0000) == -0x8000_0000

    def test_ce_bounds_checks_like_msvcrt(self, cecrt):
        _, crt = cecrt
        assert crt.isalpha(1_000_000) == 0

    def test_tolower_toupper(self, msvcrt):
        _, crt = msvcrt
        assert crt.tolower(ord("A")) == ord("a")
        assert crt.toupper(ord("a")) == ord("A")
        assert crt.tolower(ord("5")) == ord("5")

    def test_wide_twins_never_fault(self, cecrt):
        _, crt = cecrt
        assert crt.towlower(ord("A")) == ord("a")
        assert crt.towupper(ord("z")) == ord("Z")
        assert crt.iswalpha(0x0416) == 1  # cyrillic Zhe
        assert crt.iswalpha(-5) == 0


class TestStringCopy:
    def test_strcpy_roundtrip(self, glibc):
        ctx, crt = glibc
        src = ctx.cstring(b"ballista")
        dest = ctx.buffer(32)
        assert crt.strcpy(dest, src) == dest
        assert ctx.mem.read_cstring(dest) == b"ballista"

    def test_strcpy_null_dest_faults(self, glibc):
        ctx, crt = glibc
        src = ctx.cstring(b"x")
        with pytest.raises(AccessViolation):
            crt.strcpy(0, src)

    def test_strncpy_zero_pads_to_n(self, glibc):
        ctx, crt = glibc
        src = ctx.cstring(b"ab")
        dest = ctx.buffer(8, b"\xff" * 8)
        crt.strncpy(dest, src, 6)
        assert ctx.mem.read(dest, 8) == b"ab\x00\x00\x00\x00\xff\xff"

    def test_strncpy_does_not_terminate_when_full(self, glibc):
        ctx, crt = glibc
        src = ctx.cstring(b"abcdef")
        dest = ctx.buffer(8)
        crt.strncpy(dest, src, 3)
        assert ctx.mem.read(dest, 4) == b"abc\x00"  # buffer was zeroed

    def test_strncpy_huge_n_overflows_small_dest(self, glibc):
        ctx, crt = glibc
        src = ctx.cstring(b"a")
        dest = ctx.buffer(16)
        with pytest.raises(AccessViolation):
            crt.strncpy(dest, src, 0xFFFF_FFFF)

    def test_strcat_appends(self, glibc):
        ctx, crt = glibc
        dest = ctx.buffer(32, b"abc")
        src = ctx.cstring(b"def")
        crt.strcat(dest, src)
        assert ctx.mem.read_cstring(dest) == b"abcdef"

    def test_strncat_limits_source(self, glibc):
        ctx, crt = glibc
        dest = ctx.buffer(32, b"abc")
        src = ctx.cstring(b"defgh")
        crt.strncat(dest, src, 2)
        assert ctx.mem.read_cstring(dest) == b"abcde"


class TestStringSearch:
    def test_strcmp_ordering(self, glibc):
        ctx, crt = glibc
        a = ctx.cstring(b"apple")
        b = ctx.cstring(b"banana")
        assert crt.strcmp(a, b) < 0
        assert crt.strcmp(b, a) > 0
        assert crt.strcmp(a, ctx.cstring(b"apple")) == 0

    def test_strncmp_prefix(self, glibc):
        ctx, crt = glibc
        a = ctx.cstring(b"abcXXX")
        b = ctx.cstring(b"abcYYY")
        assert crt.strncmp(a, b, 3) == 0

    def test_strchr_found_and_missing(self, glibc):
        ctx, crt = glibc
        s = ctx.cstring(b"hello")
        assert crt.strchr(s, ord("l")) == s + 2
        assert crt.strchr(s, ord("z")) == 0
        assert crt.strchr(s, 0) == s + 5

    def test_strrchr_last_occurrence(self, glibc):
        ctx, crt = glibc
        s = ctx.cstring(b"hello")
        assert crt.strrchr(s, ord("l")) == s + 3

    def test_strstr(self, glibc):
        ctx, crt = glibc
        hay = ctx.cstring(b"the ballista fires")
        assert crt.strstr(hay, ctx.cstring(b"ballista")) == hay + 4
        assert crt.strstr(hay, ctx.cstring(b"xyz")) == 0
        assert crt.strstr(hay, ctx.cstring(b"")) == hay

    def test_strlen(self, glibc):
        ctx, crt = glibc
        assert crt.strlen(ctx.cstring(b"12345")) == 5
        assert crt.strlen(ctx.cstring(b"")) == 0

    def test_strspn_strcspn(self, glibc):
        ctx, crt = glibc
        s = ctx.cstring(b"112358x")
        digits = ctx.cstring(b"0123456789")
        assert crt.strspn(s, digits) == 6
        assert crt.strcspn(s, ctx.cstring(b"x")) == 6

    def test_strpbrk(self, glibc):
        ctx, crt = glibc
        s = ctx.cstring(b"abcdef")
        assert crt.strpbrk(s, ctx.cstring(b"xd")) == s + 3
        assert crt.strpbrk(s, ctx.cstring(b"xyz")) == 0

    def test_strtok_sequence(self, glibc):
        ctx, crt = glibc
        s = ctx.cstring(b"one,two,,three")
        sep = ctx.cstring(b",")
        first = crt.strtok(s, sep)
        assert ctx.mem.read_cstring(first) == b"one"
        second = crt.strtok(0, sep)
        assert ctx.mem.read_cstring(second) == b"two"
        third = crt.strtok(0, sep)
        assert ctx.mem.read_cstring(third) == b"three"
        assert crt.strtok(0, sep) == 0

    def test_strtok_null_without_state(self, glibc):
        ctx, crt = glibc
        assert crt.strtok(0, ctx.cstring(b",")) == 0


class TestWordAtATimeScanning:
    """The mechanistic C-string flavour difference (paper: Windows higher)."""

    def test_msvcrt_faults_on_edge_terminated_string(self, msvcrt):
        ctx, crt = msvcrt
        s = ctx.cstring(b"edge-string-xx", round_to=1)  # 15-byte mapping
        with pytest.raises(AccessViolation):
            crt.strlen(s)

    def test_glibc_handles_edge_terminated_string(self, glibc):
        ctx, crt = glibc
        s = ctx.cstring(b"edge-string-xx", round_to=1)
        assert crt.strlen(s) == 14

    def test_msvcrt_fine_on_rounded_strings(self, msvcrt):
        ctx, crt = msvcrt
        assert crt.strlen(ctx.cstring(b"ordinary string")) == 15


class TestConversions:
    def test_atoi_parses_prefix(self, glibc):
        ctx, crt = glibc
        assert crt.atoi(ctx.cstring(b"  -42abc")) == -42
        assert crt.atoi(ctx.cstring(b"ballista")) == 0

    def test_atof(self, glibc):
        ctx, crt = glibc
        assert crt.atof(ctx.cstring(b"3.5e2xyz")) == pytest.approx(350.0)
        assert crt.atof(ctx.cstring(b"nope")) == 0.0

    def test_strtol_bases(self, glibc):
        ctx, crt = glibc
        assert crt.strtol(ctx.cstring(b"ff"), 0, 16) == 255
        assert crt.strtol(ctx.cstring(b"0x10"), 0, 0) == 16
        assert crt.strtol(ctx.cstring(b"777"), 0, 8) == 511

    def test_strtol_invalid_base_reports_einval(self, glibc):
        ctx, crt = glibc
        assert crt.strtol(ctx.cstring(b"1"), 0, 64) == 0
        assert ctx.process.errno == 22

    def test_strtol_saturates_with_erange(self, glibc):
        ctx, crt = glibc
        assert crt.strtol(ctx.cstring(b"99999999999999"), 0, 10) == 0x7FFF_FFFF
        assert ctx.process.errno == 34

    def test_strtol_writes_endptr(self, glibc):
        ctx, crt = glibc
        s = ctx.cstring(b"123xyz")
        endptr = ctx.buffer(8)
        crt.strtol(s, endptr, 10)
        assert ctx.mem.read_u32(endptr) == s + 3

    def test_strtod_endptr_and_value(self, glibc):
        ctx, crt = glibc
        s = ctx.cstring(b"2.75rest")
        endptr = ctx.buffer(8)
        assert crt.strtod(s, endptr) == pytest.approx(2.75)
        assert ctx.mem.read_u32(endptr) == s + 4
