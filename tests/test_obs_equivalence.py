"""The telemetry equivalence guarantee: at the same seed and cap, the
deterministic per-variant event stream (wall timestamps stripped,
worker-restart replays collapsed) is identical whether the campaign ran
serial, parallel, or supervised-and-healed -- the observability mirror
of the result-set byte-identity guarantee."""

import json
import os

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.parallel import ParallelCampaign
from repro.core.supervisor import SupervisedCampaign, SupervisorPolicy
from repro.obs import (
    DETERMINISTIC_KINDS,
    JsonlRecorder,
    MemoryRecorder,
    MetricsAggregator,
    render_stats,
    strip_wall,
    variant_stream,
)
from repro.obs.stats_cli import main as stats_main
from repro.posix.linux import LINUX
from repro.win32.variants import WIN98, WINNT

SUBSET = ["GetThreadContext", "CloseHandle", "strcpy", "isalpha", "fclose"]
JOBS = int(os.environ.get("BALLISTA_JOBS", "2"))
DEADLINE = float(os.environ.get("BALLISTA_TEST_DEADLINE", "5.0"))
FAST = dict(backoff_base=0.05, backoff_max=0.2)


def serial_stream(variants, cap):
    recorder = MemoryRecorder()
    Campaign(variants, config=CampaignConfig(cap=cap), muts=SUBSET).run(
        recorder=recorder
    )
    return recorder.records


def streams_by_variant(records, variants):
    return {
        p.key: [strip_wall(r) for r in variant_stream(records, p.key)]
        for p in variants
    }


class TestSerialParallelEquivalence:
    def test_parallel_event_stream_matches_serial(self):
        variants = [WIN98, WINNT, LINUX]
        serial = serial_stream(variants, 30)
        recorder = MemoryRecorder()
        ParallelCampaign(
            variants, config=CampaignConfig(cap=30), muts=SUBSET, jobs=JOBS
        ).run(recorder=recorder)
        assert streams_by_variant(recorder.records, variants) == (
            streams_by_variant(serial, variants)
        )

    def test_healthy_parallel_run_emits_no_death_telemetry(self):
        """The reap scan is sentinel-gated: a fault-free fleet must
        finish with zero worker_died/worker_restarted events, only
        spawn/finish bookkeeping."""
        variants = [WIN98, LINUX]
        recorder = MemoryRecorder()
        ParallelCampaign(
            variants, config=CampaignConfig(cap=20), muts=SUBSET, jobs=JOBS
        ).run(recorder=recorder)
        kinds = [r["kind"] for r in recorder.records]
        assert "worker_died" not in kinds
        assert "worker_restarted" not in kinds
        assert kinds.count("worker_spawned") == len(variants)
        assert kinds.count("worker_finished") == len(variants)

    def test_serial_events_carry_sim_ticks_not_wall_time(self):
        records = serial_stream([WIN98], 20)
        for record in records:
            assert "t" not in record  # MemoryRecorder without a clock
            if record["kind"] in ("case_executed", "mut_finished",
                                  "variant_finished"):
                assert record["sim_ticks"] >= 0


class TestSupervisedKillDrill:
    def test_healed_run_stream_matches_serial_and_stats_report(
        self, tmp_path, monkeypatch, capsys
    ):
        """The acceptance drill: SIGKILL one worker mid-MuT under the
        supervisor with --events streaming to disk.  The deterministic
        stream (timestamps stripped, replays collapsed) must equal the
        serial run's, and `repro stats` must report the restart and the
        per-variant outcome counters."""
        variants = [WIN98, WINNT, LINUX]
        serial = serial_stream(variants, 30)

        marker = tmp_path / "killed-once"
        monkeypatch.setenv(
            "BALLISTA_FAULT_KILL", f"winnt|libc:strcpy|3|{marker}"
        )
        events_path = tmp_path / "events.jsonl"
        recorder = JsonlRecorder(events_path)
        sup = SupervisedCampaign(
            variants,
            config=CampaignConfig(cap=30),
            muts=SUBSET,
            jobs=JOBS,
            policy=SupervisorPolicy(mut_deadline=DEADLINE, **FAST),
        )
        try:
            sup.run(recorder=recorder)
        finally:
            recorder.close()
        assert marker.exists(), "the fault never fired"
        assert any(e["event"] == "restart" for e in sup.supervision_log)

        from repro.obs.recorder import read_events

        records, malformed = read_events(events_path)
        assert malformed == 0
        for record in records:
            assert isinstance(record["t"], float)  # every record stamped

        # Deterministic stream: identical to serial despite the heal.
        assert streams_by_variant(records, variants) == (
            streams_by_variant(serial, variants)
        )

        # Operational stream: the death and restart are visible.
        kinds = [r["kind"] for r in records]
        assert "worker_died" in kinds
        assert "worker_restarted" in kinds
        restarted = next(
            r for r in records if r["kind"] == "worker_restarted"
        )
        assert restarted["variant"] == "winnt"
        assert restarted["attempt"] == 1  # first restart...
        assert restarted["death"] == "killed"
        spawns = [
            r["attempt"] for r in records
            if r["kind"] == "worker_spawned" and r["variant"] == "winnt"
        ]
        assert spawns == [1, 2]  # ...producing launch attempt 2

        # The stats report surfaces the restart and outcome counters.
        assert stats_main([str(events_path)]) == 0
        report = capsys.readouterr().out
        assert "1 restarted" in report
        assert "killed: 1" in report
        for p in variants:
            assert p.key in report

        agg = MetricsAggregator()
        for record in records:
            agg.record(record)
        snap = agg.snapshot()
        assert snap["ops"]["worker_restarts"] == 1
        assert snap["variants"]["winnt"]["workers"]["died"] == 1
        assert snap["variants"]["winnt"]["workers"]["spawned"] == 2
        # The killed attempt's partial cases were re-executed; the
        # aggregator accounts for the replay without double-counting.
        assert snap["variants"]["winnt"]["replayed_cases"] > 0
        assert sum(
            snap["variants"][p.key]["outcomes"].get(name, 0)
            for p in variants
            for name in snap["variants"][p.key]["outcomes"]
        ) == sum(v["cases"] for v in snap["variants"].values())

    def test_stats_json_round_trips(self, tmp_path, capsys):
        """`repro stats --json` output is a loadable snapshot."""
        events_path = tmp_path / "events.jsonl"
        recorder = JsonlRecorder(events_path)
        Campaign(
            [WIN98], config=CampaignConfig(cap=20), muts=SUBSET
        ).run(recorder=recorder)
        recorder.close()
        assert stats_main([str(events_path), "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["variants"]["win98"]["muts"] == len(SUBSET)
        assert snap["malformed"] == 0
