"""Checkpoint/resume: interrupted campaigns (local or distributed) must
restart without re-executing completed MuTs and still produce the exact
result set of an uninterrupted run."""

import json

import pytest

from repro.core.campaign import Campaign, CampaignConfig, run_single_case
from repro.core.generator import CaseGenerator
from repro.core.mut import MuTRegistry
from repro.core.results import ResultSet
from repro.core.results_io import (
    CampaignCheckpoint,
    ResultFormatError,
    checkpoint_from_dict,
    checkpoint_to_dict,
    load_checkpoint,
    load_results,
    results_from_dict,
    results_to_dict,
    save_checkpoint,
    save_results,
)
from repro.service import (
    BallistaClient,
    BallistaServer,
    ChaosConfig,
    ChaosTransport,
    LoopbackTransport,
    RetryPolicy,
    RpcError,
)

SUBSET = ["GetThreadContext", "CloseHandle", "strcpy", "isalpha", "fclose"]


@pytest.fixture()
def subset_registry(registry):
    sub = MuTRegistry()
    for mut in registry.all():
        if mut.name in SUBSET:
            sub.register(mut)
    return sub


def assert_same_results(actual: ResultSet, expected: ResultSet) -> None:
    assert len(actual) == len(expected)
    for row in expected:
        mirrored = actual.get(row.variant, row.mut_name, api=row.api)
        context = (row.variant, row.mut_name)
        assert bytes(mirrored.codes) == bytes(row.codes), context
        assert bytes(mirrored.exceptional) == bytes(row.exceptional), context
        assert mirrored.error_codes == row.error_codes, context
        assert mirrored.details == row.details, context
        assert mirrored.failing_cases == row.failing_cases, context
        assert mirrored.catastrophic == row.catastrophic, context
        assert mirrored.interference_crash == row.interference_crash, context
        assert mirrored.planned_cases == row.planned_cases, context
        assert mirrored.capped == row.capped, context


def small_campaign(subset_registry, variants, cap=60):
    return Campaign(
        variants, registry=subset_registry, config=CampaignConfig(cap=cap)
    )


# ----------------------------------------------------------------------
# results_io: format v2 + checkpoint documents
# ----------------------------------------------------------------------


class TestResultsFormatV2:
    def test_partial_flag_roundtrips(self, subset_registry, winnt):
        results = small_campaign(subset_registry, [winnt], cap=20).run()
        results.mark_partial("winnt")
        document = results_to_dict(results)
        assert document["version"] == 3
        assert document["partial"] == ["winnt"]
        reloaded = results_from_dict(document)
        assert reloaded.is_partial("winnt")
        assert_same_results(reloaded, results)

    def test_v1_document_without_new_fields_still_loads(
        self, subset_registry, winnt, tmp_path
    ):
        """Regression: documents saved before the dependability layer
        (version 1, no partial/checkpoint fields) must keep loading."""
        results = small_campaign(subset_registry, [winnt], cap=20).run()
        document = results_to_dict(results)
        document["version"] = 1
        document.pop("partial", None)
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        reloaded = load_results(path)
        assert_same_results(reloaded, results)
        assert reloaded.partial_variants() == set()

    def test_future_version_rejected(self):
        with pytest.raises(ResultFormatError, match="unsupported version"):
            results_from_dict(
                {"format": "ballista-results", "version": 99, "results": []}
            )


class TestCheckpointDocument:
    def make_checkpoint(self, subset_registry, winnt):
        results = small_campaign(subset_registry, [winnt], cap=20).run()
        return CampaignCheckpoint(
            results=results,
            cursors={"winnt": 3},
            machine_wear={
                "winnt": {
                    "corruption": 2,
                    "reboot_count": 1,
                    "clock_ticks": 90210,
                    "next_pid": 250,
                }
            },
            cap=20,
            complete=False,
        )

    def test_checkpoint_roundtrips(self, subset_registry, winnt, tmp_path):
        checkpoint = self.make_checkpoint(subset_registry, winnt)
        path = tmp_path / "campaign.ckpt"
        save_checkpoint(checkpoint, path)
        reloaded = load_checkpoint(path)
        assert reloaded.cursors == checkpoint.cursors
        assert reloaded.machine_wear == checkpoint.machine_wear
        assert reloaded.cap == 20
        assert reloaded.complete is False
        assert_same_results(reloaded.results, checkpoint.results)

    def test_dict_roundtrip(self, subset_registry, winnt):
        checkpoint = self.make_checkpoint(subset_registry, winnt)
        reloaded = checkpoint_from_dict(checkpoint_to_dict(checkpoint))
        assert reloaded.cursors == checkpoint.cursors

    def test_load_results_accepts_checkpoint_documents(
        self, subset_registry, winnt, tmp_path
    ):
        """``--load`` (and any analysis) can point straight at a
        checkpoint from an interrupted run."""
        checkpoint = self.make_checkpoint(subset_registry, winnt)
        path = tmp_path / "campaign.ckpt"
        save_checkpoint(checkpoint, path)
        results = load_results(path)
        assert_same_results(results, checkpoint.results)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(ResultFormatError, match="not a ballista-checkpoint"):
            load_checkpoint(path)

    def test_write_is_atomic(self, subset_registry, winnt, tmp_path):
        checkpoint = self.make_checkpoint(subset_registry, winnt)
        path = tmp_path / "campaign.ckpt"
        save_checkpoint(checkpoint, path)
        save_checkpoint(checkpoint, path)  # overwrite goes via rename
        assert not (tmp_path / "campaign.ckpt.tmp").exists()
        assert load_checkpoint(path).cap == 20

    def test_save_results_is_atomic_too(self, subset_registry, winnt, tmp_path):
        results = small_campaign(subset_registry, [winnt], cap=10).run()
        path = tmp_path / "results.json"
        save_results(results, path)
        assert not (tmp_path / "results.json.tmp").exists()
        assert_same_results(load_results(path), results)


# ----------------------------------------------------------------------
# Campaign checkpoint / resume
# ----------------------------------------------------------------------


class _Interrupt(Exception):
    pass


class TestCampaignResume:
    def test_killed_and_resumed_run_matches_uninterrupted(
        self, subset_registry, win98, winnt, tmp_path
    ):
        """The acceptance bar: kill a campaign mid-run, relaunch with the
        checkpoint, and the final ResultSet is identical -- without
        re-executing the MuTs completed before the kill."""
        uninterrupted = small_campaign(subset_registry, [win98, winnt]).run()

        path = tmp_path / "campaign.ckpt"
        executed_first: list[tuple[str, str]] = []

        def die_mid_campaign(variant, mut, position, total):
            # Kill the run partway through the second variant's plan.
            if len(executed_first) == 7:
                raise _Interrupt()
            executed_first.append((variant, mut))

        with pytest.raises(_Interrupt):
            small_campaign(subset_registry, [win98, winnt]).run(
                progress=die_mid_campaign,
                checkpoint_path=path,
                checkpoint_every=1,
            )
        assert path.exists()
        completed_before_kill = {
            (v, m) for v, m in executed_first
        }

        executed_second: list[tuple[str, str]] = []

        def record(variant, mut, position, total):
            executed_second.append((variant, mut))

        resumed = small_campaign(subset_registry, [win98, winnt]).run(
            progress=record,
            checkpoint_path=path,
            checkpoint_every=1,
            resume=path,
        )

        assert_same_results(resumed, uninterrupted)
        # Nothing that finished before the kill ran again.
        assert not (set(executed_second) & completed_before_kill)
        assert executed_second, "the resumed run must finish the plan"
        # The final checkpoint is marked complete.
        assert load_checkpoint(path).complete is True

    def test_resume_restores_machine_wear(
        self, registry, win98, tmp_path
    ):
        """Accumulated shared-arena corruption survives the restart, so
        interference (*) crashes classify as in the uninterrupted run.

        At cap 5 on win98, ``fwrite`` completes with corruption level 3
        (one short of the crash tolerance) and the very next corrupting
        access from ``strncpy`` tips the arena over: a Catastrophic
        interference crash that only happens because of fwrite's residue.
        A resume that forgot the wear would classify strncpy as clean.
        """
        wear_registry = MuTRegistry()
        for mut in registry.all():
            if mut.name in ("fwrite", "strncpy"):
                wear_registry.register(mut)
        uninterrupted = small_campaign(wear_registry, [win98], cap=5).run()
        crashed = uninterrupted.get("win98", "strncpy")
        assert crashed.catastrophic and crashed.interference_crash

        path = tmp_path / "campaign.ckpt"
        count = {"muts": 0}

        def die_after_fwrite(variant, mut, position, total):
            if count["muts"] == 1:
                raise _Interrupt()
            count["muts"] += 1

        with pytest.raises(_Interrupt):
            small_campaign(wear_registry, [win98], cap=5).run(
                progress=die_after_fwrite,
                checkpoint_path=path,
                checkpoint_every=1,
            )
        wear = load_checkpoint(path).machine_wear["win98"]
        assert set(wear) >= {"corruption", "reboot_count", "clock_ticks"}
        assert wear["corruption"] == 3, "fwrite must leave residue behind"
        resumed = small_campaign(wear_registry, [win98], cap=5).run(
            resume=path
        )
        assert_same_results(resumed, uninterrupted)

    def test_resume_restores_filesystem_wear(self, registry, winnt, tmp_path):
        """The filesystem is machine wear too.  At cap 60 one of
        ``fopen``'s write-mode cases creates a file at a hostile path
        string, and ``remove`` draws the same string from the shared
        pool: on the worn machine ``remove()`` finds and deletes the
        residue (returns 0), on a fresh boot it returns -1.  A resume
        that rebooted to a pristine tree misclassified those cases
        until the wear state grew a filesystem image -- this pins the
        fix.
        """
        fs_registry = MuTRegistry()
        for mut in registry.all():
            if mut.name in ("fopen", "remove"):
                fs_registry.register(mut)
        uninterrupted = small_campaign(fs_registry, [winnt], cap=60).run()

        path = tmp_path / "campaign.ckpt"
        count = {"muts": 0}

        def die_after_fopen(variant, mut, position, total):
            if count["muts"] == 1:
                raise _Interrupt()
            count["muts"] += 1

        with pytest.raises(_Interrupt):
            small_campaign(fs_registry, [winnt], cap=60).run(
                progress=die_after_fopen,
                checkpoint_path=path,
                checkpoint_every=1,
            )
        checkpoint = load_checkpoint(path)
        assert checkpoint.cursors == {"winnt": 1}, "must die before remove"
        wear = checkpoint.machine_wear["winnt"]
        leaked = [
            entry["path"]
            for entry in wear["fs"]["nodes"]
            if entry["type"] == "file" and entry["path"] != "/etc_passwd"
        ]
        assert leaked, "fopen must leave residue files for remove to find"
        resumed = small_campaign(fs_registry, [winnt], cap=60).run(
            resume=path
        )
        assert_same_results(resumed, uninterrupted)

    def test_resume_under_different_cap_refused(
        self, subset_registry, winnt, tmp_path
    ):
        path = tmp_path / "campaign.ckpt"
        small_campaign(subset_registry, [winnt], cap=20).run(
            checkpoint_path=path
        )
        with pytest.raises(ValueError, match="cap"):
            small_campaign(subset_registry, [winnt], cap=40).run(resume=path)

    def test_resume_without_recorded_cap_warns(self, subset_registry, winnt):
        """Regression: a falsy checkpoint cap used to pass the ``resume.cap
        and ...`` guard silently, resuming under *any* cap; it must warn."""
        checkpoint = CampaignCheckpoint(
            ResultSet(), cap=0, variants=["winnt"]
        )
        with pytest.warns(UserWarning, match="does not record its cap"):
            small_campaign(subset_registry, [winnt], cap=20).run(
                resume=checkpoint
            )

    def test_machine_per_case_checkpoint_records_no_wear(
        self, subset_registry, winnt, tmp_path
    ):
        """Regression: machine_per_case mode used to capture wear from
        the throwaway per-case machine into the checkpoint."""
        path = tmp_path / "campaign.ckpt"
        Campaign(
            [winnt],
            registry=subset_registry,
            config=CampaignConfig(cap=20, machine_per_case=True),
        ).run(checkpoint_path=path)
        assert load_checkpoint(path).machine_wear == {}

    def test_machine_per_case_resume_ignores_poisoned_wear(
        self, subset_registry, win98
    ):
        """In machine_per_case mode every case gets a pristine machine;
        wear smuggled in via a checkpoint must not be restored."""
        config = CampaignConfig(cap=20, machine_per_case=True)
        clean = Campaign(
            [win98], registry=subset_registry, config=config
        ).run()
        poisoned = CampaignCheckpoint(
            ResultSet(),
            machine_wear={
                "win98": {
                    "corruption": 3,
                    "reboot_count": 9,
                    "clock_ticks": 1_000_000,
                    "next_pid": 4000,
                }
            },
            cap=20,
            variants=["win98"],
        )
        resumed = Campaign(
            [win98], registry=subset_registry, config=config
        ).run(resume=poisoned)
        assert_same_results(resumed, clean)

    def test_resume_with_different_variants_refused(
        self, subset_registry, winnt, win98, tmp_path
    ):
        """A checkpoint records its variant set: resuming with another
        would silently drop or re-run whole variants."""
        path = tmp_path / "campaign.ckpt"
        small_campaign(subset_registry, [winnt], cap=20).run(
            checkpoint_path=path
        )
        assert load_checkpoint(path).variants == ["winnt"]
        with pytest.raises(ValueError, match="variants"):
            small_campaign(subset_registry, [win98, winnt], cap=20).run(
                resume=path
            )

    def test_resume_of_complete_checkpoint_is_a_no_op(
        self, subset_registry, winnt, tmp_path
    ):
        path = tmp_path / "campaign.ckpt"
        first = small_campaign(subset_registry, [winnt], cap=20).run(
            checkpoint_path=path
        )
        executed = []
        again = small_campaign(subset_registry, [winnt], cap=20).run(
            progress=lambda *a: executed.append(a), resume=path
        )
        assert executed == []
        assert_same_results(again, first)


# ----------------------------------------------------------------------
# Client-side checkpoint / resume
# ----------------------------------------------------------------------


class TestClientResume:
    def test_relaunched_client_resumes_and_matches_clean_run(
        self, subset_registry, winnt, tmp_path
    ):
        cap = 40
        clean_server = BallistaServer(
            [winnt], registry=subset_registry, cap=cap
        )
        server_end, client_end = LoopbackTransport.pair()
        clean_server.attach(server_end)
        BallistaClient(winnt, client_end, registry=subset_registry).run()
        clean_server.join({"winnt"})

        server = BallistaServer([winnt], registry=subset_registry, cap=cap)
        ckpt = tmp_path / "client.ckpt"

        # First launch dies when chaos severs the link mid-campaign.
        server_end, client_end = LoopbackTransport.pair()
        server.attach(server_end)
        doomed = BallistaClient(
            winnt,
            ChaosTransport(client_end, ChaosConfig(seed=0, disconnect_after=9)),
            registry=subset_registry,
            retry=RetryPolicy(attempts=2, call_timeout=0.05, backoff_base=0.001),
            checkpoint_path=ckpt,
            checkpoint_every=1,
        )
        with pytest.raises(RpcError):
            doomed.run()
        assert ckpt.exists()

        # Relaunch against the same server with the same checkpoint.
        server_end, client_end = LoopbackTransport.pair()
        server.attach(server_end)
        resumed = BallistaClient(
            winnt,
            client_end,
            registry=subset_registry,
            checkpoint_path=ckpt,
            checkpoint_every=1,
        )
        assert resumed._reported, "checkpoint must preload acked MuTs"
        resumed.run()
        server.join({"winnt"})

        assert_same_results(server.results, clean_server.results)

    def test_checkpoint_for_wrong_variant_rejected(
        self, subset_registry, winnt, win98, tmp_path
    ):
        ckpt = tmp_path / "client.ckpt"
        _, client_end = LoopbackTransport.pair()
        client = BallistaClient(
            winnt, client_end, registry=subset_registry, checkpoint_path=ckpt
        )
        client._reported = {"win32:CloseHandle"}
        client._save_checkpoint()
        _, other_end = LoopbackTransport.pair()
        with pytest.raises(ValueError, match="variant"):
            BallistaClient(
                win98, other_end, registry=subset_registry, checkpoint_path=ckpt
            )


# ----------------------------------------------------------------------
# run_single_case config threading (replay fidelity)
# ----------------------------------------------------------------------


class TestRunSingleCaseConfig:
    def first_case(self, registry, types, api, name):
        mut = registry.get(api, name)
        return mut, next(iter(CaseGenerator(types, cap=5).cases(mut)))

    def test_watchdog_budget_reaches_the_machine(
        self, registry, types, winnt, monkeypatch
    ):
        import repro.core.campaign as campaign_mod

        captured = {}
        real_machine = campaign_mod.Machine

        def spy(personality, watchdog_ticks=30_000, **kwargs):
            captured["watchdog_ticks"] = watchdog_ticks
            return real_machine(
                personality, watchdog_ticks=watchdog_ticks, **kwargs
            )

        monkeypatch.setattr(campaign_mod, "Machine", spy)
        mut, case = self.first_case(registry, types, "win32", "CloseHandle")
        run_single_case(
            winnt,
            "win32:CloseHandle",
            case.value_names,
            config=CampaignConfig(watchdog_ticks=1234),
        )
        assert captured["watchdog_ticks"] == 1234

    def test_default_watchdog_budget_unchanged(
        self, registry, types, winnt, monkeypatch
    ):
        import repro.core.campaign as campaign_mod

        captured = {}
        real_machine = campaign_mod.Machine

        def spy(personality, watchdog_ticks=30_000, **kwargs):
            captured["watchdog_ticks"] = watchdog_ticks
            return real_machine(
                personality, watchdog_ticks=watchdog_ticks, **kwargs
            )

        monkeypatch.setattr(campaign_mod, "Machine", spy)
        mut, case = self.first_case(registry, types, "win32", "CloseHandle")
        run_single_case(winnt, "win32:CloseHandle", case.value_names)
        assert captured["watchdog_ticks"] == 30_000


# ----------------------------------------------------------------------
# CLI --checkpoint / --resume
# ----------------------------------------------------------------------


class TestCliResume:
    def test_cli_resumes_interrupted_checkpoint(self, tmp_path, capsys):
        from repro.cli import main
        from repro.win32.variants import WINNT

        path = tmp_path / "cli.ckpt"
        seen = {"muts": 0}

        def die_after_five(variant, mut, position, total):
            if seen["muts"] == 5:
                raise _Interrupt()
            seen["muts"] += 1

        campaign = Campaign([WINNT], config=CampaignConfig(cap=40))
        with pytest.raises(_Interrupt):
            campaign.run(
                progress=die_after_five,
                checkpoint_path=path,
                checkpoint_every=1,
            )
        assert not load_checkpoint(path).complete

        # Resume via the CLI; --cap is adopted from the checkpoint.
        rc = main(
            [
                "--variants",
                "winnt",
                "--resume",
                str(path),
                "--tables",
                "table1",
                "--quiet",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        final = load_checkpoint(path)
        assert final.complete is True
        assert final.cap == 40
        assert final.variants == ["winnt"]

    def test_cli_resume_adopts_checkpoint_variants(self, tmp_path, capsys):
        """Without --variants, a resumed CLI run must finish the
        checkpoint's variants -- not silently restart all seven."""
        from repro.cli import main
        from repro.win32.variants import WIN98, WINNT

        path = tmp_path / "cli.ckpt"
        seen = {"muts": 0}

        def die_late(variant, mut, position, total):
            if seen["muts"] == 8:
                raise _Interrupt()
            seen["muts"] += 1

        campaign = Campaign([WIN98, WINNT], config=CampaignConfig(cap=40))
        with pytest.raises(_Interrupt):
            campaign.run(
                progress=die_late, checkpoint_path=path, checkpoint_every=1
            )

        rc = main(["--resume", str(path), "--tables", "table1", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Windows 98" in out and "Windows NT" in out
        assert "Linux" not in out, "resume must not re-run extra variants"
        final = load_checkpoint(path)
        assert final.complete is True
        assert final.variants == ["win98", "winnt"]
