"""The multi-tenant campaign service, end to end.

Small campaigns (a handful of MuTs, tiny caps) keep each test fast
while still exercising the real machinery: spawn-context workers,
shard checkpoints, lease expiry and reassignment, chaos transports,
disconnect/reconnect streaming, and the graceful drain.
"""

import os
import signal
import socket
import struct
import threading
import time

import pytest

from repro import ALL_VARIANTS
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.results_io import save_results
from repro.obs.recorder import MemoryRecorder
from repro.service.chaos import ChaosConfig, ChaosTransport
from repro.service.client import ServiceClient, ServiceError
from repro.service.rpc import (
    LAST_FRAGMENT,
    ProtocolError,
    RetryPolicy,
    RpcClient,
    SocketTransport,
)
from repro.service.server import CampaignService

SUBSET = ["GetThreadContext", "CloseHandle", "strcpy", "isalpha", "fclose"]
CAP = 25


def serial_bytes(tmp_path, variants, cap=CAP, muts=SUBSET):
    """The reference document: the same campaign run serially."""
    personalities = [p for p in ALL_VARIANTS if p.key in variants]
    results = Campaign(
        personalities, config=CampaignConfig(cap=cap), muts=list(muts)
    ).run()
    path = tmp_path / f"serial-{'-'.join(variants)}.json"
    save_results(results, path)
    return path.read_bytes()


def streamed_bytes(tmp_path, results, label):
    path = tmp_path / f"streamed-{label}.json"
    save_results(results, path)
    return path.read_bytes()


@pytest.fixture
def service(tmp_path):
    recorder = MemoryRecorder()
    svc = CampaignService(
        tmp_path / "data", max_workers=2, lease_s=4.0, recorder=recorder
    )
    svc.recorded = recorder
    svc.address = svc.listen()
    yield svc
    svc.close()


def event_kinds(recorder):
    counts = {}
    for record in recorder.records:
        counts[record["kind"]] = counts.get(record["kind"], 0) + 1
    return counts


class TestSingleTenant:
    def test_streamed_results_are_byte_identical_to_serial(
        self, tmp_path, service
    ):
        host, port = service.address
        client = ServiceClient.connect(host, port)
        job_id, created = client.submit(["winnt"], cap=CAP, muts=SUBSET)
        assert created
        results = client.stream(job_id, timeout=120)
        client.close()
        assert streamed_bytes(tmp_path, results, "one") == serial_bytes(
            tmp_path, ["winnt"]
        )
        # The service's own merged document matches too.
        assert (
            service.queue.results_file(job_id).read_bytes()
            == serial_bytes(tmp_path, ["winnt"])
        )

    def test_resubmission_deduplicates(self, service):
        host, port = service.address
        client = ServiceClient.connect(host, port)
        job_id, created = client.submit(["winnt"], cap=CAP, muts=SUBSET)
        again, created_again = client.submit(["winnt"], cap=CAP, muts=SUBSET)
        client.close()
        assert created and not created_again
        assert again == job_id

    def test_submit_rejects_unknown_variants(self, service):
        host, port = service.address
        client = ServiceClient.connect(host, port)
        with pytest.raises(ServiceError, match="unknown variants"):
            client.submit(["os2warp"], cap=CAP, muts=SUBSET)
        client.close()

    def test_status_and_queue_stats_snapshot(self, service):
        host, port = service.address
        client = ServiceClient.connect(host, port)
        job_id, _ = client.submit(["winnt"], cap=CAP, muts=SUBSET)
        client.stream(job_id, timeout=120)
        status = client.status(job_id)
        assert status["state"] == "done"
        assert status["shards"]["winnt"]["done"]
        stats = client.queue_stats()
        client.close()
        assert stats["jobs"].get("done") == 1
        assert stats["leases"]["double_grants_refused"] == 0


class TestConcurrentTenants:
    def test_four_chaotic_tenants_complete_byte_identical(
        self, tmp_path, service
    ):
        host, port = service.address
        tenants = {
            "t0": ["winnt"],
            "t1": ["win98"],
            "t2": ["linux"],
            "t3": ["wince"],
        }
        streamed: dict[str, object] = {}
        failures: list[str] = []

        def run_tenant(index, tenant, variants):
            # Drop+dup chaos on every connection, distinct schedules.
            chaos = ChaosConfig(
                seed=1000 + index, drop_rate=0.05, dup_rate=0.05
            )
            client = ServiceClient.connect(
                host, port, wrap=lambda t: ChaosTransport(t, chaos)
            )
            try:
                job_id, _ = client.submit(
                    variants, cap=CAP, muts=SUBSET, tenant=tenant
                )
                streamed[tenant] = client.stream(job_id, timeout=180)
            except Exception as exc:  # noqa: BLE001 - report in-test
                failures.append(f"{tenant}: {exc!r}")
            finally:
                client.close()

        threads = [
            threading.Thread(target=run_tenant, args=(i, tenant, variants))
            for i, (tenant, variants) in enumerate(tenants.items())
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=240)
        assert not failures
        assert all(not thread.is_alive() for thread in threads)
        for tenant, variants in tenants.items():
            assert streamed_bytes(
                tmp_path, streamed[tenant], tenant
            ) == serial_bytes(tmp_path, variants), tenant
        stats = event_kinds(service.recorded)
        assert stats["job_submitted"] == 4
        assert stats["job_finished"] == 4


def wait_for_worker(service, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pids = service.worker_pids()
        if pids:
            return sorted(pids.items())[0]
        time.sleep(0.02)
    raise AssertionError("no worker ever spawned")


class TestWorkerLoss:
    def test_sigkilled_worker_is_reassigned_and_job_completes(
        self, tmp_path, service
    ):
        host, port = service.address
        client = ServiceClient.connect(host, port)
        job_id, _ = client.submit(["winnt"], cap=CAP, muts=SUBSET)
        tag, pid = wait_for_worker(service)
        os.kill(pid, signal.SIGKILL)
        results = client.stream(job_id, timeout=180)
        status = client.status(job_id)
        stats = client.queue_stats()
        client.close()
        assert streamed_bytes(tmp_path, results, "killed") == serial_bytes(
            tmp_path, ["winnt"]
        )
        assert status["shards"]["winnt"]["attempt"] >= 2
        assert stats["leases"]["reassigned"] >= 1
        assert stats["leases"]["double_grants_refused"] == 0
        kinds = event_kinds(service.recorded)
        assert kinds.get("lease_reassigned", 0) >= 1

    def test_lease_expires_while_client_is_streaming(self, tmp_path, service):
        # The satellite edge: the worker goes silent (SIGSTOP -- alive
        # but wedged, so only heartbeat loss can catch it) while the
        # client is mid-stream.  The lease must expire, the shard must
        # be reassigned, and the stream must still complete with no
        # duplicate rows.
        host, port = service.address
        client = ServiceClient.connect(host, port)
        job_id, _ = client.submit(["win98"], cap=CAP, muts=SUBSET)
        state: dict = {}
        stopped: list[int] = []

        def stream():
            state["results"] = client.stream(job_id, state=state, timeout=180)

        thread = threading.Thread(target=stream)
        thread.start()
        tag, pid = wait_for_worker(service)
        os.kill(pid, signal.SIGSTOP)
        stopped.append(pid)
        try:
            thread.join(timeout=240)
        finally:
            for pid in stopped:
                try:
                    os.kill(pid, signal.SIGCONT)  # unstick for cleanup
                except ProcessLookupError:
                    pass
        assert not thread.is_alive()
        client.close()
        assert streamed_bytes(
            tmp_path, state["results"], "stalled"
        ) == serial_bytes(tmp_path, ["win98"])
        kinds = event_kinds(service.recorded)
        assert kinds.get("lease_expired", 0) >= 1
        assert kinds.get("lease_reassigned", 0) >= 1
        rows = state["rows"]
        keys = [(row["api"], row["mut"]) for row in rows]
        assert len(keys) == len(set(keys)), "duplicate rows streamed"


class TestShardedJobs:
    def test_sharded_submit_streams_byte_identical(self, tmp_path, service):
        """A shards=3 job runs each variant as three chained slices and
        still streams (and finalises) the serial bytes."""
        host, port = service.address
        client = ServiceClient.connect(host, port)
        job_id, created = client.submit(
            ["winnt"], cap=CAP, muts=SUBSET, shards=3
        )
        assert created
        results = client.stream(job_id, timeout=180)
        status = client.status(job_id)
        client.close()
        assert streamed_bytes(tmp_path, results, "sliced") == serial_bytes(
            tmp_path, ["winnt"]
        )
        assert (
            service.queue.results_file(job_id).read_bytes()
            == serial_bytes(tmp_path, ["winnt"])
        )
        record = service.queue.get(job_id)
        assert sorted(record.shards_done) == [
            "winnt#0", "winnt#1", "winnt#2"
        ]
        assert status["shards"]["winnt"]["done"]
        assert status["shards"]["winnt"]["slices"] == {
            "done": 3, "total": 3,
        }

    def test_sigkilled_slice_worker_is_reassigned(self, tmp_path, service):
        host, port = service.address
        client = ServiceClient.connect(host, port)
        job_id, _ = client.submit(
            ["win98"], cap=CAP, muts=SUBSET, shards=2
        )
        tag, pid = wait_for_worker(service)
        assert "#" in tag  # a slice worker, not a whole-variant one
        os.kill(pid, signal.SIGKILL)
        results = client.stream(job_id, timeout=240)
        stats = client.queue_stats()
        client.close()
        assert streamed_bytes(
            tmp_path, results, "sliced-killed"
        ) == serial_bytes(tmp_path, ["win98"])
        assert stats["leases"]["reassigned"] >= 1
        assert stats["leases"]["double_grants_refused"] == 0


class TestReconnect:
    def test_reconnecting_client_resumes_without_duplicates(
        self, tmp_path, service
    ):
        host, port = service.address
        client = ServiceClient.connect(host, port)
        job_id, _ = client.submit(["winnt"], cap=CAP, muts=SUBSET)
        state: dict = {}
        # Pin the worker (SIGSTOP) so the job cannot finish while the
        # first client is connected, stream until the short timeout
        # fires mid-job, then vanish.  The timeout plays the part of
        # the disconnect; the pin makes it deterministic.
        tag, pid = wait_for_worker(service)
        os.kill(pid, signal.SIGSTOP)
        try:
            with pytest.raises(Exception):  # noqa: B017 - RpcTimeout
                client.stream(job_id, state=state, timeout=0.5)
        finally:
            try:
                os.kill(pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
        client.close()
        rows_before = len(state.get("rows", []))
        reconnected = ServiceClient.connect(host, port)
        results = reconnected.stream(job_id, state=state, timeout=180)
        reconnected.close()
        assert streamed_bytes(
            tmp_path, results, "reconnect"
        ) == serial_bytes(tmp_path, ["winnt"])
        keys = [(row["api"], row["mut"]) for row in state["rows"]]
        assert len(keys) == len(set(keys)), "duplicate rows after reconnect"
        assert len(keys) >= rows_before
        kinds = event_kinds(service.recorded)
        assert kinds.get("client_disconnected", 0) >= 1


class TestDrain:
    def test_drain_with_nonempty_queue_persists_and_restart_finishes(
        self, tmp_path
    ):
        data = tmp_path / "data"
        svc = CampaignService(data, max_workers=1, lease_s=4.0)
        host, port = svc.listen()
        client = ServiceClient.connect(host, port)
        job_a, _ = client.submit(
            ["winnt"], cap=CAP, muts=SUBSET, tenant="a"
        )
        job_b, _ = client.submit(
            ["win98"], cap=CAP, muts=SUBSET, tenant="b"
        )
        client.close()
        svc.close()  # drain mid-run: job_b never even started
        assert (data / "queue.json").exists()

        svc2 = CampaignService(data, max_workers=2, lease_s=4.0)
        host, port = svc2.listen()
        client = ServiceClient.connect(host, port)
        for job_id, variants in ((job_a, ["winnt"]), (job_b, ["win98"])):
            results = client.stream(job_id, timeout=180)
            assert streamed_bytes(
                tmp_path, results, job_id
            ) == serial_bytes(tmp_path, variants)
        client.close()
        svc2.close()

    def test_draining_service_refuses_new_submissions(self, service):
        host, port = service.address
        service.drain()
        time.sleep(0.1)
        # Depending on how far the drain has progressed, either the
        # submit is refused (ServiceError) or the listener is already
        # gone (OSError/RpcError).  Both are correct refusals.
        with pytest.raises(Exception):  # noqa: B017 - any refusal is fine
            client = ServiceClient.connect(host, port)
            try:
                client.submit(["winnt"], cap=CAP, muts=SUBSET)
            finally:
                client.close()


class TestProtocolRobustness:
    def test_framing_garbage_closes_the_connection_with_typed_events(
        self, service
    ):
        host, port = service.address
        raw = socket.create_connection((host, port), timeout=5)
        # A length prefix far beyond MAX_RECORD: unresynchronisable
        # stream damage, not a retryable record fault.
        raw.sendall(struct.pack(">I", 0x7FFF_FFFF) + b"junk")
        deadline = time.monotonic() + 10
        closed = False
        raw.settimeout(0.2)
        while time.monotonic() < deadline:
            try:
                if raw.recv(4096) == b"":
                    closed = True
                    break
            except socket.timeout:
                continue
            except OSError:
                closed = True
                break
        raw.close()
        assert closed, "server kept a damaged stream open"
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            kinds = event_kinds(service.recorded)
            if kinds.get("protocol_error"):
                break
            time.sleep(0.02)
        kinds = event_kinds(service.recorded)
        assert kinds.get("protocol_error", 0) >= 1
        assert kinds.get("client_disconnected", 0) >= 1

    def test_mid_record_eof_is_a_protocol_error_event(self, service):
        host, port = service.address
        raw = socket.create_connection((host, port), timeout=5)
        # A plausible header promising 100 bytes, then hang up.
        raw.sendall(struct.pack(">I", LAST_FRAGMENT | 100) + b"short")
        raw.close()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if event_kinds(service.recorded).get("protocol_error"):
                break
            time.sleep(0.02)
        kinds = event_kinds(service.recorded)
        assert kinds.get("protocol_error", 0) >= 1

    def test_rpc_client_surfaces_typed_protocol_error(self):
        # Satellite: a malformed length prefix mid-stream must raise
        # ProtocolError (and close), not a raw struct/OS error.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        host, port = listener.getsockname()

        def evil_server():
            conn, _ = listener.accept()
            conn.recv(4096)  # swallow the call
            # Reply header promises an implausibly huge record.
            conn.sendall(struct.pack(">I", 0x7FFF_FFFF))
            conn.close()

        thread = threading.Thread(target=evil_server, daemon=True)
        thread.start()
        sock = socket.create_connection((host, port), timeout=5)
        client = RpcClient(SocketTransport(sock), retry=None)
        with pytest.raises(ProtocolError, match="implausible"):
            client.call(1, b"")
        listener.close()

    def test_retrying_rpc_client_does_not_retry_stream_damage(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        host, port = listener.getsockname()
        accepted: list[int] = []

        def evil_server():
            conn, _ = listener.accept()
            accepted.append(1)
            conn.recv(4096)
            conn.sendall(struct.pack(">I", LAST_FRAGMENT | 64) + b"trunc")
            conn.close()

        thread = threading.Thread(target=evil_server, daemon=True)
        thread.start()
        sock = socket.create_connection((host, port), timeout=5)
        recorder = MemoryRecorder()
        client = RpcClient(
            SocketTransport(sock),
            retry=RetryPolicy(attempts=5, call_timeout=2.0),
            recorder=recorder,
        )
        with pytest.raises(ProtocolError, match="mid-record"):
            client.call(1, b"")
        # One transmission only: framing damage is not retryable.
        assert sum(accepted) == 1
        assert [r["kind"] for r in recorder.records] == ["protocol_error"]
        assert recorder.records[0]["where"] == "client"
        listener.close()


class TestSatelliteKnobs:
    def test_connect_timeout_env_default(self, monkeypatch):
        from repro.service.client import default_connect_timeout

        monkeypatch.delenv("BALLISTA_CONNECT_TIMEOUT", raising=False)
        assert default_connect_timeout() == 30.0
        monkeypatch.setenv("BALLISTA_CONNECT_TIMEOUT", "2.5")
        assert default_connect_timeout() == 2.5

    @pytest.mark.parametrize("raw", ["soon", "", "0", "-3"])
    def test_connect_timeout_env_rejects_junk(self, monkeypatch, raw):
        from repro.service.client import default_connect_timeout

        monkeypatch.setenv("BALLISTA_CONNECT_TIMEOUT", raw)
        with pytest.raises(ValueError, match="BALLISTA_CONNECT_TIMEOUT"):
            default_connect_timeout()

    def test_connect_passes_timeout_to_socket(self, monkeypatch, service):
        seen = {}
        real = socket.create_connection

        def spy(address, timeout=None, **kwargs):
            seen["timeout"] = timeout
            return real(address, timeout=timeout, **kwargs)

        monkeypatch.setattr(socket, "create_connection", spy)
        host, port = service.address
        client = ServiceClient.connect(host, port, timeout=7.5)
        client.close()
        assert seen["timeout"] == 7.5
        monkeypatch.setenv("BALLISTA_CONNECT_TIMEOUT", "11")
        client = ServiceClient.connect(host, port)
        client.close()
        assert seen["timeout"] == 11.0

    @pytest.mark.parametrize("raw", ["lots", "-0.1", "1.5"])
    def test_chaos_rate_env_rejects_junk(self, monkeypatch, raw):
        from repro.service.chaos import chaos_rate_from_env

        monkeypatch.setenv("BALLISTA_CHAOS_RATE", raw)
        with pytest.raises(ValueError, match="BALLISTA_CHAOS_RATE"):
            chaos_rate_from_env()

    def test_chaos_config_from_env(self, monkeypatch):
        monkeypatch.setenv("BALLISTA_CHAOS_RATE", "0.05")
        monkeypatch.setenv("BALLISTA_CHAOS_SEED", "2024")
        config = ChaosConfig.from_env()
        assert config.drop_rate == 0.05
        assert config.dup_rate == 0.05
        assert config.seed == 2024

    def test_chaos_config_validates_rates(self):
        with pytest.raises(ValueError, match="drop_rate"):
            ChaosConfig(drop_rate=1.5)
        with pytest.raises(ValueError, match="dup_rate"):
            ChaosConfig(dup_rate=-0.1)
        with pytest.raises(ValueError, match="corrupt_rate"):
            ChaosConfig(corrupt_rate="high")
