"""Unit tests for the virtual address space."""

import pytest

from repro.sim.errors import AccessViolation, MisalignedAccess
from repro.sim.memory import (
    AddressSpace,
    Protection,
    Region,
    SHARED_BASE,
    USER_BASE,
)


@pytest.fixture()
def mem() -> AddressSpace:
    return AddressSpace()


class TestMapping:
    def test_map_returns_region_in_user_range(self, mem):
        region = mem.map(64)
        assert region.start >= USER_BASE
        assert region.size == 64

    def test_regions_do_not_touch(self, mem):
        first = mem.map(64)
        second = mem.map(64)
        assert second.start >= first.end + 1  # guard gap between regions

    def test_fixed_placement(self, mem):
        region = mem.map(32, at=0x0050_0000)
        assert region.start == 0x0050_0000

    def test_overlapping_fixed_placement_rejected(self, mem):
        mem.map(0x1000, at=0x0050_0000)
        with pytest.raises(ValueError, match="overlapping"):
            mem.map(0x1000, at=0x0050_0800)

    def test_fixed_placement_advances_allocator(self, mem):
        fixed = mem.map(0x1000, at=0x0100_0000)
        bumped = mem.map(0x1000)
        assert bumped.start > fixed.end

    def test_shared_range_allocation(self, mem):
        region = mem.map(64, shared=True)
        assert region.start >= SHARED_BASE

    def test_zero_size_region_rejected(self):
        with pytest.raises(ValueError):
            Region(USER_BASE, 0, Protection.RW)

    def test_unmap_then_access_faults(self, mem):
        region = mem.map(64)
        mem.unmap(region)
        assert region.freed
        with pytest.raises(AccessViolation):
            mem.read(region.start, 1)

    def test_unmap_unknown_region_raises(self, mem):
        region = Region(0x0060_0000, 16, Protection.RW)
        with pytest.raises(KeyError):
            mem.unmap(region)

    def test_attach_aliases_backing_storage(self, mem):
        other = AddressSpace()
        shared = Region(SHARED_BASE, 64, Protection.RW, tag="shared")
        mem.attach(shared)
        other.attach(shared)
        mem.write(SHARED_BASE, b"xyz")
        assert other.read(SHARED_BASE, 3) == b"xyz"


class TestFaults:
    def test_null_is_unmapped(self, mem):
        with pytest.raises(AccessViolation):
            mem.read(0, 1)

    def test_read_past_end_faults(self, mem):
        region = mem.map(16)
        with pytest.raises(AccessViolation):
            mem.read(region.start + 8, 16)

    def test_write_to_readonly_faults(self, mem):
        region = mem.map(16, Protection.READ)
        with pytest.raises(AccessViolation) as info:
            mem.write(region.start, b"x")
        assert info.value.reason == "protection"

    def test_read_from_readonly_allowed(self, mem):
        region = mem.map(16, Protection.READ)
        assert mem.read(region.start, 4) == b"\x00" * 4

    def test_fault_reports_address_and_access(self, mem):
        with pytest.raises(AccessViolation) as info:
            mem.write(0xDEAD_0000, b"hi")
        assert info.value.address == 0xDEAD_0000
        assert info.value.access == "write"

    def test_negative_address_wraps_to_32_bits(self, mem):
        with pytest.raises(AccessViolation) as info:
            mem.read(-1, 1)
        assert info.value.address == 0xFFFF_FFFF


class TestTypedAccess:
    def test_u32_roundtrip(self, mem):
        region = mem.map(16)
        mem.write_u32(region.start, 0xDEADBEEF)
        assert mem.read_u32(region.start) == 0xDEADBEEF

    def test_i32_roundtrip_negative(self, mem):
        region = mem.map(16)
        mem.write_i32(region.start, -12345)
        assert mem.read_i32(region.start) == -12345

    def test_u64_roundtrip(self, mem):
        region = mem.map(16)
        mem.write_u64(region.start, 0x0123_4567_89AB_CDEF)
        assert mem.read_u64(region.start) == 0x0123_4567_89AB_CDEF

    def test_u16_roundtrip(self, mem):
        region = mem.map(16)
        mem.write_u16(region.start, 0xBEEF)
        assert mem.read_u16(region.start) == 0xBEEF

    def test_strict_alignment_faults_odd_u32(self):
        strict = AddressSpace(strict_alignment=True)
        region = strict.map(16)
        with pytest.raises(MisalignedAccess):
            strict.read_u32(region.start + 1)

    def test_lax_alignment_allows_odd_u32(self, mem):
        region = mem.map(16)
        mem.write(region.start, b"\x01\x02\x03\x04\x05")
        assert mem.read_u32(region.start + 1) == 0x0504_0302


class TestCStrings:
    def test_bytewise_scan_stops_at_nul(self, mem):
        addr = mem.alloc_cstring(b"hello")
        assert mem.read_cstring(addr) == b"hello"

    def test_unterminated_string_faults(self, mem):
        addr = mem.alloc_cstring(b"ZZZZ", terminated=False, round_to=1)
        with pytest.raises(AccessViolation):
            mem.read_cstring(addr)

    def test_word_scan_equivalent_on_rounded_strings(self, mem):
        addr = mem.alloc_cstring(b"hello world")
        assert mem.read_cstring(addr, word_at_a_time=True) == b"hello world"

    def test_word_scan_faults_on_edge_terminated_string(self, mem):
        # 15-byte region, terminator at the last byte: the aligned word
        # at offset 12 covers bytes 12..15 and byte 15 is unmapped.
        addr = mem.alloc_cstring(b"edge-string-xx", round_to=1)
        assert mem.read_cstring(addr) == b"edge-string-xx"
        with pytest.raises(AccessViolation):
            mem.read_cstring(addr, word_at_a_time=True)

    def test_word_scan_handles_unaligned_start(self, mem):
        addr = mem.alloc_cstring(b"_ballista")
        assert mem.read_cstring(addr + 1, word_at_a_time=True) == b"ballista"

    def test_wstring_roundtrip(self, mem):
        region = mem.map(32)
        mem.write_wstring(region.start, "hi".encode("utf-16-le"))
        assert mem.read_wstring(region.start) == "hi".encode("utf-16-le")

    def test_alloc_rounding_pads_to_word_multiple(self, mem):
        addr = mem.alloc_cstring(b"abc")  # 4 bytes incl NUL -> stays 4
        region = mem.find(addr)
        assert region.size % 4 == 0

    def test_alloc_cstring_empty(self, mem):
        addr = mem.alloc_cstring(b"")
        assert mem.read_cstring(addr) == b""


class TestLookup:
    def test_find_hit_and_miss(self, mem):
        region = mem.map(64)
        assert mem.find(region.start + 10) is region
        assert mem.find(region.end) is None

    def test_is_mapped_range_check(self, mem):
        region = mem.map(64)
        assert mem.is_mapped(region.start, 64)
        assert not mem.is_mapped(region.start, 65)
        assert not mem.is_mapped(0, 1)

    def test_regions_iteration_sorted(self, mem):
        mem.map(16, at=0x0070_0000)
        mem.map(16, at=0x0060_0000)
        starts = [r.start for r in mem.regions()]
        assert starts == sorted(starts)
