"""Unit tests for the POSIX system-call layer (the EFAULT discipline)."""

import pytest

from repro.core.context import TestContext
from repro.libc import errno_codes as E
from repro.posix.linux import LINUX
from repro.sim.errors import FatalSignal, TaskHang
from repro.sim.machine import Machine


@pytest.fixture()
def px():
    machine = Machine(LINUX)
    ctx = TestContext(machine, machine.spawn_process())
    return ctx, ctx.posix


def open_fd(ctx, api, content=b"posix file data", flags=0):
    path = ctx.existing_file(content)
    return api.open(ctx.cstring(path.encode()), flags, 0o644)


class TestIoPrimitives:
    def test_open_read_close(self, px):
        ctx, api = px
        fd = open_fd(ctx, api)
        assert fd >= 3
        out = ctx.buffer(32)
        assert api.read(fd, out, 5) == 5
        assert ctx.mem.read(out, 5) == b"posix"
        assert api.close(fd) == 0
        assert api.close(fd) == -1
        assert ctx.process.errno == E.EBADF

    def test_read_bad_buffer_is_efault_not_fault(self, px):
        ctx, api = px
        fd = open_fd(ctx, api)
        assert api.read(fd, 0, 10) == -1
        assert ctx.process.errno == E.EFAULT  # the Linux syscall grace

    def test_write_bad_buffer_is_efault(self, px):
        ctx, api = px
        fd = open_fd(ctx, api, flags=0o1)
        assert api.write(fd, 0xDEAD_0000, 10) == -1
        assert ctx.process.errno == E.EFAULT

    def test_write_appends(self, px):
        ctx, api = px
        path = ctx.existing_file(b"")
        fd = api.open(ctx.cstring(path.encode()), 0o1, 0)
        src = ctx.buffer(4, b"data")
        assert api.write(fd, src, 4) == 4
        assert bytes(ctx.machine.fs.lookup(path).data) == b"data"

    def test_read_bad_fd(self, px):
        ctx, api = px
        assert api.read(-1, ctx.buffer(8), 8) == -1
        assert ctx.process.errno == E.EBADF
        assert api.read(9999, ctx.buffer(8), 8) == -1

    def test_dup_and_dup2_share_offset(self, px):
        ctx, api = px
        fd = open_fd(ctx, api)
        dup = api.dup(fd)
        out = ctx.buffer(8)
        api.read(fd, out, 5)
        api.read(dup, out, 1)
        assert ctx.mem.read(out, 1) == b" "  # continued where fd left off

    def test_dup2_replaces_target(self, px):
        ctx, api = px
        fd = open_fd(ctx, api)
        other = open_fd(ctx, api)
        assert api.dup2(fd, other) == other
        assert api.dup2(fd, fd) == fd
        assert api.dup2(fd, -1) == -1

    def test_lseek(self, px):
        ctx, api = px
        fd = open_fd(ctx, api, b"0123456789")
        assert api.lseek(fd, 4, 0) == 4
        assert api.lseek(fd, -2, 2) == 8
        assert api.lseek(fd, 0, 9) == -1
        assert ctx.process.errno == E.EINVAL

    def test_pipe_roundtrip(self, px):
        ctx, api = px
        fds = ctx.buffer(8)
        assert api.pipe(fds) == 0
        read_fd = ctx.mem.read_u32(fds)
        write_fd = ctx.mem.read_u32(fds + 4)
        src = ctx.buffer(4, b"ping")
        assert api.write(write_fd, src, 4) == 4
        out = ctx.buffer(4)
        assert api.read(read_fd, out, 4) == 4
        assert ctx.mem.read(out, 4) == b"ping"

    def test_pipe_bad_array_is_efault(self, px):
        ctx, api = px
        assert api.pipe(0) == -1
        assert ctx.process.errno == E.EFAULT

    def test_fsync_on_pipe_is_einval(self, px):
        ctx, api = px
        fds = ctx.buffer(8)
        api.pipe(fds)
        assert api.fsync(ctx.mem.read_u32(fds)) == -1
        assert ctx.process.errno == E.EINVAL

    def test_fcntl_dupfd_and_getfl(self, px):
        ctx, api = px
        fd = open_fd(ctx, api)
        assert api.fcntl(fd, 0, 10) >= 10  # F_DUPFD
        assert api.fcntl(fd, 3, 0) == 0  # F_GETFL
        assert api.fcntl(fd, 99, 0) == -1


class TestFileSystemCalls:
    def test_open_create_excl(self, px):
        ctx, api = px
        name = ctx.cstring(b"/tmp/newfile")
        fd = api.open(name, 0o100 | 0o200 | 0o2, 0o644)
        assert fd >= 3
        assert api.open(name, 0o100 | 0o200 | 0o2, 0o644) == -1
        assert ctx.process.errno == E.EEXIST

    def test_open_bogus_flags_einval(self, px):
        ctx, api = px
        assert api.open(ctx.cstring(b"/tmp/x"), 0x7F00_0000, 0) == -1
        assert ctx.process.errno == E.EINVAL

    def test_open_bad_path_pointer_is_efault(self, px):
        ctx, api = px
        assert api.open(0, 0, 0) == -1
        assert ctx.process.errno == E.EFAULT

    def test_stat_fills_buffer(self, px):
        ctx, api = px
        path = ctx.existing_file(b"12345")
        buf = ctx.buffer(64)
        assert api.stat(ctx.cstring(path.encode()), buf) == 0
        assert ctx.mem.read_u32(buf + 12) == 5  # st_size

    def test_stat_small_buffer_is_efault(self, px):
        ctx, api = px
        path = ctx.existing_file()
        assert api.stat(ctx.cstring(path.encode()), ctx.buffer(16)) == -1
        assert ctx.process.errno == E.EFAULT

    def test_fstat(self, px):
        ctx, api = px
        fd = open_fd(ctx, api)
        assert api.fstat(fd, ctx.buffer(64)) == 0
        assert api.fstat(99, ctx.buffer(64)) == -1

    def test_link_and_unlink(self, px):
        ctx, api = px
        path = ctx.existing_file(b"shared")
        assert api.link(ctx.cstring(path.encode()), ctx.cstring(b"/tmp/hard")) == 0
        assert api.unlink(ctx.cstring(path.encode())) == 0
        assert bytes(ctx.machine.fs.lookup("/tmp/hard").data) == b"shared"

    def test_symlink_readlink(self, px):
        ctx, api = px
        assert api.symlink(ctx.cstring(b"/tmp/target"), ctx.cstring(b"/tmp/lnk")) == 0
        out = ctx.buffer(64)
        n = api.readlink(ctx.cstring(b"/tmp/lnk"), out, 64)
        assert ctx.mem.read(out, n) == b"/tmp/target"

    def test_readlink_on_regular_file_einval(self, px):
        ctx, api = px
        path = ctx.existing_file()
        assert api.readlink(ctx.cstring(path.encode()), ctx.buffer(8), 8) == -1
        assert ctx.process.errno == E.EINVAL

    def test_mkdir_rmdir_chdir_getcwd(self, px):
        ctx, api = px
        assert api.mkdir(ctx.cstring(b"/tmp/pd"), 0o755) == 0
        assert api.chdir(ctx.cstring(b"/tmp/pd")) == 0
        out = ctx.buffer(64)
        assert api.getcwd(out, 64) == out
        assert ctx.mem.read_cstring(out) == b"/tmp/pd"
        api.chdir(ctx.cstring(b"/tmp"))
        assert api.rmdir(ctx.cstring(b"/tmp/pd")) == 0

    def test_getcwd_small_buffer_erange(self, px):
        ctx, api = px
        assert api.getcwd(ctx.buffer(1), 1) == 0
        assert ctx.process.errno == E.ERANGE

    def test_access_modes(self, px):
        ctx, api = px
        path = ctx.existing_file()
        encoded = ctx.cstring(path.encode())
        assert api.access(encoded, 0) == 0
        node = ctx.machine.fs.lookup(path)
        node.read_only = True
        assert api.access(encoded, 0o2) == -1
        assert ctx.process.errno == E.EACCES

    def test_chmod_fchmod(self, px):
        ctx, api = px
        path = ctx.existing_file()
        assert api.chmod(ctx.cstring(path.encode()), 0o600) == 0
        assert ctx.machine.fs.lookup(path).mode == 0o600

    def test_chown_unprivileged_eperm(self, px):
        ctx, api = px
        path = ctx.existing_file()
        assert api.chown(ctx.cstring(path.encode()), 0, 0) == -1
        assert ctx.process.errno == E.EPERM
        assert api.chown(ctx.cstring(path.encode()), ctx.process.uid, -1) == 0

    def test_truncate_ftruncate(self, px):
        ctx, api = px
        path = ctx.existing_file(b"0123456789")
        assert api.truncate(ctx.cstring(path.encode()), 4) == 0
        assert ctx.machine.fs.lookup(path).size == 4
        fd = api.open(ctx.cstring(path.encode()), 0o2, 0)
        assert api.ftruncate(fd, -1) == -1

    def test_umask(self, px):
        ctx, api = px
        old = api.umask(0o027)
        assert old == 0o022
        assert api.umask(0o022) == 0o027

    def test_mkfifo_and_mknod(self, px):
        ctx, api = px
        assert api.mkfifo(ctx.cstring(b"/tmp/fifo"), 0o644) == 0
        assert ctx.machine.fs.lookup("/tmp/fifo").mode & 0o010000
        assert api.mknod(ctx.cstring(b"/tmp/nod"), 0o100644, 0) == 0
        assert api.mknod(ctx.cstring(b"/tmp/dev"), 0o020644, 5) == -1  # device

    def test_statfs(self, px):
        ctx, api = px
        buf = ctx.buffer(64)
        assert api.statfs(ctx.cstring(b"/tmp"), buf) == 0
        assert ctx.mem.read_u32(buf) == 0xEF53

    def test_pathconf(self, px):
        ctx, api = px
        assert api.pathconf(ctx.cstring(b"/tmp"), 0) == 255
        assert api.pathconf(ctx.cstring(b"/tmp"), 99) == -1


class TestProcessCalls:
    def test_fork_then_wait(self, px):
        ctx, api = px
        child = api.fork()
        assert child > 0
        status = ctx.buffer(8)
        assert api.wait(status) == child
        assert api.wait(status) == -1
        assert ctx.process.errno == E.ECHILD

    def test_waitpid_wnohang(self, px):
        ctx, api = px
        assert api.waitpid(-1, 0, 1) == -1  # no children yet
        child = api.fork()
        assert api.waitpid(child, 0, 0) == child

    def test_kill_sig0_is_permission_probe(self, px):
        ctx, api = px
        assert api.kill(ctx.process.pid, 0) == 0

    def test_kill_self_with_fatal_signal_aborts(self, px):
        ctx, api = px
        with pytest.raises(FatalSignal) as info:
            api.kill(ctx.process.pid, 15)
        assert info.value.posix_signal == "SIGTERM"

    def test_kill_invalid_signal(self, px):
        ctx, api = px
        assert api.kill(ctx.process.pid, 999) == -1
        assert ctx.process.errno == E.EINVAL

    def test_kill_init_is_eperm(self, px):
        ctx, api = px
        assert api.kill(1, 15) == -1
        assert ctx.process.errno == E.EPERM

    def test_execve_validates_image(self, px):
        ctx, api = px
        path = ctx.existing_file(b"#!/bin/sh")
        ctx.machine.fs.lookup(path).mode = 0o755
        argv = ctx.buffer(8)
        assert api.execve(ctx.cstring(path.encode()), argv, 0) == 0

    def test_execve_not_executable_is_eacces(self, px):
        ctx, api = px
        path = ctx.existing_file()
        assert api.execv(ctx.cstring(path.encode()), 0) == -1
        assert ctx.process.errno == E.EACCES

    def test_execve_bad_argv_is_efault(self, px):
        ctx, api = px
        path = ctx.existing_file()
        ctx.machine.fs.lookup(path).mode = 0o755
        assert api.execve(ctx.cstring(path.encode()), 0xDEAD_0000, 0) == -1
        assert ctx.process.errno == E.EFAULT

    def test_signal_handlers(self, px):
        ctx, api = px
        assert api.signal(15, 1) == 0
        assert api.signal(9, 1) == -1  # SIGKILL cannot be caught
        assert api.sigaction(15, 0, ctx.buffer(16)) == 0
        assert api.sigaction(15, 0xDEAD_0000, 0) == -1
        assert ctx.process.errno == E.EFAULT

    def test_sigprocmask_and_pending(self, px):
        ctx, api = px
        new = ctx.buffer(8)
        old = ctx.buffer(8)
        assert api.sigprocmask(0, new, old) == 0
        assert api.sigpending(ctx.buffer(8)) == 0
        assert api.sigpending(0) == -1

    def test_identity_calls(self, px):
        ctx, api = px
        assert api.getpid() == ctx.process.pid
        assert api.getppid() == 1
        assert api.getpgrp() == ctx.process.pid
        assert api.setpgid(0, 0) == 0
        assert api.setsid() == -1

    def test_priorities(self, px):
        ctx, api = px
        assert api.nice(5) == 5
        assert api.getpriority(0, 0) == 0
        assert api.getpriority(9, 0) == -1
        assert api.setpriority(0, 0, 5) == 0
        assert api.setpriority(0, 0, -5) == -1  # needs privilege

    def test_sleep_and_usleep(self, px):
        ctx, api = px
        ctx.machine.clock.begin_call("sleep")
        assert api.sleep(2) == 0
        assert api.usleep(2_000_000) == -1  # >= 1e6 is EINVAL
        with pytest.raises(TaskHang):
            api.sleep(0x7FFF_FFFF)

    def test_itimers(self, px):
        ctx, api = px
        assert api.getitimer(0, ctx.buffer(16)) == 0
        assert api.getitimer(9, ctx.buffer(16)) == -1
        assert api.setitimer(0, ctx.buffer(16), 0) == 0
        assert api.setitimer(0, 0, 0) == -1  # EFAULT on new_value


class TestEnvironmentCalls:
    def test_uids_and_gids(self, px):
        ctx, api = px
        assert api.getuid() == 1000
        assert api.setuid(1000) == 0
        assert api.setuid(0) == -1
        assert ctx.process.errno == E.EPERM
        assert api.setgid(1000) == 0

    def test_getgroups(self, px):
        ctx, api = px
        assert api.getgroups(0, 0) == 1
        out = ctx.buffer(8)
        assert api.getgroups(4, out) == 1
        assert ctx.mem.read_u32(out) == 1000
        assert api.setgroups(1, out) == -1  # privileged

    def test_uname(self, px):
        ctx, api = px
        buf = ctx.buffer(512)
        assert api.uname(buf) == 0
        assert ctx.mem.read_cstring(buf) == b"Linux"
        assert api.uname(0) == -1
        assert ctx.process.errno == E.EFAULT

    def test_hostname(self, px):
        ctx, api = px
        out = ctx.buffer(32)
        assert api.gethostname(out, 32) == 0
        assert ctx.mem.read_cstring(out) == b"ballista"
        assert api.gethostname(out, 2) == -1
        assert api.sethostname(ctx.cstring(b"new"), 3) == -1  # privileged

    def test_rlimits(self, px):
        ctx, api = px
        buf = ctx.buffer(8)
        assert api.getrlimit(0, buf) == 0
        assert api.getrlimit(99, buf) == -1
        ctx.mem.write_u32(buf, 10)
        ctx.mem.write_u32(buf + 4, 5)
        assert api.setrlimit(0, buf) == -1  # soft > hard

    def test_times_and_sysconf(self, px):
        ctx, api = px
        assert api.times(ctx.buffer(16)) >= 0
        assert api.sysconf(8) == 4096
        assert api.sysconf(77) == -1


class TestMemoryCalls:
    def test_mmap_anonymous(self, px):
        ctx, api = px
        addr = api.mmap(0, 4096, 0x3, 0x22, -1, 0)
        assert addr not in (0, 0xFFFF_FFFF)
        ctx.mem.write(addr, b"mapped")

    def test_mmap_file_backed(self, px):
        ctx, api = px
        fd = open_fd(ctx, api, b"mapped file content")
        addr = api.mmap(0, 10, 0x1, 0x02, fd, 0)
        assert ctx.mem.read(addr, 6) == b"mapped"

    def test_mmap_invalid_args(self, px):
        ctx, api = px
        assert api.mmap(0, 0, 0x1, 0x02, -1, 0) == 0xFFFF_FFFF
        assert api.mmap(0, 4096, 0x1, 0, -1, 0) == 0xFFFF_FFFF  # no MAP_* kind
        assert api.mmap(0, 4096, 0x1, 0x22, -1, 100) == 0xFFFF_FFFF  # offset
        assert api.mmap(0, 4096, 0x1, 0x02, 99, 0) == 0xFFFF_FFFF  # bad fd

    def test_munmap(self, px):
        ctx, api = px
        addr = api.mmap(0, 4096, 0x3, 0x22, -1, 0)
        assert api.munmap(addr, 4096) == 0
        assert api.munmap(addr, 4096) == -1

    def test_mprotect(self, px):
        ctx, api = px
        addr = api.mmap(0, 4096, 0x3, 0x22, -1, 0)
        assert api.mprotect(addr, 4096, 0x1) == 0
        from repro.sim.errors import AccessViolation

        with pytest.raises(AccessViolation):
            ctx.mem.write(addr, b"x")

    def test_mlock_family(self, px):
        ctx, api = px
        addr = api.mmap(0, 4096, 0x3, 0x22, -1, 0)
        assert api.mlock(addr, 4096) == 0
        assert api.munlock(addr, 4096) == 0
        assert api.mlock(0, 16) == -1
        assert api.mlockall(0x1) == 0
        assert api.mlockall(0x8) == -1
        assert api.munlockall() == 0

    def test_brk_and_sbrk(self, px):
        ctx, api = px
        base = api.brk(0)
        assert base != 0
        assert api.sbrk(0x1000) == base
        assert api.brk(0) == base + 0x1000
        assert api.brk(base - 1) == -1

    def test_shm(self, px):
        ctx, api = px
        shmid = api.shmget(42, 4096, 0)
        assert shmid > 0
        addr = api.shmat(shmid, 0, 0)
        assert addr not in (0, 0xFFFF_FFFF)
        assert api.shmat(999, 0, 0) == 0xFFFF_FFFF
        assert api.shmget(1, 0, 0) == -1
