"""Unit tests for the executor, classifier, campaign, and result store."""

import pytest

from repro.core.campaign import Campaign, CampaignConfig, run_single_case
from repro.core.classify import classify_exception
from repro.core.crash_scale import CaseCode, Severity
from repro.core.executor import Executor
from repro.core.generator import CaseGenerator, TestCase
from repro.core.mut import MuT, MuTRegistry
from repro.core.results import MuTResult, ResultSet
from repro.core.types import TypeRegistry
from repro.sim.errors import (
    AccessViolation,
    SoftwareAbort,
    SystemCrash,
    TaskHang,
    ThrownException,
)
from repro.sim.machine import Machine
from repro.win32.variants import WIN98, WINNT


# ----------------------------------------------------------------------
# A miniature registry with one MuT per behaviour
# ----------------------------------------------------------------------


def behaviour_registry() -> tuple[MuTRegistry, TypeRegistry]:
    types = TypeRegistry()
    trigger = types.new_type("trigger")
    trigger.add("GOOD", lambda ctx: 0)
    trigger.add("BAD", lambda ctx: 1, exceptional=True)

    def behave(ctx, args, *, mode):
        (value,) = args
        if value == 0:
            return 0
        if mode == "abort":
            raise AccessViolation(0, "read")
        if mode == "hang":
            ctx.machine.clock.begin_call("hang")
            ctx.machine.clock.block_forever()
        if mode == "crash":
            ctx.machine.panic("boom", "crashy")
        if mode == "corrupt":
            ctx.machine.note_corruption("leaky")
            return 0
        if mode == "silent":
            return 0
        if mode == "error":
            ctx.win32.fail(87)
            return 0
        if mode == "throw":
            raise ThrownException(0xDEAD, recoverable=True)
        raise AssertionError(f"unknown mode {mode}")

    registry = MuTRegistry()
    for mode in ("abort", "hang", "crash", "corrupt", "silent", "error", "throw"):
        registry.register(
            MuT(
                f"{mode}y",
                "win32",
                "I/O Primitives",
                ("trigger",),
                lambda ctx, args, m=mode: behave(ctx, args, mode=m),
            )
        )
    return registry, types


@pytest.fixture()
def mini():
    return behaviour_registry()


def run_one(personality, registry, types, mut_name, value_name):
    machine = Machine(personality)
    generator = CaseGenerator(types)
    executor = Executor(machine, generator)
    mut = registry.get("win32", mut_name)
    case = TestCase(mut_name, 0, (value_name,))
    return executor.run_case(mut, case), machine


class TestExecutorClassification:
    def test_pass_no_error(self, mini, winnt):
        registry, types = mini
        outcome, _ = run_one(winnt, registry, types, "silenty", "GOOD")
        assert outcome.code is CaseCode.PASS_NO_ERROR
        assert not outcome.exceptional_input

    def test_silent_is_pass_no_error_with_exceptional_input(self, mini, winnt):
        registry, types = mini
        outcome, _ = run_one(winnt, registry, types, "silenty", "BAD")
        assert outcome.code is CaseCode.PASS_NO_ERROR
        assert outcome.exceptional_input

    def test_error_return_is_pass_error(self, mini, winnt):
        registry, types = mini
        outcome, _ = run_one(winnt, registry, types, "errory", "BAD")
        assert outcome.code is CaseCode.PASS_ERROR

    def test_abort(self, mini, winnt):
        registry, types = mini
        outcome, machine = run_one(winnt, registry, types, "aborty", "BAD")
        assert outcome.code is CaseCode.ABORT
        assert outcome.detail == "EXCEPTION_ACCESS_VIOLATION"
        assert not machine.crashed

    def test_restart(self, mini, winnt):
        registry, types = mini
        outcome, _ = run_one(winnt, registry, types, "hangy", "BAD")
        assert outcome.code is CaseCode.RESTART

    def test_catastrophic(self, mini, winnt):
        registry, types = mini
        outcome, machine = run_one(winnt, registry, types, "crashy", "BAD")
        assert outcome.code is CaseCode.CATASTROPHIC
        assert machine.crashed

    def test_recoverable_thrown_exception_is_error_report(self, mini, winnt):
        registry, types = mini
        outcome, _ = run_one(winnt, registry, types, "throwy", "BAD")
        assert outcome.code is CaseCode.PASS_ERROR
        assert outcome.detail.startswith("thrown")

    def test_executor_refuses_crashed_machine(self, mini, winnt):
        from repro.sim.errors import MachineCrashed

        registry, types = mini
        machine = Machine(winnt)
        executor = Executor(machine, CaseGenerator(types))
        mut = registry.get("win32", "crashy")
        executor.run_case(mut, TestCase("crashy", 0, ("BAD",)))
        with pytest.raises(MachineCrashed):
            executor.run_case(mut, TestCase("crashy", 1, ("BAD",)))


class TestClassifier:
    def test_mapping(self):
        assert classify_exception(SystemCrash("x"), "win32")[0] is CaseCode.CATASTROPHIC
        assert classify_exception(TaskHang("f", 1), "win32")[0] is CaseCode.RESTART
        assert classify_exception(AccessViolation(0, "read"), "posix") == (
            CaseCode.ABORT,
            "SIGSEGV",
        )
        assert classify_exception(AccessViolation(0, "read"), "win32") == (
            CaseCode.ABORT,
            "EXCEPTION_ACCESS_VIOLATION",
        )
        assert classify_exception(SoftwareAbort("free"), "posix")[1] == "SIGABRT"

    def test_unrecoverable_thrown_exception_aborts(self):
        code, _ = classify_exception(ThrownException(1, recoverable=False), "win32")
        assert code is CaseCode.ABORT

    def test_severity_ordering(self):
        assert Severity.CATASTROPHIC < Severity.RESTART < Severity.ABORT


class TestCampaign:
    def test_catastrophic_interrupts_mut(self, mini, winnt):
        registry, types = mini
        campaign = Campaign(
            [winnt], registry=registry, types=types, config=CampaignConfig(cap=10)
        )
        results = campaign.run()
        crashy = results.get(winnt.key, "crashy")
        assert crashy.catastrophic
        # Interrupted: only cases up to and including the crash ran.
        assert len(crashy.codes) < 2 + 1  # pool has 2 values
        # Later MuTs still ran on the rebooted machine.
        assert len(results.get(winnt.key, "silenty").codes) == 2

    def test_interference_crash_flagged(self, mini, winnt):
        registry, types = mini
        config = CampaignConfig(cap=10)
        campaign = Campaign([winnt], registry=registry, types=types, config=config)
        # 'corrupty' only notes corruption; tolerance 3 means the fourth
        # corrupting case crashes... but the pool only has one BAD value
        # per pass, so no crash is expected at cap 10 (2 combinations).
        results = campaign.run()
        assert not results.get(winnt.key, "corrupty").catastrophic

    def test_machine_per_case_ablation_removes_interference(self, winnt):
        # Build a corrupting MuT with enough bad values to cross the
        # tolerance within one campaign.
        types = TypeRegistry()
        trigger = types.new_type("trigger")
        for index in range(8):
            trigger.add(f"BAD{index}", lambda ctx: 1, exceptional=True)

        def leak(ctx, args):
            ctx.machine.note_corruption("leaky")
            return 0

        registry = MuTRegistry()
        registry.register(
            MuT("leaky", "win32", "I/O Primitives", ("trigger",), leak)
        )
        shared = Campaign(
            [winnt], registry=registry, types=types, config=CampaignConfig(cap=10)
        ).run()
        assert shared.get(winnt.key, "leaky").catastrophic
        isolated = Campaign(
            [winnt],
            registry=registry,
            types=types,
            config=CampaignConfig(cap=10, machine_per_case=True),
        ).run()
        assert not isolated.get(winnt.key, "leaky").catastrophic

    def test_thrown_exception_policy_ablation(self, mini, winnt):
        registry, types = mini
        fair = Campaign(
            [winnt], registry=registry, types=types, config=CampaignConfig(cap=10)
        ).run()
        assert fair.get(winnt.key, "throwy").abort_rate == 0.0
        harsh = Campaign(
            [winnt],
            registry=registry,
            types=types,
            config=CampaignConfig(cap=10, count_thrown_exceptions_as_abort=True),
        ).run()
        assert harsh.get(winnt.key, "throwy").abort_rate == 0.5

    def test_mut_filter(self, mini, winnt):
        registry, types = mini
        campaign = Campaign(
            [winnt],
            registry=registry,
            types=types,
            config=CampaignConfig(cap=10),
            muts=["silenty"],
        )
        results = campaign.run()
        assert len(results) == 1

    def test_run_single_case_replays_listing1(self, winnt, win98):
        outcome = run_single_case(win98, "GetThreadContext", ["TH_CURRENT", "PTR_NULL"])
        assert outcome.code is CaseCode.CATASTROPHIC
        outcome = run_single_case(winnt, "GetThreadContext", ["TH_CURRENT", "PTR_NULL"])
        assert outcome.code is CaseCode.PASS_ERROR

    def test_run_single_case_rejects_unavailable(self, linux):
        with pytest.raises(ValueError):
            run_single_case(linux, "GetThreadContext", ["TH_CURRENT", "PTR_NULL"])


class TestResults:
    def make_result(self, codes, exceptional=None):
        result = MuTResult("v", "m", "libc", "C string")
        exceptional = exceptional or [0] * len(codes)
        for index, (code, exc) in enumerate(zip(codes, exceptional)):
            result.record(index, code, bool(exc))
        return result

    def test_rates(self):
        result = self.make_result(
            [CaseCode.PASS_NO_ERROR, CaseCode.ABORT, CaseCode.ABORT, CaseCode.RESTART]
        )
        assert result.abort_rate == 0.5
        assert result.restart_rate == 0.25
        assert result.executed == 4

    def test_setup_skips_not_counted_as_executed(self):
        result = self.make_result([CaseCode.SETUP_SKIP, CaseCode.ABORT])
        assert result.executed == 1
        assert result.abort_rate == 1.0

    def test_silent_ground_truth(self):
        result = self.make_result(
            [CaseCode.PASS_NO_ERROR, CaseCode.PASS_NO_ERROR, CaseCode.PASS_ERROR],
            exceptional=[1, 0, 1],
        )
        assert result.silent_ground_truth_rate() == pytest.approx(1 / 3)

    def test_catastrophic_flag_set_on_record(self):
        result = self.make_result([CaseCode.CATASTROPHIC])
        assert result.catastrophic

    def test_resultset_uniform_rate_excludes_catastrophic(self):
        results = ResultSet()
        clean = results.new_result("v", "a", "libc", "C string")
        clean.record(0, CaseCode.ABORT, False)
        crashed = results.new_result("v", "b", "libc", "C string")
        crashed.record(0, CaseCode.CATASTROPHIC, True)
        assert results.uniform_rate("v", CaseCode.ABORT) == 1.0
        assert (
            results.uniform_rate("v", CaseCode.ABORT, include_catastrophic=True)
            == 0.5
        )

    def test_resultset_lookup_disambiguation(self):
        results = ResultSet()
        results.new_result("v", "rename", "libc", "C file I/O management")
        results.new_result("v", "rename", "posix", "File/Directory Access")
        with pytest.raises(KeyError, match="ambiguous"):
            results.get("v", "rename")
        assert results.get("v", "rename", api="libc").api == "libc"

    def test_duplicate_result_rejected(self):
        results = ResultSet()
        results.new_result("v", "a", "libc", "g")
        with pytest.raises(ValueError):
            results.new_result("v", "a", "libc", "g")

    def test_records_must_arrive_in_order(self):
        result = MuTResult("v", "m", "libc", "g")
        result.record(0, CaseCode.PASS_ERROR, False)
        with pytest.raises(AssertionError):
            result.record(5, CaseCode.PASS_ERROR, False)
