"""Tests for the heavy-load comparison harness."""

import pytest

from repro.sim.filesystem import FileSystemError
from repro.sim.machine import Machine
from repro.triage.load_test import (
    DEFAULT_DISK_CAPACITY,
    _apply_load,
    run_load_comparison,
)


class TestDiskCapacity:
    def test_machine_accepts_capacity(self, winnt):
        machine = Machine(winnt, fs_max_files=3)
        machine.fs.create_file("/tmp/a")
        machine.fs.create_file("/tmp/b")  # /etc_passwd is the third
        with pytest.raises(FileSystemError, match="ENOSPC"):
            machine.fs.create_file("/tmp/c")

    def test_unlink_releases_capacity(self, winnt):
        machine = Machine(winnt, fs_max_files=2)
        machine.fs.create_file("/tmp/a")
        with pytest.raises(FileSystemError, match="ENOSPC"):
            machine.fs.create_file("/tmp/b")
        machine.fs.unlink("/tmp/a")
        machine.fs.create_file("/tmp/b")

    def test_unlimited_by_default(self, winnt):
        machine = Machine(winnt)
        for index in range(200):
            machine.fs.create_file(f"/tmp/f{index}")

    def test_create_file_enospc_maps_to_win32_code(self, winnt):
        from repro.core.context import TestContext
        from repro.win32 import errors as W

        machine = Machine(winnt, fs_max_files=1)
        ctx = TestContext(machine, machine.spawn_process())
        handle = ctx.win32.CreateFileA(
            ctx.cstring(b"/tmp/full.txt"), 0xC000_0000, 0, 0, 2, 0x80, 0
        )
        assert handle == 0xFFFF_FFFF
        assert ctx.process.last_error == W.ERROR_DISK_FULL

    def test_fopen_enospc_maps_to_errno(self, linux):
        from repro.core.context import TestContext
        from repro.libc import errno_codes as E

        machine = Machine(linux, fs_max_files=1)
        ctx = TestContext(machine, machine.spawn_process())
        assert ctx.crt.fopen(ctx.cstring(b"/tmp/full"), ctx.cstring(b"w")) == 0
        assert ctx.process.errno == E.ENOSPC


class TestApplyLoad:
    def test_fills_disk_to_headroom(self, winnt):
        machine = Machine(winnt, fs_max_files=32)
        _apply_load(machine)
        assert machine.fs._file_count == 28  # capacity - headroom

    def test_prestresses_arena_on_9x(self, win98):
        machine = Machine(win98, fs_max_files=32)
        _apply_load(machine)
        assert machine.corruption_level == win98.corruption_tolerance - 1

    def test_no_arena_stress_on_nt(self, winnt):
        machine = Machine(winnt, fs_max_files=32)
        _apply_load(machine)
        assert machine.corruption_level == 0


class TestLoadComparison:
    @pytest.fixture(scope="class")
    def report98(self, win98):
        return run_load_comparison(
            win98, ["strncpy", "CreateFileA", "GetThreadContext"], cap=100
        )

    def test_interference_crash_accelerates(self, report98):
        strncpy = next(d for d in report98.deltas if d.mut_name == "strncpy")
        assert strncpy.crashed_unloaded and strncpy.crashed_loaded
        assert strncpy.crash_case_loaded < strncpy.crash_case_unloaded

    def test_immediate_crash_unchanged(self, report98):
        gtc = next(d for d in report98.deltas if d.mut_name == "GetThreadContext")
        assert gtc.crashed_unloaded and gtc.crashed_loaded
        assert not gtc.crash_appeared_under_load

    def test_error_rate_rises_for_file_creators(self, report98):
        cf = next(d for d in report98.deltas if d.mut_name == "CreateFileA")
        assert cf.loaded["pass_error"] >= cf.unloaded["pass_error"]

    def test_nt_survives_load(self, winnt):
        report = run_load_comparison(
            winnt, ["strncpy", "CreateFileA", "GetThreadContext"], cap=100
        )
        assert not any(d.crashed_loaded for d in report.deltas)

    def test_render(self, report98):
        text = report98.render()
        assert "Heavy-load comparison" in text
        assert "strncpy" in text
