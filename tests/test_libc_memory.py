"""Unit tests for the C memory management group across CRT flavours."""

import pytest

from repro.core.context import TestContext
from repro.posix.linux import LINUX
from repro.sim.errors import AccessViolation, SoftwareAbort
from repro.sim.machine import Machine
from repro.win32.variants import WINNT


def crt_for(personality):
    machine = Machine(personality)
    ctx = TestContext(machine, machine.spawn_process())
    return ctx, ctx.crt


@pytest.fixture()
def glibc():
    return crt_for(LINUX)


@pytest.fixture()
def msvcrt():
    return crt_for(WINNT)


class TestMalloc:
    def test_malloc_returns_writable_block(self, glibc):
        ctx, crt = glibc
        ptr = crt.malloc(64)
        assert ptr != 0
        ctx.mem.write(ptr, b"x" * 64)

    def test_malloc_zero_still_unique(self, glibc):
        _, crt = glibc
        a = crt.malloc(0)
        b = crt.malloc(0)
        assert a and b and a != b

    def test_malloc_huge_fails_with_enomem(self, glibc):
        ctx, crt = glibc
        assert crt.malloc(0xFFFF_FFFF) == 0
        assert ctx.process.errno == 12

    def test_calloc_zeroes(self, glibc):
        ctx, crt = glibc
        ptr = crt.calloc(4, 8)
        assert ctx.mem.read(ptr, 32) == b"\x00" * 32

    def test_calloc_overflowing_product_fails(self, glibc):
        _, crt = glibc
        assert crt.calloc(0xFFFF, 0xFFFF) == 0

    def test_free_releases_mapping(self, glibc):
        ctx, crt = glibc
        ptr = crt.malloc(16)
        assert crt.free(ptr) == 0
        with pytest.raises(AccessViolation):
            ctx.mem.read(ptr, 1)

    def test_free_null_is_noop(self, glibc):
        ctx, crt = glibc
        assert crt.free(0) == 0
        assert ctx.process.errno == 0

    def test_glibc_free_wild_unmapped_pointer_faults(self, glibc):
        _, crt = glibc
        with pytest.raises(AccessViolation):
            crt.free(0xDEAD_0000)

    def test_glibc_free_readable_garbage_aborts(self, glibc):
        ctx, crt = glibc
        not_a_block = ctx.buffer(64) + 16  # readable, wrong header
        with pytest.raises(SoftwareAbort):
            crt.free(not_a_block)

    def test_msvcrt_free_readable_garbage_reports_error(self, msvcrt):
        ctx, crt = msvcrt
        not_a_block = ctx.buffer(64) + 16
        assert crt.free(not_a_block) == 0
        assert ctx.process.errno == 22

    def test_realloc_grows_and_preserves(self, glibc):
        ctx, crt = glibc
        ptr = crt.malloc(8)
        ctx.mem.write(ptr, b"payload!")
        bigger = crt.realloc(ptr, 32)
        assert ctx.mem.read(bigger, 8) == b"payload!"

    def test_realloc_null_acts_as_malloc(self, glibc):
        _, crt = glibc
        assert crt.realloc(0, 16) != 0

    def test_realloc_zero_frees(self, glibc):
        ctx, crt = glibc
        ptr = crt.malloc(16)
        assert crt.realloc(ptr, 0) == 0
        with pytest.raises(AccessViolation):
            ctx.mem.read(ptr, 1)

    def test_glibc_realloc_garbage_aborts(self, glibc):
        ctx, crt = glibc
        with pytest.raises(SoftwareAbort):
            crt.realloc(ctx.buffer(32) + 8, 8)


class TestMemOps:
    def test_memcpy_roundtrip(self, glibc):
        ctx, crt = glibc
        src = ctx.buffer(16, b"0123456789abcdef")
        dest = ctx.buffer(16)
        assert crt.memcpy(dest, src, 16) == dest
        assert ctx.mem.read(dest, 16) == b"0123456789abcdef"

    def test_memcpy_null_dest_faults(self, glibc):
        ctx, crt = glibc
        with pytest.raises(AccessViolation):
            crt.memcpy(0, ctx.buffer(4), 4)

    def test_memcpy_huge_n_faults_at_region_edge(self, glibc):
        ctx, crt = glibc
        src = ctx.buffer(4096)
        dest = ctx.buffer(4096)
        with pytest.raises(AccessViolation):
            crt.memcpy(dest, src, 0x7FFF_FFFF)

    def test_memmove_same_as_memcpy_for_disjoint(self, glibc):
        ctx, crt = glibc
        src = ctx.buffer(8, b"abcdefgh")
        dest = ctx.buffer(8)
        crt.memmove(dest, src, 8)
        assert ctx.mem.read(dest, 8) == b"abcdefgh"

    def test_memset_fills(self, glibc):
        ctx, crt = glibc
        dest = ctx.buffer(8)
        crt.memset(dest, ord("x"), 8)
        assert ctx.mem.read(dest, 8) == b"x" * 8

    def test_memset_zero_count_touches_nothing(self, glibc):
        _, crt = glibc
        crt.memset(0, 0, 0)  # n == 0: even NULL is never dereferenced

    def test_memcmp(self, glibc):
        ctx, crt = glibc
        a = ctx.buffer(4, b"abcd")
        b = ctx.buffer(4, b"abce")
        assert crt.memcmp(a, b, 3) == 0
        assert crt.memcmp(a, b, 4) < 0

    def test_memchr_found_and_missing(self, glibc):
        ctx, crt = glibc
        buf = ctx.buffer(8, b"abcdefgh")
        assert crt.memchr(buf, ord("d"), 8) == buf + 3
        assert crt.memchr(buf, ord("z"), 8) == 0

    def test_memchr_does_not_scan_past_n(self, glibc):
        ctx, crt = glibc
        buf = ctx.buffer(8, b"abcdefgh")
        assert crt.memchr(buf, ord("h"), 4) == 0
