"""Property-based tests (hypothesis) on core data structures and
invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generator import CaseGenerator
from repro.core.mut import MuT
from repro.core.types import TypeRegistry
from repro.service.xdr import XdrDecoder, XdrEncoder
from repro.sim.errors import AccessViolation
from repro.sim.filesystem import FileSystem
from repro.sim.memory import AddressSpace

# ----------------------------------------------------------------------
# XDR
# ----------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=0xFFFF_FFFF))
def test_xdr_u32_roundtrip(value):
    assert XdrDecoder(XdrEncoder().u32(value).bytes()).u32() == value


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_xdr_i32_roundtrip(value):
    assert XdrDecoder(XdrEncoder().i32(value).bytes()).i32() == value


@given(st.binary(max_size=200))
def test_xdr_opaque_roundtrip_and_alignment(blob):
    data = XdrEncoder().opaque(blob).bytes()
    assert len(data) % 4 == 0
    decoder = XdrDecoder(data)
    assert decoder.opaque() == blob
    decoder.done()


@given(st.lists(st.text(max_size=40), max_size=12))
def test_xdr_string_array_roundtrip(items):
    data = XdrEncoder().string_array(items).bytes()
    assert XdrDecoder(data).string_array() == items


@given(
    st.integers(min_value=0, max_value=0xFFFF_FFFF),
    st.binary(max_size=64),
    st.text(max_size=32),
)
def test_xdr_mixed_sequence_roundtrip(number, blob, text):
    data = XdrEncoder().u32(number).opaque(blob).string(text).bytes()
    decoder = XdrDecoder(data)
    assert decoder.u32() == number
    assert decoder.opaque() == blob
    assert decoder.string() == text
    decoder.done()


# ----------------------------------------------------------------------
# Virtual memory
# ----------------------------------------------------------------------


@given(st.binary(min_size=1, max_size=512), st.integers(min_value=0, max_value=64))
def test_memory_write_read_roundtrip(data, offset):
    mem = AddressSpace()
    region = mem.map(len(data) + offset)
    mem.write(region.start + offset, data)
    assert mem.read(region.start + offset, len(data)) == data


@given(st.binary(max_size=128))
def test_cstring_scan_modes_agree_on_rounded_allocations(payload):
    payload = payload.replace(b"\x00", b"x")
    mem = AddressSpace()
    addr = mem.alloc_cstring(payload)  # word-rounded
    bytewise = mem.read_cstring(addr)
    wordwise = mem.read_cstring(addr, word_at_a_time=True)
    assert bytewise == wordwise == payload


@given(st.integers(min_value=1, max_value=256), st.integers(min_value=1, max_value=8))
def test_reads_never_cross_region_end(size, overshoot):
    mem = AddressSpace()
    region = mem.map(size)
    try:
        mem.read(region.start, size + overshoot)
        crossed = True
    except AccessViolation:
        crossed = False
    assert not crossed


@given(st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=20))
def test_mappings_never_overlap(sizes):
    mem = AddressSpace()
    regions = [mem.map(size) for size in sizes]
    spans = sorted((r.start, r.end) for r in regions)
    for (_, first_end), (second_start, _) in zip(spans, spans[1:]):
        assert first_end <= second_start


# ----------------------------------------------------------------------
# Generator determinism
# ----------------------------------------------------------------------

_names = st.text(alphabet=string.ascii_letters, min_size=1, max_size=16)


@settings(max_examples=25, deadline=None)
@given(
    name=_names,
    pool_sizes=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=4),
    cap=st.integers(min_value=1, max_value=64),
)
def test_generator_deterministic_and_unique(name, pool_sizes, cap):
    types = TypeRegistry()
    params = []
    for position, pool_size in enumerate(pool_sizes):
        t = types.new_type(f"t{position}")
        for index in range(pool_size):
            t.add(f"V{position}_{index}", lambda ctx: index)
        params.append(t.name)
    mut = MuT(name, "libc", "C string", tuple(params), lambda ctx, args: 0)
    gen = CaseGenerator(types, cap=cap)
    first = [c.value_names for c in gen.cases(mut)]
    second = [c.value_names for c in gen.cases(mut)]
    assert first == second
    assert len(set(first)) == len(first)  # no duplicate cases
    total = 1
    for pool_size in pool_sizes:
        total *= pool_size
    assert len(first) == min(total, cap)


# ----------------------------------------------------------------------
# Filesystem path normalisation
# ----------------------------------------------------------------------

_path_pieces = st.lists(
    st.sampled_from(["a", "b", "c", ".", "..", "dir1", ""]), max_size=8
)


@given(_path_pieces)
def test_split_is_idempotent(pieces):
    fs = FileSystem()
    path = "/" + "/".join(pieces)
    once = fs.split(path)
    twice = fs.split("/" + "/".join(once))
    assert once == twice
    assert all(piece not in (".", "..", "") for piece in once)


@given(st.text(alphabet="abcXYZ", min_size=1, max_size=10))
def test_case_insensitive_fs_finds_any_casing(name):
    fs = FileSystem(case_insensitive=True)
    fs.create_file(f"/{name}", b"x")
    assert fs.lookup(f"/{name.upper()}") is not None
    assert fs.lookup(f"/{name.lower()}") is not None


# ----------------------------------------------------------------------
# CRT invariants
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    payload=st.binary(max_size=24).map(lambda b: b.replace(b"\x00", b"a")),
    n=st.integers(min_value=0, max_value=48),
)
def test_strncpy_matches_iso_semantics(payload, n):
    from repro.core.context import TestContext
    from repro.posix.linux import LINUX
    from repro.sim.machine import Machine

    machine = Machine(LINUX)
    ctx = TestContext(machine, machine.spawn_process())
    src = ctx.cstring(payload)
    dest = ctx.buffer(64, b"\xff" * 64)
    ctx.crt.strncpy(dest, src, n)
    expected = payload[:n] + b"\x00" * max(0, n - len(payload))
    assert ctx.mem.read(dest, n) == expected
    # Bytes past n are untouched.
    if n < 64:
        assert ctx.mem.read(dest + n, 1) == b"\xff"


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=-300, max_value=400))
def test_ctype_flavours_agree_inside_common_domain(c):
    from repro.core.context import TestContext
    from repro.posix.linux import LINUX
    from repro.sim.machine import Machine
    from repro.win32.variants import WINNT

    glibc_machine = Machine(LINUX)
    glibc = TestContext(glibc_machine, glibc_machine.spawn_process()).crt
    nt_machine = Machine(WINNT)
    msvcrt = TestContext(nt_machine, nt_machine.spawn_process()).crt
    if -1 <= c <= 255:
        assert glibc.isalpha(c) == msvcrt.isalpha(c)
        assert glibc.isdigit(c) == msvcrt.isdigit(c)
    else:
        # msvcrt is total; glibc may fault -- but must never crash the
        # machine (user-mode fault only).
        msvcrt.isalpha(c)
        try:
            glibc.isalpha(c)
        except AccessViolation:
            pass
        assert not glibc_machine.crashed


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_civil_time_matches_datetime(seconds):
    import datetime

    from repro.libc.time_funcs import _civil_from_unix

    expected = datetime.datetime.fromtimestamp(seconds, tz=datetime.timezone.utc)
    year, mon, day, hour, minute, sec, wday, yday = _civil_from_unix(seconds)
    assert (year, mon + 1, day, hour, minute, sec) == (
        expected.year,
        expected.month,
        expected.day,
        expected.hour,
        expected.minute,
        expected.second,
    )
    assert wday == (expected.weekday() + 1) % 7
    assert yday == expected.timetuple().tm_yday - 1
