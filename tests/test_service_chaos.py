"""Chaos-transport fault injection: the distributed campaign must
survive dropped, duplicated, corrupted, delayed, and severed records,
and must produce the *same* result set it would have produced on a
perfect network (retries + idempotent reporting)."""

import threading

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.mut import MuTRegistry
from repro.service import (
    BallistaClient,
    BallistaServer,
    ChaosConfig,
    ChaosDisconnect,
    ChaosTransport,
    LoopbackTransport,
    RetryPolicy,
    RpcError,
    RpcTimeout,
)
from repro.service import protocol as P
from repro.service.rpc import RpcClient, SocketTransport, serve_connection
from repro.service.xdr import XdrDecoder, XdrEncoder

SUBSET = ["GetThreadContext", "CloseHandle", "strcpy", "isalpha", "fclose"]

#: Fast retransmission policy for loopback tests: lost records are
#: detected in tens of milliseconds instead of seconds.
FAST_RETRY = RetryPolicy(attempts=8, call_timeout=0.25, backoff_base=0.005)


@pytest.fixture()
def subset_registry(registry):
    sub = MuTRegistry()
    for mut in registry.all():
        if mut.name in SUBSET:
            sub.register(mut)
    return sub


def echo_handlers():
    """A trivial program: procedure 1 echoes the u32 it was sent."""

    def echo(dec):
        return XdrEncoder().u32(dec.u32()).bytes()

    return {1: echo}


def spawn_echo_server(client_transport_wrapper=lambda t: t):
    server_end, client_end = LoopbackTransport.pair()
    threading.Thread(
        target=serve_connection, args=(server_end, echo_handlers()), daemon=True
    ).start()
    return client_transport_wrapper(client_end)


class TestChaosTransport:
    def test_no_faults_at_zero_rates(self):
        a, b = LoopbackTransport.pair()
        chaos = ChaosTransport(b, ChaosConfig(seed=1))
        chaos.send_record(b"hello")
        assert a.recv_record() == b"hello"
        a.send_record(b"world")
        assert chaos.recv_record() == b"world"
        assert chaos.stats.faults == 0

    def test_same_seed_same_fault_schedule(self):
        def schedule(seed):
            a, b = LoopbackTransport.pair()
            chaos = ChaosTransport(
                b, ChaosConfig(seed=seed, drop_rate=0.3, dup_rate=0.3)
            )
            for index in range(50):
                chaos.send_record(bytes([index]))
            drained = []
            try:
                while True:
                    drained.append(a.recv_record(timeout=0.01))
            except RpcError:
                pass
            return drained, (chaos.stats.drops, chaos.stats.dups)

        first = schedule(99)
        second = schedule(99)
        different = schedule(7)
        assert first == second
        assert first != different
        assert first[1][0] > 0 and first[1][1] > 0

    def test_send_drop_loses_the_record(self):
        a, b = LoopbackTransport.pair()
        chaos = ChaosTransport(b, ChaosConfig(seed=0, drop_rate=1.0))
        chaos.send_record(b"gone")
        with pytest.raises(RpcTimeout):
            a.recv_record(timeout=0.01)
        assert chaos.stats.drops == 1

    def test_recv_drop_consumes_and_keeps_waiting(self):
        a, b = LoopbackTransport.pair()
        chaos = ChaosTransport(b, ChaosConfig(seed=0, drop_rate=1.0))
        a.send_record(b"lost in transit")
        with pytest.raises(RpcTimeout):
            chaos.recv_record(timeout=0.05)
        assert chaos.stats.drops >= 1

    def test_duplicate_delivers_twice(self):
        a, b = LoopbackTransport.pair()
        chaos = ChaosTransport(b, ChaosConfig(seed=0, dup_rate=1.0))
        chaos.send_record(b"twice")
        assert a.recv_record() == b"twice"
        assert a.recv_record() == b"twice"
        assert chaos.stats.dups == 1

    def test_corruption_flips_bytes(self):
        a, b = LoopbackTransport.pair()
        chaos = ChaosTransport(b, ChaosConfig(seed=3, corrupt_rate=1.0))
        payload = bytes(32)
        chaos.send_record(payload)
        received = a.recv_record()
        assert len(received) == len(payload)
        assert received != payload
        assert chaos.stats.corruptions == 1

    def test_truncation_shortens_record(self):
        a, b = LoopbackTransport.pair()
        chaos = ChaosTransport(b, ChaosConfig(seed=3, truncate_rate=1.0))
        chaos.send_record(bytes(range(64)))
        received = a.recv_record()
        assert 0 < len(received) < 64
        assert chaos.stats.truncations == 1

    def test_disconnect_after_kills_transport_permanently(self):
        _, b = LoopbackTransport.pair()
        chaos = ChaosTransport(b, ChaosConfig(seed=0, disconnect_after=2))
        chaos.send_record(b"one")
        chaos.send_record(b"two")
        with pytest.raises(ChaosDisconnect):
            chaos.send_record(b"three")
        with pytest.raises(ChaosDisconnect):
            chaos.recv_record(timeout=0.01)
        assert chaos.stats.disconnects == 1

    def test_delay_sleeps_via_injected_clock(self):
        slept = []
        a, b = LoopbackTransport.pair()
        chaos = ChaosTransport(
            b,
            ChaosConfig(seed=0, delay_rate=1.0, delay_s=0.123),
            sleep=slept.append,
        )
        chaos.send_record(b"later")
        assert a.recv_record() == b"later"
        assert slept == [0.123]
        assert chaos.stats.delays == 1


class TestRetryingRpcClient:
    def test_recovers_from_drops(self):
        chaos_holder = {}

        def wrap(transport):
            chaos = ChaosTransport(
                transport, ChaosConfig(seed=11, drop_rate=0.4)
            )
            chaos_holder["chaos"] = chaos
            return chaos

        client = RpcClient(spawn_echo_server(wrap), retry=FAST_RETRY)
        for value in range(20):
            assert client.call(1, XdrEncoder().u32(value).bytes()).u32() == value
        assert chaos_holder["chaos"].stats.drops > 0
        assert client.stats.retries > 0

    def test_skips_stale_duplicate_replies(self):
        chaos_holder = {}

        def wrap(transport):
            chaos = ChaosTransport(transport, ChaosConfig(seed=5, dup_rate=0.5))
            chaos_holder["chaos"] = chaos
            return chaos

        client = RpcClient(spawn_echo_server(wrap), retry=FAST_RETRY)
        for value in range(20):
            assert client.call(1, XdrEncoder().u32(value).bytes()).u32() == value
        assert chaos_holder["chaos"].stats.dups > 0
        assert client.stats.stale_replies > 0

    def test_gives_up_after_attempt_budget(self):
        transport = spawn_echo_server(
            lambda t: ChaosTransport(t, ChaosConfig(seed=0, drop_rate=1.0))
        )
        sleeps = []
        policy = RetryPolicy(
            attempts=3, call_timeout=0.02, backoff_base=0.01,
            jitter=0.0, sleep=sleeps.append,
        )
        client = RpcClient(transport, retry=policy)
        with pytest.raises(RpcError, match="gave up after 3 attempts"):
            client.call(1, XdrEncoder().u32(1).bytes())
        # Exponential backoff between the retries: base, then doubled
        # (jitter disabled for an exact schedule).
        assert sleeps == [0.01, 0.02]

    def test_backoff_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(
            attempts=4, backoff_base=0.01, jitter=0.25, jitter_seed=42,
        )
        import random

        rng = random.Random(policy.jitter_seed)
        jittered = [policy.backoff(i, rng=rng) for i in range(3)]
        exact = [policy.backoff(i) for i in range(3)]
        for got, base in zip(jittered, exact):
            assert base * 0.75 <= got <= base * 1.25
        # Same seed -> same schedule: two clients built from this policy
        # sleep identically (the property the chaos tests rely on).
        rng2 = random.Random(policy.jitter_seed)
        assert jittered == [policy.backoff(i, rng=rng2) for i in range(3)]
        # Different seeds de-synchronise the herd.
        rng3 = random.Random(7)
        assert jittered != [policy.backoff(i, rng=rng3) for i in range(3)]

    def test_jitter_validation(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=-0.1)

    def test_legacy_client_still_fails_fast(self):
        server_end, client_end = LoopbackTransport.pair(default_timeout=0.05)
        threading.Thread(
            target=serve_connection,
            args=(server_end, echo_handlers()),
            daemon=True,
        ).start()
        transport = ChaosTransport(client_end, ChaosConfig(seed=0, drop_rate=1.0))
        client = RpcClient(transport)  # no RetryPolicy: single shot
        with pytest.raises(RpcError):
            client.call(1, XdrEncoder().u32(1).bytes())


class TestSocketHardening:
    def test_oversized_recv_refused(self):
        import socket

        from repro.service.rpc import MAX_RECORD

        a, _b = socket.socketpair()
        transport = SocketTransport(a)
        with pytest.raises(RpcError, match="refusing to receive"):
            transport._recv_exact(MAX_RECORD + 1)
        with pytest.raises(RpcError, match="refusing to receive"):
            transport._recv_exact(-4)
        a.close()
        _b.close()

    def test_fragment_accumulation_over_max_rejected(self):
        import socket
        import struct

        from repro.service.rpc import MAX_RECORD

        a, b = socket.socketpair()
        receiver = SocketTransport(a)
        # Two fragments, each individually plausible, whose sum busts
        # the record ceiling.
        big = MAX_RECORD - 8
        b.sendall(struct.pack(">I", 16) + b"x" * 16)
        b.sendall(struct.pack(">I", 0x8000_0000 | big))
        with pytest.raises(RpcError, match="exceeds sane maximum"):
            receiver.recv_record()
        a.close()
        b.close()


class TestDistributedCampaignUnderChaos:
    def run_distributed(self, subset_registry, personalities, chaos_config):
        cap = 60
        server = BallistaServer(
            [p for p in personalities],
            registry=subset_registry,
            cap=cap,
            lease_s=30.0,
        )
        chaos_transports = []
        for personality in personalities:
            server_end, client_end = LoopbackTransport.pair()
            server.attach(server_end)
            transport = client_end
            if chaos_config is not None:
                transport = ChaosTransport(client_end, chaos_config)
                chaos_transports.append(transport)
            client = BallistaClient(
                personality,
                transport,
                registry=subset_registry,
                retry=FAST_RETRY,
            )
            client.run()
        server.join({p.key for p in personalities})
        return server, chaos_transports

    def test_five_percent_drop_dup_same_result_set(
        self, subset_registry, win98, winnt
    ):
        """The acceptance bar: 5% drops + 5% duplicates, fixed seed, and
        the final ResultSet is byte-identical to the fault-free run."""
        clean, _ = self.run_distributed(
            subset_registry, [win98, winnt], chaos_config=None
        )
        chaos_config = ChaosConfig(seed=2024, drop_rate=0.05, dup_rate=0.05)
        faulty, chaos_transports = self.run_distributed(
            subset_registry, [win98, winnt], chaos_config
        )
        injected = sum(t.stats.faults for t in chaos_transports)
        assert injected > 0, "chaos schedule injected nothing; change seed"

        assert len(faulty.results) == len(clean.results)
        for row in clean.results:
            mirrored = faulty.results.get(row.variant, row.mut_name, api=row.api)
            assert bytes(mirrored.codes) == bytes(row.codes)
            assert bytes(mirrored.exceptional) == bytes(row.exceptional)
            assert mirrored.error_codes == row.error_codes
            assert mirrored.catastrophic == row.catastrophic
            assert mirrored.interference_crash == row.interference_crash
            assert mirrored.planned_cases == row.planned_cases
        assert faulty.results.partial_variants() == set()

    def test_duplicate_reports_are_idempotent_under_chaos(
        self, subset_registry, winnt
    ):
        """A duplication-heavy link forces retransmitted REPORTs; the
        server must acknowledge them without double-counting."""
        chaos_config = ChaosConfig(seed=7, drop_rate=0.10, dup_rate=0.10)
        server, transports = self.run_distributed(
            subset_registry, [winnt], chaos_config
        )
        local = Campaign(
            [winnt], registry=subset_registry, config=CampaignConfig(cap=60)
        ).run()
        for row in local.for_variant("winnt"):
            mirrored = server.results.get("winnt", row.mut_name, api=row.api)
            assert bytes(mirrored.codes) == bytes(row.codes)
            assert len(mirrored.codes) == len(row.codes)  # never doubled
        assert sum(t.stats.faults for t in transports) > 0


class TestLeasesAndGracefulDegradation:
    def test_lease_expiry_marks_variant_partial(
        self, subset_registry, win98, winnt
    ):
        """One client dies mid-campaign; the campaign still finishes
        with the survivor, and the dead variant is flagged partial."""
        server = BallistaServer(
            [win98, winnt], registry=subset_registry, cap=40, lease_s=0.2
        )

        # The win98 client's link is severed mid-run.
        server_end, client_end = LoopbackTransport.pair()
        server.attach(server_end)
        doomed = BallistaClient(
            win98,
            ChaosTransport(client_end, ChaosConfig(seed=0, disconnect_after=7)),
            registry=subset_registry,
            retry=RetryPolicy(attempts=2, call_timeout=0.05, backoff_base=0.001),
        )
        with pytest.raises(RpcError):
            doomed.run()

        # The winnt client is healthy.
        server_end, client_end = LoopbackTransport.pair()
        server.attach(server_end)
        BallistaClient(winnt, client_end, registry=subset_registry).run()

        server.join({"win98", "winnt"}, timeout=10.0)
        assert server.expired_variants() == {"win98"}
        assert server.completed_variants() == {"winnt"}

        results = server.results
        assert results.is_partial("win98")
        assert not results.is_partial("winnt")
        # The survivor's results are complete and usable.
        assert len(results.for_variant("winnt")) == len(
            subset_registry.for_variant(winnt)
        )
        # Partial results are real measurements, just fewer of them.
        assert len(results.for_variant("win98")) < len(
            subset_registry.for_variant(win98)
        )

    def test_partial_variant_flagged_in_table1(self, subset_registry, winnt):
        from repro.analysis.tables import render_table1

        results = Campaign(
            [winnt], registry=subset_registry, config=CampaignConfig(cap=20)
        ).run()
        assert "partial" not in render_table1(results)
        results.mark_partial("winnt")
        rendered = render_table1(results)
        assert "!Windows NT" in rendered
        assert "partial results" in rendered

    def test_heartbeat_renews_lease(self, subset_registry, winnt):
        server = BallistaServer(
            [winnt], registry=subset_registry, cap=10, lease_s=0.15
        )
        server_end, client_end = LoopbackTransport.pair()
        server.attach(server_end)
        client = BallistaClient(winnt, client_end, registry=subset_registry)
        client.rpc.call(P.PROC_HELLO, P.encode_hello("winnt"))
        import time

        for _ in range(4):
            time.sleep(0.05)
            client.heartbeat()
        server._check_leases()
        assert server.expired_variants() == set()
        time.sleep(0.3)  # now go silent past the lease
        server._check_leases()
        assert server.expired_variants() == {"winnt"}
