"""The durable job queue: journal, snapshot, compaction, idempotency."""

import json

import pytest

from repro.service.queue import (
    JOB_DONE,
    JOB_FAILED,
    JOB_PENDING,
    JOB_RUNNING,
    JobQueue,
    JobQueueError,
    JobSpec,
)


def spec(tenant="t", key="k", variants=("winnt",), cap=30, muts=None):
    return JobSpec(
        tenant=tenant,
        job_key=key,
        variants=tuple(variants),
        cap=cap,
        muts=muts,
    )


class TestSubmit:
    def test_assigns_sequential_ids(self, tmp_path):
        q = JobQueue(tmp_path)
        a, created_a = q.submit(spec(key="a"))
        b, created_b = q.submit(spec(key="b"))
        assert (a.job_id, b.job_id) == ("job-0001", "job-0002")
        assert created_a and created_b

    def test_idempotent_on_tenant_and_key(self, tmp_path):
        q = JobQueue(tmp_path)
        first, _ = q.submit(spec())
        again, created = q.submit(spec())
        assert not created
        assert again.job_id == first.job_id
        assert len(q.jobs()) == 1

    def test_same_key_different_tenant_is_a_new_job(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit(spec(tenant="alice"))
        _, created = q.submit(spec(tenant="bob"))
        assert created

    def test_idempotency_survives_reopen(self, tmp_path):
        # Regression: the (tenant, job_key) index must be rebuilt from
        # the snapshot, not only from journal replay -- a restarted
        # service would otherwise duplicate every resubmitted campaign.
        q = JobQueue(tmp_path)
        first, _ = q.submit(spec())
        q.close()  # compacts: the journal is empty, only the snapshot remains
        q2 = JobQueue(tmp_path)
        again, created = q2.submit(spec())
        assert not created
        assert again.job_id == first.job_id


class TestDurability:
    def test_journal_replay_without_snapshot(self, tmp_path):
        q = JobQueue(tmp_path)
        record, _ = q.submit(spec(variants=("winnt", "win98")))
        q.mark_running(record.job_id)
        q.mark_shard_done(record.job_id, "winnt")
        # No close(): simulate a crash -- the journal alone must carry
        # the state.
        q2 = JobQueue(tmp_path)
        loaded = q2.get(record.job_id)
        assert loaded.shards_done == {"winnt"}
        # Leases are process-local: a crashed service's running jobs
        # come back pending.
        assert loaded.state == JOB_PENDING
        assert q2.pending_shards() == [(record.job_id, "win98")]

    def test_terminal_states_survive_reopen(self, tmp_path):
        q = JobQueue(tmp_path)
        done, _ = q.submit(spec(key="done"))
        failed, _ = q.submit(spec(key="failed"))
        q.mark_shard_done(done.job_id, "winnt")
        q.mark_job_done(done.job_id)
        q.mark_job_failed(failed.job_id, "shard kept dying")
        q.close()
        q2 = JobQueue(tmp_path)
        assert q2.get(done.job_id).state == JOB_DONE
        assert q2.get(failed.job_id).state == JOB_FAILED
        assert q2.get(failed.job_id).error == "shard kept dying"
        assert q2.pending_shards() == []

    def test_torn_journal_tail_is_dropped_with_a_warning(self, tmp_path):
        q = JobQueue(tmp_path)
        record, _ = q.submit(spec())
        q.mark_shard_done(record.job_id, "winnt")
        with open(tmp_path / "queue.journal", "a", encoding="utf-8") as fh:
            fh.write('{"op": "job_done", "job')  # killed mid-append
        with pytest.warns(UserWarning, match="torn line"):
            q2 = JobQueue(tmp_path)
        loaded = q2.get(record.job_id)
        assert loaded.shards_done == {"winnt"}
        assert loaded.state != JOB_DONE  # the torn op never took effect

    def test_unknown_journal_op_warns_and_continues(self, tmp_path):
        q = JobQueue(tmp_path)
        record, _ = q.submit(spec())
        with open(tmp_path / "queue.journal", "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"op": "frobnicate"}) + "\n")
        q.mark_shard_done(record.job_id, "winnt")
        with pytest.warns(UserWarning, match="unknown op"):
            q2 = JobQueue(tmp_path)
        assert q2.get(record.job_id).shards_done == {"winnt"}

    def test_compaction_truncates_the_journal(self, tmp_path):
        q = JobQueue(tmp_path, compact_every=3)
        for index in range(4):
            q.submit(spec(key=f"k{index}"))
        # The 3rd append compacted: snapshot written, journal truncated,
        # and the 4th op started a fresh journal.
        assert (tmp_path / "queue.json").exists()
        journal_lines = [
            line
            for line in (tmp_path / "queue.journal")
            .read_text(encoding="utf-8")
            .splitlines()
            if line.strip()
        ]
        assert len(journal_lines) == 1
        q2 = JobQueue(tmp_path)
        assert len(q2.jobs()) == 4
        assert q2.submit(spec(key="k5"))[0].job_id == "job-0005"

    def test_rejects_a_foreign_snapshot(self, tmp_path):
        (tmp_path / "queue.json").write_text(
            json.dumps({"format": "something-else"}), encoding="utf-8"
        )
        with pytest.raises(JobQueueError, match="not a job-queue"):
            JobQueue(tmp_path)

    def test_rejects_an_unsupported_version(self, tmp_path):
        (tmp_path / "queue.json").write_text(
            json.dumps({"format": "ballista-job-queue", "version": 99}),
            encoding="utf-8",
        )
        with pytest.raises(JobQueueError, match="version"):
            JobQueue(tmp_path)


class TestShardBookkeeping:
    def test_pending_shards_in_submission_then_spec_order(self, tmp_path):
        q = JobQueue(tmp_path)
        a, _ = q.submit(spec(key="a", variants=("winnt", "win98")))
        b, _ = q.submit(spec(key="b", variants=("linux",)))
        assert q.pending_shards() == [
            (a.job_id, "winnt"),
            (a.job_id, "win98"),
            (b.job_id, "linux"),
        ]

    def test_mark_shard_done_reports_job_completion(self, tmp_path):
        q = JobQueue(tmp_path)
        record, _ = q.submit(spec(variants=("winnt", "win98")))
        assert not q.mark_shard_done(record.job_id, "winnt")
        assert q.mark_shard_done(record.job_id, "win98")

    def test_mark_shard_done_is_idempotent(self, tmp_path):
        q = JobQueue(tmp_path)
        record, _ = q.submit(spec(variants=("winnt", "win98")))
        q.mark_shard_done(record.job_id, "winnt")
        q.mark_shard_done(record.job_id, "winnt")
        q.close()
        q2 = JobQueue(tmp_path)
        assert q2.get(record.job_id).shards_done == {"winnt"}

    def test_mark_running_leaves_terminal_states_alone(self, tmp_path):
        q = JobQueue(tmp_path)
        record, _ = q.submit(spec())
        q.mark_shard_done(record.job_id, "winnt")
        q.mark_job_done(record.job_id)
        q.mark_running(record.job_id)
        assert q.get(record.job_id).state == JOB_DONE

    def test_shard_and_result_paths_live_under_the_job_dir(self, tmp_path):
        q = JobQueue(tmp_path)
        record, _ = q.submit(spec())
        shard = q.shard_file(record.job_id, "winnt")
        assert shard.parent == tmp_path / "jobs" / record.job_id
        assert shard.name.endswith(".winnt.shard")
        assert q.results_file(record.job_id).parent == shard.parent


class TestSpecValidation:
    def test_round_trip(self):
        original = spec(variants=("winnt", "win98"), muts=("strcpy",))
        assert JobSpec.from_dict(original.as_dict()) == original

    def test_malformed_spec_raises_job_queue_error(self):
        with pytest.raises(JobQueueError, match="malformed job spec"):
            JobSpec.from_dict({"tenant": "t"})

    def test_running_state_constant_round_trips(self, tmp_path):
        q = JobQueue(tmp_path)
        record, _ = q.submit(spec())
        q.mark_running(record.job_id)
        assert record.state == JOB_RUNNING
