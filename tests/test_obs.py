"""Structured run telemetry (repro.obs): event shapes, recorders, the
metrics aggregator and ``repro stats`` CLI, the per-variant progress
renderer, the service-layer hooks, and the pump-loop regressions the
telemetry made visible (queue-drain shutdown, sentinel-gated reaping)."""

import io
import json
import multiprocessing
import os
import pathlib
import signal
import time

import pytest

from repro.core.parallel import ParallelCampaign
from repro.core.supervisor import SupervisedCampaign, SupervisorPolicy
from repro.obs import (
    DETERMINISTIC_KINDS,
    CaseExecuted,
    ChaosFault,
    JsonlRecorder,
    MemoryRecorder,
    MetricsAggregator,
    MutFinished,
    ProgressRenderer,
    RpcRetry,
    TeeRecorder,
    VariantFinished,
    VariantStarted,
    WorkerDied,
    WorkerRestarted,
    WorkerSpawned,
    read_events,
    render_stats,
    strip_wall,
    variant_stream,
)
from repro.obs.stats_cli import main as stats_main
from repro.service.chaos import ChaosConfig, ChaosTransport
from repro.service.rpc import (
    ACCEPT_SUCCESS,
    LoopbackTransport,
    RetryPolicy,
    RpcClient,
    encode_reply,
)
from repro.win32.variants import WIN98

# ----------------------------------------------------------------------
# Events and the canonical deterministic stream
# ----------------------------------------------------------------------


class TestEvents:
    def test_as_dict_shapes_are_json_plain(self):
        events = [
            VariantStarted("win98", 12),
            CaseExecuted("win98", "libc:strcpy", 3, 2, True, 480),
            MutFinished(
                "win98", "libc:strcpy", "C string", 20,
                {"ABORT": 12, "PASS_NO_ERROR": 8}, False, False, 999,
            ),
            VariantFinished("win98", 60, 4242),
            WorkerDied("winnt", "killed", "gone", exitcode=-9),
        ]
        for event in events:
            data = event.as_dict()
            assert data["kind"] == event.kind
            json.dumps(data)  # must already be wire-shaped

    def test_deterministic_kinds_cover_campaign_events(self):
        assert VariantStarted.kind in DETERMINISTIC_KINDS
        assert CaseExecuted.kind in DETERMINISTIC_KINDS
        assert MutFinished.kind in DETERMINISTIC_KINDS
        assert WorkerSpawned.kind not in DETERMINISTIC_KINDS
        assert WorkerDied.kind not in DETERMINISTIC_KINDS

    def test_strip_wall_removes_only_the_timestamp(self):
        record = {"t": 1.25, "kind": "case_executed", "case": 0}
        assert strip_wall(record) == {"kind": "case_executed", "case": 0}

    def test_variant_stream_collapses_restart_replay(self):
        """A worker killed at case 2 replays its MuT from case 0 after
        restart; the canonical stream contains each case exactly once,
        in serial order."""

        def case(mut, index):
            return CaseExecuted("win98", mut, index, 1, False, index).as_dict()

        def finished(mut):
            return MutFinished(
                "win98", mut, "g", 3, {"PASS_ERROR": 3}, False, False, 9
            ).as_dict()

        records = [
            VariantStarted("win98", 2).as_dict(),
            case("libc:strcpy", 0),
            case("libc:strcpy", 1),
            case("libc:strcpy", 2),  # ...worker dies here, no mut_finished
            WorkerDied("win98", "killed", "gone").as_dict(),
            VariantStarted("win98", 2).as_dict(),  # restarted worker
            case("libc:strcpy", 0),  # replay from scratch
            case("libc:strcpy", 1),
            case("libc:strcpy", 2),
            finished("libc:strcpy"),
            case("libc:fclose", 0),
            finished("libc:fclose"),
            VariantFinished("win98", 6, 99).as_dict(),
        ]
        stream = variant_stream(records, "win98")
        serial = [
            VariantStarted("win98", 2).as_dict(),
            case("libc:strcpy", 0),
            case("libc:strcpy", 1),
            case("libc:strcpy", 2),
            finished("libc:strcpy"),
            case("libc:fclose", 0),
            finished("libc:fclose"),
            VariantFinished("win98", 6, 99).as_dict(),
        ]
        assert stream == serial

    def test_variant_stream_filters_other_variants_and_ops(self):
        records = [
            VariantStarted("win98", 1).as_dict(),
            VariantStarted("winnt", 1).as_dict(),
            WorkerSpawned("win98", 123, 1).as_dict(),
        ]
        assert variant_stream(records, "winnt") == [
            VariantStarted("winnt", 1).as_dict()
        ]


# ----------------------------------------------------------------------
# Recorders
# ----------------------------------------------------------------------


class TestRecorders:
    def test_memory_recorder_keeps_unstamped_records(self):
        rec = MemoryRecorder()
        rec.emit(VariantStarted("win98", 3))
        assert rec.records == [
            {"kind": "variant_started", "variant": "win98", "planned_muts": 3}
        ]

    def test_jsonl_recorder_stamps_injected_clock(self, tmp_path):
        ticks = iter([0.5, 1.25])
        path = tmp_path / "events.jsonl"
        with JsonlRecorder(path, clock=lambda: next(ticks)) as rec:
            rec.emit(VariantStarted("win98", 3))
            rec.emit(VariantFinished("win98", 60, 7))
        records, malformed = read_events(path)
        assert malformed == 0
        assert [r["t"] for r in records] == [0.5, 1.25]
        assert rec.count == 2
        assert strip_wall(records[0]) == VariantStarted("win98", 3).as_dict()

    def test_jsonl_recorder_accepts_open_stream(self):
        buf = io.StringIO()
        rec = JsonlRecorder(buf, clock=lambda: 0.0)
        rec.emit(WorkerSpawned("linux", 42, 1))
        rec.close()
        assert json.loads(buf.getvalue()) == {
            "t": 0.0, "kind": "worker_spawned", "variant": "linux",
            "pid": 42, "attempt": 1,
        }

    def test_read_events_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"kind":"worker_finished","variant":"win98"}\n'
            '{"kind":"worker_fin',  # killed mid-write
            encoding="utf-8",
        )
        records, malformed = read_events(path)
        assert len(records) == 1 and malformed == 1

    def test_tee_recorder_fans_out_copies(self):
        a, b = MemoryRecorder(), MemoryRecorder()
        tee = TeeRecorder(a, b)
        tee.emit(WorkerSpawned("win98", 1, 1))
        assert a.records == b.records
        a.records[0]["pid"] = 999  # copies, not shared dicts
        assert b.records[0]["pid"] == 1


# ----------------------------------------------------------------------
# Aggregation and the stats CLI
# ----------------------------------------------------------------------


def _drill_records():
    """A tiny supervised-run stream: one restart, one quarantine."""
    return [
        {"t": 1.0, "kind": "campaign_started", "schema": 1,
         "variants": ["win98", "winnt"], "cap": 20},
        {"t": 1.1, **WorkerSpawned("win98", 11, 1).as_dict()},
        {"t": 1.1, **WorkerSpawned("winnt", 12, 1).as_dict()},
        {"t": 1.2, **VariantStarted("win98", 2).as_dict()},
        {"t": 1.2, **VariantStarted("winnt", 2).as_dict()},
        {"t": 1.3, **CaseExecuted("win98", "libc:strcpy", 0, 2, False, 5).as_dict()},
        {"t": 1.4, **WorkerDied("winnt", "killed", "SIGKILL", exitcode=-9).as_dict()},
        {"t": 1.4, **WorkerRestarted("winnt", 2, 0.25, "killed").as_dict()},
        {"t": 1.5, **WorkerSpawned("winnt", 13, 2).as_dict()},
        {"t": 1.6, **MutFinished("win98", "libc:strcpy", "C string", 20,
                                 {"ABORT": 12, "PASS_NO_ERROR": 8},
                                 False, False, 80).as_dict()},
        {"t": 1.7, **MutFinished("winnt", "libc:strcpy", "C string", 20,
                                 {"ABORT": 9, "PASS_ERROR": 11},
                                 False, False, 81).as_dict()},
        {"t": 1.8, "kind": "mut_quarantined", "variant": "winnt",
         "mut": "win32:GetThreadContext", "reason": "poison"},
        {"t": 1.9, **VariantFinished("win98", 20, 90).as_dict()},
        {"t": 2.0, **VariantFinished("winnt", 20, 91).as_dict()},
        {"t": 2.0, "kind": "campaign_finished", "cases": 40},
    ]


class TestAggregator:
    def test_snapshot_counts(self):
        agg = MetricsAggregator()
        for record in _drill_records():
            agg.record(record)
        snap = agg.snapshot()
        assert snap["events"] == len(_drill_records())
        assert snap["campaign"] == {
            "variants": ["win98", "winnt"], "cap": 20, "cases": 40,
        }
        assert snap["wall_s"] == 1.0
        assert snap["ops"]["worker_spawns"] == 3
        assert snap["ops"]["worker_deaths"] == 1
        assert snap["ops"]["worker_restarts"] == 1
        assert snap["ops"]["quarantines"] == 1
        assert snap["ops"]["deaths_by_kind"] == {"killed": 1}
        winnt = snap["variants"]["winnt"]
        assert winnt["workers"] == {"spawned": 2, "died": 1, "restarted": 1}
        assert winnt["outcomes"] == {"ABORT": 9, "PASS_ERROR": 11}
        assert winnt["quarantined_muts"] == 1
        assert snap["groups"]["C string"] == {"muts": 2, "cases": 40}

    def test_unknown_kind_counts_as_malformed(self):
        agg = MetricsAggregator()
        agg.record({"kind": "mystery"})
        assert agg.snapshot()["malformed"] == 1

    def test_render_stats_reports_restart_and_counters(self):
        agg = MetricsAggregator()
        for record in _drill_records():
            agg.record(record)
        report = render_stats(agg.snapshot())
        assert "1 restarted" in report
        assert "killed: 1" in report
        assert "1 MuTs quarantined" in report
        assert "winnt" in report and "win98" in report


class TestStatsCli:
    def test_text_and_json_reports(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        with path.open("w", encoding="utf-8") as fh:
            for record in _drill_records():
                fh.write(json.dumps(record) + "\n")
        assert stats_main([str(path)]) == 0
        text = capsys.readouterr().out
        assert "Campaign telemetry" in text
        assert "1 restarted" in text
        assert stats_main([str(path), "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["ops"]["worker_restarts"] == 1

    def test_empty_file_warns(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        assert stats_main([str(path)]) == 0
        assert "no events" in capsys.readouterr().err

    def test_cli_dispatch(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps(_drill_records()[0]) + "\n", encoding="utf-8"
        )
        assert repro_main(["stats", str(path)]) == 0
        assert "Campaign telemetry" in capsys.readouterr().out

    def test_broken_stdout_pipe_exits_quietly(self, tmp_path):
        """`repro stats events.jsonl | head` must not traceback when
        head closes the pipe early -- exit with the SIGPIPE convention
        instead."""
        import subprocess
        import sys

        path = tmp_path / "events.jsonl"
        with path.open("w", encoding="utf-8") as fh:
            for record in _drill_records():
                fh.write(json.dumps(record) + "\n")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "stats", str(path)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=str(pathlib.Path(__file__).resolve().parent.parent),
        )
        proc.stdout.close()  # the impatient reader
        _, stderr = proc.communicate(timeout=30)
        assert b"Traceback" not in stderr, stderr.decode()
        assert b"BrokenPipeError" not in stderr, stderr.decode()
        assert proc.returncode in (0, 141)  # raced flush vs. EPIPE


# ----------------------------------------------------------------------
# Progress rendering: one line per variant (the --jobs>1 garble fix)
# ----------------------------------------------------------------------


class TestProgressRenderer:
    def test_interleaved_variants_keep_their_own_tty_rows(self):
        """Two variants reporting alternately must each own one row of
        the redrawn block -- the old single \\r line interleaved them
        into garbage."""
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, tty=True)
        renderer.update("win98", "libc:strcpy", 0, 10)
        renderer.update("winnt", "libc:fclose", 0, 10)
        renderer.update("win98", "libc:strcpy", 1, 10)
        renderer.update("winnt", "libc:fclose", 1, 10)
        final_frame = stream.getvalue().split("\x1b[2A")[-1]
        rows = [
            line.replace("\x1b[2K", "")
            for line in final_frame.split("\n")
            if line
        ]
        assert rows == [
            "[win98   ]   2/10 libc:strcpy",
            "[winnt   ]   2/10 libc:fclose",
        ]

    def test_non_tty_degrades_to_line_per_update(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, tty=False)
        renderer.update("win98", "libc:strcpy", 0, 10)
        renderer.update("winnt", "libc:fclose", 0, 10)
        out = stream.getvalue()
        assert "\x1b" not in out and "\r" not in out
        assert out.splitlines() == [
            "[win98   ]   1/10 libc:strcpy",
            "[winnt   ]   1/10 libc:fclose",
        ]

    def test_tty_lines_are_clamped_to_width(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, tty=True, width=20)
        renderer.update("win98", "m" * 100, 0, 10)
        last = stream.getvalue().split("\x1b[2K")[-1]
        assert len(last.rstrip("\n")) == 20

    def test_close_erases_tty_block_and_resets(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, tty=True)
        renderer.update("win98", "libc:strcpy", 0, 10)
        renderer.close()
        assert stream.getvalue().endswith("\x1b[1A" + "\x1b[2K\n" + "\x1b[1A")
        renderer.close()  # idempotent on an empty block


# ----------------------------------------------------------------------
# Service-layer hooks
# ----------------------------------------------------------------------


class _DropFirstSend(LoopbackTransport):
    """Swallows the first send so the client must retransmit."""

    def __init__(self, inbox, outbox, server):
        super().__init__(inbox, outbox, default_timeout=1.0)
        self._server = server
        self._dropped = False

    def send_record(self, payload):
        if not self._dropped:
            self._dropped = True
            return
        from repro.service.rpc import decode_call

        xid, _, _ = decode_call(payload)
        self._server.put(encode_reply(xid, ACCEPT_SUCCESS))


class TestServiceHooks:
    def test_rpc_retry_emits_event(self):
        import queue as q

        inbox, server = q.Queue(), None
        transport = _DropFirstSend(inbox, inbox, inbox)
        rec = MemoryRecorder()
        client = RpcClient(
            transport,
            retry=RetryPolicy(
                attempts=3, call_timeout=0.05, backoff_base=0.001,
                jitter=0.0, sleep=lambda s: None,
            ),
            recorder=rec,
        )
        client.call(procedure=7)
        retries = [r for r in rec.records if r["kind"] == "rpc_retry"]
        assert retries == [{"kind": "rpc_retry", "attempt": 1, "xid": 1}]
        assert client.stats.retries == 1

    def test_chaos_faults_emit_events_with_direction(self):
        a, b = LoopbackTransport.pair(default_timeout=0.5)
        rec = MemoryRecorder()
        chaotic = ChaosTransport(
            a, ChaosConfig(seed=7, drop_rate=1.0), recorder=rec
        )
        for _ in range(3):
            chaotic.send_record(b"x")
        faults = [r for r in rec.records if r["kind"] == "chaos_fault"]
        assert faults == [
            {"kind": "chaos_fault", "fault": "drop", "direction": "send"}
        ] * 3
        assert chaotic.stats.drops == 3

    def test_chaos_recv_direction(self):
        a, b = LoopbackTransport.pair(default_timeout=0.5)
        rec = MemoryRecorder()
        chaotic = ChaosTransport(
            a, ChaosConfig(seed=3, dup_rate=1.0), recorder=rec
        )
        b.send_record(b"hello")
        assert chaotic.recv_record(timeout=0.5) == b"hello"
        faults = [r for r in rec.records if r["kind"] == "chaos_fault"]
        assert {"kind": "chaos_fault", "fault": "dup",
                "direction": "recv"} in faults


# ----------------------------------------------------------------------
# Pump-loop regressions
# ----------------------------------------------------------------------


def _flood_and_ignore_sigterm(events):
    """A worst-case worker for shutdown: its queue feeder is wedged on a
    full pipe (the parent stopped pumping) and it ignores SIGTERM, the
    exact shape of a hung MuT loop under BALLISTA_FAULT_HANG."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    payload = "x" * 65536
    for index in range(256):
        events.put(("progress", "flood", payload, index, 256))
    while True:
        time.sleep(0.05)


class TestStopWorkers:
    def test_drains_queue_and_escalates_to_kill(self):
        """Regression: ``_run_workers``'s finally block used to
        terminate/join without draining the event queue; a worker with a
        blocked feeder thread that also ignored SIGTERM leaked past the
        join timeout.  ``_stop_workers`` must drain and then SIGKILL."""
        ctx = multiprocessing.get_context("spawn")
        events = ctx.Queue()
        worker = ctx.Process(
            target=_flood_and_ignore_sigterm, args=(events,), daemon=True
        )
        worker.start()
        # Wait for the flood to begin so the feeder pipe is full.
        first = events.get(timeout=30)
        assert first[1] == "flood"
        deadline = time.monotonic() + 30
        while worker.is_alive() and time.monotonic() < deadline:
            ParallelCampaign._stop_workers(
                {"flood": worker}, events, grace=1.0
            )
            break
        assert not worker.is_alive(), "hung worker leaked past shutdown"
        assert worker.exitcode == -signal.SIGKILL
        events.cancel_join_thread()

    def test_noop_on_empty_fleet(self):
        ctx = multiprocessing.get_context("spawn")
        events = ctx.Queue()
        ParallelCampaign._stop_workers({}, events)  # must not raise
        events.cancel_join_thread()


class _FakeWorker:
    """Just enough Process surface for the reap-gating unit tests."""

    def __init__(self, alive: bool, exitcode=None):
        self._alive = alive
        self.exitcode = exitcode
        read, write = multiprocessing.Pipe(duplex=False)
        self._read, self._write = read, write
        if not alive:
            write.close()  # a closed pipe end polls ready, like a real
            # process sentinel after exit

    @property
    def sentinel(self):
        return self._read

    def is_alive(self):
        return self._alive

    def join(self, timeout=None):
        pass


class TestReapGating:
    def test_dead_workers_empty_for_healthy_fleet(self):
        running = {"a": _FakeWorker(alive=True), "b": _FakeWorker(alive=True)}
        assert ParallelCampaign._dead_workers(running) == []

    def test_dead_workers_flags_exited_sentinel(self):
        running = {
            "a": _FakeWorker(alive=True),
            "b": _FakeWorker(alive=False, exitcode=-9),
        }
        assert ParallelCampaign._dead_workers(running) == ["b"]

    def test_reap_emits_worker_died_only_for_real_deaths(self):
        rec = MemoryRecorder()
        errors = {}
        running = {"b": _FakeWorker(alive=False, exitcode=-9)}
        ParallelCampaign._reap_silent_deaths(running, errors, ["b"], rec)
        assert "b" in errors
        kinds = [r["kind"] for r in rec.records]
        assert kinds == ["worker_died"]
        assert rec.records[0]["death"] == "killed"
        assert rec.records[0]["exitcode"] == -9

    def test_clean_exit_is_not_reaped(self):
        rec = MemoryRecorder()
        errors = {}
        running = {"a": _FakeWorker(alive=False, exitcode=0)}
        ParallelCampaign._reap_silent_deaths(running, errors, ["a"], rec)
        assert errors == {} and rec.records == []
        assert "a" in running  # the done-message path retires it

    def test_pump_timeout_floor(self):
        """Regression: a 0.2s MuT deadline used to drive the pump poll
        down to 10ms (a busy loop); the floor is now 50ms."""
        tight = SupervisedCampaign(
            [WIN98], jobs=2,
            policy=SupervisorPolicy(mut_deadline=0.2, max_restarts=1),
        )
        assert tight._pump_timeout() == pytest.approx(0.05)
        roomy = SupervisedCampaign(
            [WIN98], jobs=2,
            policy=SupervisorPolicy(mut_deadline=300.0, max_restarts=1),
        )
        assert roomy._pump_timeout() == pytest.approx(0.2)
        off = SupervisedCampaign(
            [WIN98], jobs=2,
            policy=SupervisorPolicy(mut_deadline=None, max_restarts=1),
        )
        assert off._pump_timeout() == pytest.approx(0.2)
