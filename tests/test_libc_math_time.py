"""Unit tests for the C math and C time groups across CRT flavours."""

import math

import pytest

from repro.core.context import TestContext
from repro.libc import errno_codes as E
from repro.libc.time_funcs import _civil_from_unix
from repro.posix.linux import LINUX
from repro.sim.errors import AccessViolation, ArithmeticFault
from repro.sim.machine import Machine
from repro.win32.variants import WINNT


def crt_for(personality):
    machine = Machine(personality)
    ctx = TestContext(machine, machine.spawn_process())
    return ctx, ctx.crt


@pytest.fixture()
def glibc():
    return crt_for(LINUX)


@pytest.fixture()
def msvcrt():
    return crt_for(WINNT)


class TestMathValues:
    @pytest.mark.parametrize(
        "func,arg,expected",
        [
            ("sqrt", 4.0, 2.0),
            ("sqrt", 0.0, 0.0),
            ("exp", 0.0, 1.0),
            ("log", math.e, 1.0),
            ("log10", 100.0, 2.0),
            ("fabs", -2.5, 2.5),
            ("ceil", 1.2, 2.0),
            ("floor", 1.8, 1.0),
            ("sin", 0.0, 0.0),
            ("cos", 0.0, 1.0),
            ("tan", 0.0, 0.0),
            ("sinh", 0.0, 0.0),
            ("cosh", 0.0, 1.0),
            ("tanh", 0.0, 0.0),
            ("asin", 1.0, math.pi / 2),
            ("acos", 1.0, 0.0),
            ("atan", 0.0, 0.0),
        ],
    )
    def test_values_match_reference(self, glibc, func, arg, expected):
        _, crt = glibc
        assert getattr(crt, func)(arg) == pytest.approx(expected)

    def test_binary_functions(self, glibc):
        _, crt = glibc
        assert crt.atan2(1.0, 1.0) == pytest.approx(math.pi / 4)
        assert crt.pow(2.0, 10.0) == 1024.0
        assert crt.fmod(7.0, 3.0) == pytest.approx(1.0)
        assert crt.ldexp(1.5, 3) == 12.0

    def test_abs_and_labs(self, glibc):
        _, crt = glibc
        assert crt.abs(-5) == 5
        assert crt.labs(5) == 5
        # abs(INT_MIN) is UB; real CRTs return INT_MIN unchanged.
        assert crt.abs(-0x8000_0000) == -0x8000_0000


class TestMathDomainErrors:
    def test_glibc_reports_edom_quietly(self, glibc):
        ctx, crt = glibc
        assert math.isnan(crt.sqrt(-1.0))
        assert ctx.process.errno == E.EDOM

    def test_glibc_log_zero_is_edom(self, glibc):
        ctx, crt = glibc
        crt.log(0.0)
        assert ctx.process.errno == E.EDOM

    def test_glibc_nan_propagates_quietly(self, glibc):
        ctx, crt = glibc
        assert math.isnan(crt.sin(math.nan))
        assert ctx.process.errno == 0

    def test_msvcrt_nan_raises_fp_exception(self, msvcrt):
        _, crt = msvcrt
        with pytest.raises(ArithmeticFault) as info:
            crt.sin(math.nan)
        assert info.value.win32_exception == "EXCEPTION_FLT_INVALID_OPERATION"

    def test_msvcrt_nan_in_second_operand_raises(self, msvcrt):
        _, crt = msvcrt
        with pytest.raises(ArithmeticFault):
            crt.pow(2.0, math.nan)

    def test_msvcrt_domain_error_still_errno(self, msvcrt):
        ctx, crt = msvcrt
        crt.sqrt(-1.0)
        assert ctx.process.errno == E.EDOM

    def test_exp_overflow_is_erange(self, glibc):
        ctx, crt = glibc
        result = crt.exp(1e308)
        assert result == pytest.approx(1.79769313486231571e308)
        assert ctx.process.errno == E.ERANGE

    def test_pow_overflow_is_erange(self, glibc):
        ctx, crt = glibc
        crt.pow(1e308, 2.0)
        assert ctx.process.errno == E.ERANGE

    def test_fmod_zero_divisor_edom(self, glibc):
        ctx, crt = glibc
        crt.fmod(1.0, 0.0)
        assert ctx.process.errno == E.EDOM

    def test_trig_of_infinity_is_edom(self, glibc):
        ctx, crt = glibc
        crt.sin(math.inf)
        assert ctx.process.errno == E.EDOM


class TestCivilTime:
    def test_epoch(self):
        assert _civil_from_unix(0)[:6] == (1970, 0, 1, 0, 0, 0)

    def test_known_date(self):
        # 2000-06-25 00:00:00 UTC (the paper's conference opening day).
        year, mon, day, hour, minute, sec, wday, yday = _civil_from_unix(
            961_891_200
        )
        assert (year, mon + 1, day) == (2000, 6, 25)
        assert (hour, minute, sec) == (0, 0, 0)
        assert wday == 0  # Sunday

    def test_matches_python_datetime(self):
        import datetime

        for seconds in (86_399, 951_827_696, 1_234_567_890, 2**31 - 1):
            expected = datetime.datetime.fromtimestamp(
                seconds, tz=datetime.timezone.utc
            )
            year, mon, day, hour, minute, sec, _, _ = _civil_from_unix(seconds)
            assert (year, mon + 1, day, hour, minute, sec) == (
                expected.year,
                expected.month,
                expected.day,
                expected.hour,
                expected.minute,
                expected.second,
            )


class TestTimeFunctions:
    def test_time_returns_clock(self, glibc):
        ctx, crt = glibc
        assert crt.time(0) == ctx.machine.clock.unix_seconds()

    def test_time_writes_through_valid_pointer(self, glibc):
        ctx, crt = glibc
        out = ctx.buffer(8)
        now = crt.time(out)
        assert ctx.mem.read_u32(out) == now

    def test_glibc_time_bad_pointer_is_efault(self, glibc):
        ctx, crt = glibc
        assert crt.time(0xDEAD_0000) == 0xFFFF_FFFF
        assert ctx.process.errno == E.EFAULT

    def test_msvcrt_time_bad_pointer_faults(self, msvcrt):
        _, crt = msvcrt
        with pytest.raises(AccessViolation):
            crt.time(0xDEAD_0000)

    def test_localtime_roundtrip_with_mktime(self, glibc):
        ctx, crt = glibc
        now = ctx.machine.clock.unix_seconds()
        t_ptr = ctx.buffer(8)
        ctx.mem.write_u32(t_ptr, now)
        tm_addr = crt.localtime(t_ptr)
        assert crt.mktime(tm_addr) == now

    def test_localtime_bad_pointer_faults_everywhere(self, glibc, msvcrt):
        for ctx, crt in (glibc, msvcrt):
            with pytest.raises(AccessViolation):
                crt.localtime(0)

    def test_glibc_rejects_garbage_tm(self, glibc):
        ctx, crt = glibc
        garbage = ctx.buffer(44, b"\x7f" * 44)
        assert crt.mktime(garbage) == 0xFFFF_FFFF
        assert ctx.process.errno == E.EOVERFLOW

    def test_msvcrt_garbage_tm_walks_off_month_table(self, msvcrt):
        ctx, crt = msvcrt
        garbage = ctx.buffer(44, b"\x7f" * 44)
        with pytest.raises(AccessViolation):
            crt.mktime(garbage)

    def test_asctime_formats(self, glibc):
        ctx, crt = glibc
        tm = ctx.buffer(44)
        for index, value in enumerate([0, 30, 12, 25, 5, 100, 0, 176, 0]):
            ctx.mem.write_i32(tm + 4 * index, value)
        out = crt.asctime(tm)
        text = ctx.mem.read_cstring(out)
        assert b"Jun" in text and b"2000" in text and b"12:30:00" in text

    def test_ctime_equals_asctime_of_localtime(self, glibc):
        ctx, crt = glibc
        t_ptr = ctx.buffer(8)
        ctx.mem.write_u32(t_ptr, 961_891_200)
        text = ctx.mem.read_cstring(crt.ctime(t_ptr))
        assert b"Sun Jun 25" in text

    def test_strftime_conversions(self, glibc):
        ctx, crt = glibc
        tm = ctx.buffer(44)
        for index, value in enumerate([0, 0, 9, 25, 5, 100, 0, 176, 0]):
            ctx.mem.write_i32(tm + 4 * index, value)
        out = ctx.buffer(64)
        fmt = ctx.cstring(b"%Y-%m-%d %H")
        written = crt.strftime(out, 64, fmt, tm)
        assert written == len("2000-06-25 09")
        assert ctx.mem.read_cstring(out) == b"2000-06-25 09"

    def test_strftime_zero_maxsize_returns_zero(self, glibc):
        ctx, crt = glibc
        tm = ctx.buffer(44)
        ctx.mem.write_i32(tm + 12, 1)  # mday
        assert crt.strftime(ctx.buffer(8), 0, ctx.cstring(b"%d"), tm) == 0

    def test_difftime(self, glibc):
        _, crt = glibc
        assert crt.difftime(100, 40) == 60.0
