"""Regenerate the hot-path reference outputs.

Usage::

    PYTHONPATH=src python benchmarks/make_hotpath_refs.py [OUTDIR]

``OUTDIR`` defaults to ``tests/golden/hotpath`` -- the committed
reference copies, generated once *before* the hot-path optimizations.
CI's perf-smoke job regenerates into a scratch directory and
byte-compares (``cmp``) against the committed copies, and
``tests/test_hotpath_golden.py`` does the same in-process: together they
prove the optimized hot path still produces the exact bytes the
unoptimized code did -- result sets, checkpoints, the rendered Table 1,
and the (wall-clock-stripped) telemetry event stream, in both case and
sequence mode.

Everything here is deterministic: fixed variants, fixed cap, fixed
sequence seed, and no absolute paths or timestamps in any output.
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile

from repro import Campaign, CampaignConfig
from repro.analysis.tables import render_sequence_table, render_table1
from repro.core.results_io import checkpoint_to_dict, results_to_dict
from repro.obs.recorder import JsonlRecorder
from repro.posix.linux import LINUX
from repro.win32.variants import WIN98, WINCE, WINNT

CAP = 40
VARIANTS = [WIN98, WINNT, WINCE, LINUX]
SEQUENCES = 20


def _strip_wallclock(jsonl_text: str) -> str:
    """Drop the wall-clock ``t`` stamp from each event record, keeping
    every simulated-time field; the result is deterministic."""
    lines = []
    for line in jsonl_text.splitlines():
        if not line:
            continue
        record = json.loads(line)
        record.pop("t", None)
        lines.append(json.dumps(record, separators=(",", ":")))
    return "\n".join(lines) + "\n"


#: Reference files whose committed copy is gzip-compressed (they are
#: megabytes raw; ``gzip.compress(..., mtime=0)`` is deterministic).
#: The rendered tables stay raw -- they are small and review-friendly.
COMPRESSED = (
    "results.json",
    "checkpoint.json",
    "events.jsonl",
    "seq_results.json",
)


def generate(outdir: pathlib.Path, compress: bool = False) -> list[str]:
    outdir.mkdir(parents=True, exist_ok=True)

    with tempfile.TemporaryDirectory() as tmp:
        events_tmp = pathlib.Path(tmp) / "events.jsonl"
        recorder = JsonlRecorder(events_tmp)
        campaign = Campaign(VARIANTS, config=CampaignConfig(cap=CAP))
        try:
            results = campaign.run(recorder=recorder)
        finally:
            recorder.close()
        events = _strip_wallclock(events_tmp.read_text(encoding="utf-8"))

    (outdir / "results.json").write_text(
        json.dumps(results_to_dict(results), separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    (outdir / "checkpoint.json").write_text(
        json.dumps(
            checkpoint_to_dict(campaign.last_checkpoint),
            separators=(",", ":"),
        )
        + "\n",
        encoding="utf-8",
    )
    (outdir / "table1.txt").write_text(
        render_table1(results) + "\n", encoding="utf-8"
    )
    (outdir / "events.jsonl").write_text(events, encoding="utf-8")

    seq_campaign = Campaign(
        [WINNT],
        config=CampaignConfig(cap=CAP, mode="sequence", sequences=SEQUENCES),
    )
    seq_results = seq_campaign.run()
    (outdir / "seq_results.json").write_text(
        json.dumps(results_to_dict(seq_results), separators=(",", ":"))
        + "\n",
        encoding="utf-8",
    )
    (outdir / "seq_table.txt").write_text(
        render_sequence_table(seq_results) + "\n", encoding="utf-8"
    )
    names = [
        "results.json",
        "checkpoint.json",
        "table1.txt",
        "events.jsonl",
        "seq_results.json",
        "seq_table.txt",
    ]
    if compress:
        import gzip

        for name in COMPRESSED:
            raw = outdir / name
            (outdir / (name + ".gz")).write_bytes(
                gzip.compress(raw.read_bytes(), 9, mtime=0)
            )
            raw.unlink()
        names = [
            name + ".gz" if name in COMPRESSED else name for name in names
        ]
    return names


def main(argv: list[str]) -> int:
    """No argument: refresh the committed (compressed) references.
    With ``OUTDIR``: write raw outputs there for comparison."""
    default = pathlib.Path(__file__).parent.parent / "tests/golden/hotpath"
    outdir = pathlib.Path(argv[0]) if argv else default
    for name in generate(outdir, compress=not argv):
        sys.stderr.write(f"wrote {outdir / name}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
