"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Isolation**: fresh-machine-per-case removes the paper's ``*``
   inter-test-interference crashes (why they "could not be reproduced
   outside of the test harness").
2. **Sampling cap**: failure rates are stable across caps, validating
   the paper's claim that 5000-case random sampling tracks exhaustive
   testing.
3. **Thrown-exception policy**: the paper's "more than fair" rule
   (thrown exceptions are recoverable error reports) vs counting every
   thrown exception as an Abort.
"""

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.crash_scale import CaseCode
from repro.win32.variants import WIN98, WINNT

#: MuTs with interference (starred) crashes on Windows 98.
STARRED = ["DuplicateHandle", "strncpy", "fwrite"]
#: A stable sample of non-crashing MuTs for rate-stability checks.
SAMPLE = ["strcpy", "fopen", "ReadFile", "CreateFileA", "malloc", "isalpha"]


class TestIsolationAblation:
    def test_shared_machine_reproduces_starred_crashes(self, benchmark, bench_cap):
        def run():
            return Campaign(
                [WIN98],
                config=CampaignConfig(cap=min(bench_cap, 150)),
                muts=STARRED,
            ).run()

        results = benchmark.pedantic(run, rounds=2, iterations=1)
        crashed = {r.mut_name for r in results.catastrophic_muts("win98")}
        assert crashed == set(STARRED)
        assert all(
            r.interference_crash for r in results.catastrophic_muts("win98")
        )

    def test_full_isolation_hides_starred_crashes(self, benchmark, bench_cap):
        def run():
            return Campaign(
                [WIN98],
                config=CampaignConfig(
                    cap=min(bench_cap, 150), machine_per_case=True
                ),
                muts=STARRED,
            ).run()

        results = benchmark.pedantic(run, rounds=2, iterations=1)
        assert results.catastrophic_muts("win98") == []


class TestSamplingAblation:
    @pytest.mark.parametrize("cap", [50, 100, 200])
    def test_rates_stable_across_caps(self, benchmark, cap):
        def run():
            results = Campaign(
                [WINNT], config=CampaignConfig(cap=cap), muts=SAMPLE
            ).run()
            return {
                r.mut_name: r.abort_rate for r in results.for_variant("winnt")
            }

        rates = benchmark.pedantic(run, rounds=1, iterations=1)
        # Reference: the rates at the largest cap in this matrix.
        reference = {
            r.mut_name: r.abort_rate
            for r in Campaign(
                [WINNT], config=CampaignConfig(cap=200), muts=SAMPLE
            )
            .run()
            .for_variant("winnt")
        }
        for name, rate in rates.items():
            assert rate == pytest.approx(reference[name], abs=0.12), name


class TestThrownExceptionAblation:
    def test_fair_policy_vs_harsh_policy(self, benchmark, bench_cap):
        muts = ["HeapAlloc"]  # throws STATUS_NO_MEMORY with the flag set

        def run_both():
            fair = Campaign(
                [WINNT], config=CampaignConfig(cap=min(bench_cap, 150)), muts=muts
            ).run()
            harsh = Campaign(
                [WINNT],
                config=CampaignConfig(
                    cap=min(bench_cap, 150),
                    count_thrown_exceptions_as_abort=True,
                ),
                muts=muts,
            ).run()
            return (
                fair.uniform_rate("winnt", CaseCode.ABORT),
                harsh.uniform_rate("winnt", CaseCode.ABORT),
            )

        fair_rate, harsh_rate = benchmark.pedantic(run_both, rounds=1, iterations=1)
        assert harsh_rate >= fair_rate
