"""Regenerates paper Figure 2 (Abort + Restart + estimated Silent
failure rates for the desktop Windows variants) and benchmarks the
cross-variant voting estimator."""

from repro.analysis.groups import SYSCALL_GROUPS
from repro.analysis.silent import estimate_silent_rates
from repro.analysis.tables import render_figure2


def test_render_figure2(benchmark, paper_results, artifact_dir):
    text = benchmark(render_figure2, paper_results)
    (artifact_dir / "figure2.txt").write_text(text + "\n", encoding="utf-8")
    assert "Windows 95" in text and "Windows 2000" in text


def test_voting_estimator(benchmark, paper_results):
    estimates = benchmark(estimate_silent_rates, paper_results)
    assert set(estimates) == {"win95", "win98", "win98se", "winnt", "win2000"}


def test_figure2_shape_9x_more_silent_on_syscalls(benchmark, paper_results):
    """'the Win32 calls for Windows 95/98/98 SE have a significantly
    higher Silent failure rate than Windows NT/2000'."""

    def syscall_silent_by_family():
        estimates = estimate_silent_rates(paper_results)

        def mean_for(variant):
            est = estimates[variant]
            rates = [
                r
                for key, r in est.per_mut.items()
                if est.mut_groups[key] in SYSCALL_GROUPS
            ]
            return sum(rates) / len(rates)

        return {v: mean_for(v) for v in estimates}

    rates = benchmark(syscall_silent_by_family)
    for old in ("win95", "win98", "win98se"):
        for new in ("winnt", "win2000"):
            assert rates[old] > 2 * rates[new]
