"""Benchmark the variant-parallel campaign runner against serial.

A four-variant campaign (Windows 98, NT, 2000, Linux) runs once
serially and once through :class:`ParallelCampaign` with four workers,
at ``BALLISTA_BENCH_CAP`` (default 200; the paper's scale is 5000).
Both runs must produce byte-identical result-set documents -- the
speedup is free, never paid for in fidelity.

On a machine with >= 4 cores the parallel run is required to finish at
least 2x faster than serial; on smaller machines the ratio is only
reported (there is nothing to fan out onto).  Timings land in
``benchmarks/out/parallel.txt``.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.parallel import ParallelCampaign
from repro.core.results_io import results_to_dict
from repro.posix.linux import LINUX
from repro.win32.variants import WIN2000, WIN98, WINNT

VARIANTS = [WIN98, WINNT, WIN2000, LINUX]
JOBS = 4


def test_parallel_speedup_and_fidelity(artifact_dir, bench_cap):
    config = CampaignConfig(cap=bench_cap)

    started = time.perf_counter()
    serial_results = Campaign(VARIANTS, config=config).run()
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel_results = ParallelCampaign(VARIANTS, config=config, jobs=JOBS).run()
    parallel_s = time.perf_counter() - started

    serial_doc = json.dumps(results_to_dict(serial_results), separators=(",", ":"))
    parallel_doc = json.dumps(
        results_to_dict(parallel_results), separators=(",", ":")
    )
    assert parallel_doc == serial_doc, "parallel output must be byte-identical"

    cores = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    lines = [
        f"Variant-parallel campaign, {len(VARIANTS)} variants, "
        f"cap {bench_cap}, {JOBS} workers, {cores} cores",
        "",
        f"serial:   {serial_s:8.2f}s",
        f"parallel: {parallel_s:8.2f}s",
        f"speedup:  {speedup:8.2f}x",
        f"cases:    {serial_results.total_cases():8d}",
        "output:   byte-identical",
    ]
    (artifact_dir / "parallel.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup on {cores} cores, got {speedup:.2f}x "
            f"(serial {serial_s:.2f}s vs parallel {parallel_s:.2f}s)"
        )
