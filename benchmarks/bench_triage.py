"""Benchmarks for the triage tooling (the paper's future-work items):
ddmin crash minimisation, sequence replay, the leak audit, and the
heavy-load comparison."""

from repro.triage import (
    audit_leaks,
    capture_crash_prefix,
    minimize_crash_sequence,
    render_repro_program,
    replay_sequence,
    run_load_comparison,
)
from repro.triage.sequence import SequenceStep
from repro.win32.variants import WIN98


def test_capture_crash_prefix(benchmark):
    prefix = benchmark.pedantic(
        capture_crash_prefix, args=(WIN98, "strncpy"), kwargs={"cap": 300},
        rounds=3, iterations=1,
    )
    assert prefix is not None


def test_minimize_interference_crash(benchmark, artifact_dir):
    prefix = capture_crash_prefix(WIN98, "strncpy", cap=300)

    def minimise():
        return minimize_crash_sequence(WIN98, prefix)

    minimal = benchmark.pedantic(minimise, rounds=3, iterations=1)
    assert len(minimal) == WIN98.corruption_tolerance + 1
    program = render_repro_program(WIN98, minimal)
    (artifact_dir / "minimal_repro.c").write_text(program + "\n")


def test_sequence_replay_throughput(benchmark):
    step = SequenceStep("libc", "strcpy", ("PTR_PAGE", "STR_SHORT"))

    def replay():
        return replay_sequence(WIN98, [step] * 50)

    outcome = benchmark(replay)
    assert outcome.executed == 50


def test_leak_audit(benchmark):
    report = benchmark.pedantic(
        audit_leaks,
        args=(WIN98, ["GetTempFileNameA", "CreateFileA", "strcpy"]),
        kwargs={"cap": 60},
        rounds=2,
        iterations=1,
    )
    assert report.leaking_muts()


def test_load_comparison(benchmark, artifact_dir):
    def compare():
        return run_load_comparison(
            WIN98, ["strncpy", "CreateFileA", "GetThreadContext"], cap=100
        )

    report = benchmark.pedantic(compare, rounds=2, iterations=1)
    assert report.accelerated_crashes()
    (artifact_dir / "load_comparison.txt").write_text(report.render() + "\n")
