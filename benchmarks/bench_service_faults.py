"""Benchmark the distributed campaign's fault tolerance overhead.

One Ballista client runs a subset campaign against the server over a
loopback link wrapped in a seeded :class:`ChaosTransport`, at record
drop rates of 0%, 1%, and 5%.  Each run measures wall-clock completion
time and reports the retry/fault counters, and every run must produce
the same result set as the fault-free local campaign -- paying for
dependability in time, never in data.

A summary of retries and injected faults per drop rate is written to
``benchmarks/out/service_faults.txt``.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.mut import MuTRegistry, default_registry
from repro.service import (
    BallistaClient,
    BallistaServer,
    ChaosConfig,
    ChaosTransport,
    LoopbackTransport,
    RetryPolicy,
)
from repro.win32.variants import WINNT

SUBSET = ["GetThreadContext", "CloseHandle", "strcpy", "isalpha", "fclose"]
CAP = 60
DROP_RATES = [0.0, 0.01, 0.05]
SEED = 1990

#: Tight timeouts keep a dropped record cheap; the budget is generous
#: enough that a 5% loss rate cannot exhaust it.
RETRY = RetryPolicy(attempts=10, call_timeout=0.25, backoff_base=0.005)

_collected: dict[float, dict[str, int]] = {}


def subset_registry() -> MuTRegistry:
    sub = MuTRegistry()
    for mut in default_registry().all():
        if mut.name in SUBSET:
            sub.register(mut)
    return sub


def run_campaign_at(drop_rate: float) -> dict[str, int]:
    registry = subset_registry()
    server = BallistaServer([WINNT], registry=registry, cap=CAP)
    server_end, client_end = LoopbackTransport.pair()
    server.attach(server_end)
    chaos = ChaosTransport(
        client_end,
        ChaosConfig(seed=SEED, drop_rate=drop_rate, dup_rate=drop_rate),
    )
    client = BallistaClient(WINNT, chaos, registry=registry, retry=RETRY)
    client.run()
    server.join({"winnt"})
    local = Campaign(
        [WINNT], registry=registry, config=CampaignConfig(cap=CAP)
    ).run()
    for row in local.for_variant("winnt"):
        mirrored = server.results.get("winnt", row.mut_name, api=row.api)
        assert bytes(mirrored.codes) == bytes(row.codes), row.mut_name
    return {
        "calls": client.rpc.stats.calls,
        "retries": client.rpc.stats.retries,
        "stale_replies": client.rpc.stats.stale_replies,
        "faults": chaos.stats.faults,
        "duplicate_reports": server.duplicate_reports,
    }


@pytest.mark.parametrize("drop_rate", DROP_RATES)
def test_campaign_under_drop_rate(benchmark, drop_rate):
    counters = benchmark.pedantic(
        run_campaign_at, args=(drop_rate,), rounds=1, iterations=1
    )
    if drop_rate == 0.0:
        assert counters["retries"] == 0
        assert counters["faults"] == 0
    else:
        assert counters["faults"] > 0
    _collected[drop_rate] = counters


def test_write_fault_summary(artifact_dir):
    lines = [
        "Distributed campaign under chaos (drop = dup rate, "
        f"seed {SEED}, cap {CAP}, {len(SUBSET)} MuTs)",
        "",
        f"{'drop':>6s} {'calls':>7s} {'retries':>8s} {'stale':>7s} "
        f"{'faults':>7s} {'dup-reports':>12s}",
    ]
    for rate in DROP_RATES:
        counters = _collected.get(rate)
        if counters is None:
            continue
        lines.append(
            f"{100 * rate:5.1f}% {counters['calls']:7d} "
            f"{counters['retries']:8d} {counters['stale_replies']:7d} "
            f"{counters['faults']:7d} {counters['duplicate_reports']:12d}"
        )
    (artifact_dir / "service_faults.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
