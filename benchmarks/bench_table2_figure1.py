"""Regenerates paper Table 2 and Figure 1 (failure rates by functional
category) and benchmarks the grouping pipeline."""

from repro.analysis.groups import C_GROUPS, SYSCALL_GROUPS
from repro.analysis.rates import group_rates
from repro.analysis.tables import render_figure1, render_table2


def test_render_table2(benchmark, paper_results, artifact_dir):
    text = benchmark(render_table2, paper_results)
    (artifact_dir / "table2.txt").write_text(text + "\n", encoding="utf-8")
    assert "C char" in text
    assert "N/A" in text  # Windows CE has no C time group
    assert "*" in text  # catastrophic markers


def test_render_figure1(benchmark, paper_results, artifact_dir):
    text = benchmark(render_figure1, paper_results)
    (artifact_dir / "figure1.txt").write_text(text + "\n", encoding="utf-8")
    assert text.count("|") >= 12 * 7


def test_group_rates_pipeline(benchmark, paper_results):
    rates = benchmark(group_rates, paper_results, "winnt")
    assert set(rates) == set(SYSCALL_GROUPS + C_GROUPS)


def test_figure1_shape_linux_vs_nt(paper_results, benchmark):
    """The paper's 8-lower/4-higher Linux-vs-NT group split."""

    def split():
        linux = group_rates(paper_results, "linux")
        nt = group_rates(paper_results, "winnt")
        return {
            g
            for g in SYSCALL_GROUPS + C_GROUPS
            if linux[g].abort_rate > nt[g].abort_rate
        }

    higher = benchmark(split)
    assert higher == {
        "C char",
        "C file I/O management",
        "C memory management",
        "C stream I/O",
    }
