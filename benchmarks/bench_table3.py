"""Regenerates paper Table 3 (functions exhibiting Catastrophic
failures) and validates the per-variant crash lists exactly."""

from repro.analysis.tables import render_table3


def crashed(results, variant, api=None):
    return {
        r.mut_name
        for r in results.catastrophic_muts(variant)
        if api is None or r.api == api
    }


def test_render_table3(benchmark, paper_results, artifact_dir):
    text = benchmark(render_table3, paper_results)
    (artifact_dir / "table3.txt").write_text(text + "\n", encoding="utf-8")
    assert "*DuplicateHandle" in text
    assert "GetThreadContext" in text


def test_table3_win98_exact_crash_list(benchmark, paper_results):
    names = benchmark(crashed, paper_results, "win98")
    assert names == {
        "DuplicateHandle",
        "GetFileInformationByHandle",
        "GetThreadContext",
        "MsgWaitForMultipleObjects",
        "MsgWaitForMultipleObjectsEx",
        "fwrite",
        "strncpy",
    }


def test_table3_wince_syscall_crash_list(benchmark, paper_results):
    names = benchmark(crashed, paper_results, "wince", "win32")
    assert len(names) == 10  # the paper's ten CE system calls
    assert {"GetThreadContext", "SetThreadContext", "VirtualAlloc"} <= names


def test_table3_nt_2000_linux_clean(benchmark, paper_results):
    def clean():
        return {
            v: crashed(paper_results, v) for v in ("winnt", "win2000", "linux")
        }

    lists = benchmark(clean)
    assert all(not names for names in lists.values())
