"""Regenerates paper Table 1 (robustness failure rates by MuT) and
benchmarks the pipeline that produces it."""

from repro.analysis.rates import summarize
from repro.analysis.tables import render_table1
from repro.core.campaign import Campaign, CampaignConfig
from repro.win32.variants import WIN98, WINNT


def test_render_table1(benchmark, paper_results, artifact_dir):
    text = benchmark(render_table1, paper_results)
    (artifact_dir / "table1.txt").write_text(text + "\n", encoding="utf-8")
    # Shape assertions (paper Table 1 structure).
    assert "Windows CE" in text and "82 (108)" in text
    nt = summarize(paper_results, "winnt")
    linux = summarize(paper_results, "linux")
    assert nt.muts_catastrophic == 0
    assert linux.muts_catastrophic == 0
    w98 = summarize(paper_results, "win98")
    assert w98.syscalls_catastrophic == 5
    assert w98.c_functions_catastrophic == 2


def test_summarize_one_variant(benchmark, paper_results):
    summary = benchmark(summarize, paper_results, "win98")
    assert summary.syscalls_tested == 143


def test_campaign_throughput_small_slice(benchmark, bench_cap):
    """End-to-end campaign throughput on a representative MuT subset."""
    subset = [
        "GetThreadContext", "CreateFileA", "ReadFile", "CloseHandle",
        "strcpy", "fopen", "malloc", "isalpha",
    ]

    def run_slice():
        campaign = Campaign(
            [WIN98, WINNT],
            config=CampaignConfig(cap=min(bench_cap, 100)),
            muts=subset,
        )
        return campaign.run()

    results = benchmark.pedantic(run_slice, rounds=3, iterations=1)
    assert results.total_cases() > 0
