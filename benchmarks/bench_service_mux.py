"""Benchmark the multi-tenant campaign service's multiplexing win.

``run_service_load`` drives 1, 2, and 4 concurrent tenants (distinct
OS-variant shards) against one :class:`CampaignService` with two worker
slots, measuring wall-clock completion of the whole tenant cohort.  The
baseline is the same specs run serially in-process.  Every service run
verifies each streamed result set against its serial twin, so the
benchmark doubles as a correctness check -- multiplexing buys latency,
never data.

A summary is written to ``benchmarks/out/service_mux.txt``.
"""

from __future__ import annotations

import time

import pytest

from repro import ALL_VARIANTS, Campaign, CampaignConfig
from repro.service import CampaignService
from repro.triage.load_test import (
    SERVICE_LOAD_MUTS,
    SERVICE_LOAD_VARIANTS,
    run_service_load,
)

CAP = 40
TENANT_COUNTS = [1, 2, 4]

_collected: dict[int, dict[str, float]] = {}


def serial_baseline(tenants: int) -> float:
    by_key = {p.key: p for p in ALL_VARIANTS}
    started = time.perf_counter()
    for index in range(tenants):
        key = SERVICE_LOAD_VARIANTS[index % len(SERVICE_LOAD_VARIANTS)]
        Campaign(
            [by_key[key]],
            config=CampaignConfig(cap=CAP),
            muts=list(SERVICE_LOAD_MUTS),
        ).run()
    return time.perf_counter() - started


def run_cohort(tenants: int, tmp_path) -> dict[str, float]:
    service = CampaignService(
        tmp_path / f"mux-{tenants}", max_workers=2, lease_s=10.0
    )
    host, port = service.listen()
    started = time.perf_counter()
    try:
        report = run_service_load(host, port, tenants=tenants, cap=CAP)
    finally:
        service.close()
    elapsed = time.perf_counter() - started
    assert report.all_ok, report.failures()
    return {
        "service_s": elapsed,
        "serial_s": serial_baseline(tenants),
        "cases": float(sum(o.cases for o in report.outcomes)),
    }


@pytest.mark.parametrize("tenants", TENANT_COUNTS)
def test_cohort_completion(benchmark, tenants, tmp_path):
    timings = benchmark.pedantic(
        run_cohort, args=(tenants, tmp_path), rounds=1, iterations=1
    )
    _collected[tenants] = timings


def test_write_mux_summary(artifact_dir):
    lines = [
        "Multi-tenant service cohort completion vs serial "
        f"(cap {CAP}, {len(SERVICE_LOAD_MUTS)} MuTs, 2 worker slots)",
        "",
        f"{'tenants':>8s} {'cases':>7s} {'service':>9s} {'serial':>9s}",
    ]
    for tenants in TENANT_COUNTS:
        timings = _collected.get(tenants)
        if timings is None:
            continue
        lines.append(
            f"{tenants:8d} {int(timings['cases']):7d} "
            f"{timings['service_s']:8.2f}s {timings['serial_s']:8.2f}s"
        )
    (artifact_dir / "service_mux.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
