"""Measure the overhead of self-healing supervision on a healthy run.

The same four-variant campaign runs once under the bare
:class:`ParallelCampaign` and once under :class:`SupervisedCampaign`
(watchdog armed at its default deadline), at ``BALLISTA_BENCH_CAP``
(default 200).  Both runs must produce byte-identical result-set
documents; supervision buys fault tolerance with heartbeat events and a
watchdog sweep, and this benchmark pins what that costs when nothing
goes wrong.

On a machine with >= 4 cores and a run long enough to measure (>= 2s),
the supervised run must stay within 5% of the bare parallel run; on
smaller machines or shorter runs the ratio is only reported.  Timings
land in ``benchmarks/out/supervisor.txt``.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.campaign import CampaignConfig
from repro.core.parallel import ParallelCampaign
from repro.core.results_io import results_to_dict
from repro.core.supervisor import SupervisedCampaign, SupervisorPolicy
from repro.posix.linux import LINUX
from repro.win32.variants import WIN2000, WIN98, WINNT

VARIANTS = [WIN98, WINNT, WIN2000, LINUX]
JOBS = 4
MAX_OVERHEAD = 0.05
MIN_MEASURABLE_S = 2.0


def test_supervision_overhead_and_fidelity(artifact_dir, bench_cap):
    config = CampaignConfig(cap=bench_cap)

    started = time.perf_counter()
    plain_results = ParallelCampaign(VARIANTS, config=config, jobs=JOBS).run()
    plain_s = time.perf_counter() - started

    supervised = SupervisedCampaign(
        VARIANTS,
        config=config,
        jobs=JOBS,
        policy=SupervisorPolicy(mut_deadline=300.0),
    )
    started = time.perf_counter()
    supervised_results = supervised.run()
    supervised_s = time.perf_counter() - started

    plain_doc = json.dumps(
        results_to_dict(plain_results), separators=(",", ":")
    )
    supervised_doc = json.dumps(
        results_to_dict(supervised_results), separators=(",", ":")
    )
    assert supervised_doc == plain_doc, (
        "supervised output must be byte-identical"
    )
    assert supervised.supervision_log == [], (
        "a healthy run must trigger no supervision events"
    )

    cores = os.cpu_count() or 1
    overhead = (supervised_s - plain_s) / plain_s if plain_s else 0.0
    lines = [
        f"Supervised campaign overhead, {len(VARIANTS)} variants, "
        f"cap {bench_cap}, {JOBS} workers, {cores} cores",
        "",
        f"parallel:   {plain_s:8.2f}s",
        f"supervised: {supervised_s:8.2f}s",
        f"overhead:   {100 * overhead:8.2f}%",
        f"cases:      {plain_results.total_cases():8d}",
        "output:     byte-identical, no supervision events",
    ]
    (artifact_dir / "supervisor.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
    if cores >= 4 and plain_s >= MIN_MEASURABLE_S:
        assert overhead <= MAX_OVERHEAD, (
            f"supervision overhead {100 * overhead:.2f}% exceeds "
            f"{100 * MAX_OVERHEAD:.0f}% (parallel {plain_s:.2f}s vs "
            f"supervised {supervised_s:.2f}s)"
        )
