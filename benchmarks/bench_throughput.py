"""Micro-benchmarks of the harness building blocks: machine boot,
per-case execution, case generation, and the RPC service loop."""

from repro.core.executor import Executor
from repro.core.generator import CaseGenerator, TestCase
from repro.core.mut import default_registry
from repro.core.types import default_types
from repro.sim.machine import Machine
from repro.win32.variants import WINNT


def test_machine_boot(benchmark):
    machine = benchmark(Machine, WINNT)
    assert not machine.crashed


def test_process_spawn(benchmark):
    machine = Machine(WINNT)
    process = benchmark(machine.spawn_process)
    assert process.pid >= 100


def test_single_case_execution(benchmark):
    registry = default_registry()
    generator = CaseGenerator(default_types())
    machine = Machine(WINNT)
    executor = Executor(machine, generator)
    mut = registry.get("libc", "strcpy")
    case = TestCase("strcpy", 0, ("PTR_PAGE", "STR_SHORT"))
    outcome = benchmark(executor.run_case, mut, case)
    assert outcome.code.name == "PASS_NO_ERROR"


def test_case_generation_capped(benchmark):
    registry = default_registry()
    generator = CaseGenerator(default_types(), cap=500)
    mut = registry.get("win32", "CreateFileA")

    def generate():
        return sum(1 for _ in generator.cases(mut))

    assert benchmark(generate) == 500


def test_rpc_roundtrip(benchmark):
    import threading

    from repro.service import protocol as P
    from repro.service.rpc import LoopbackTransport, RpcClient, serve_connection

    def echo(dec):
        return P.encode_hello(P.decode_hello(dec))

    a, b = LoopbackTransport.pair()
    threading.Thread(
        target=serve_connection, args=(a, {P.PROC_HELLO: echo}), daemon=True
    ).start()
    client = RpcClient(b)

    def call():
        return client.call(P.PROC_HELLO, P.encode_hello("winnt")).string()

    assert benchmark(call) == "winnt"
