"""Per-case hot-path throughput, recorded as a trajectory.

Unlike the other benches this one is *longitudinal*: every run appends a
measurement to ``benchmarks/out/throughput.json`` (machine-readable) and
re-renders ``benchmarks/out/throughput.txt`` (human-readable), so the
before/after numbers of a hot-path PR -- and of every future one -- are
actually captured instead of scrolling away in a terminal.

The first ever run pins the ``baseline`` entry; later runs append to the
``runs`` trajectory.  ``BALLISTA_BENCH_LABEL`` names an appended entry
(e.g. ``optimized``), and ``BALLISTA_PERF_GATE=1`` turns the bench into
a regression gate: the current run must clear ``3x`` the recorded
baseline's cases/second (normalised by a fixed integer-spin calibration
so a slower CI host does not masquerade as a regression).  The gate only
fires when the caps match -- a trajectory mixes caps freely, but a
speedup ratio across different workloads would be meaningless.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.executor import Executor
from repro.core.generator import CaseGenerator, TestCase
from repro.core.mut import default_registry
from repro.core.types import default_types
from repro.sim.machine import Machine
from repro.win32.variants import WINNT

PERF_GATE = os.environ.get("BALLISTA_PERF_GATE") == "1"
GATE_MIN_SPEEDUP = 3.0
RUN_LABEL = os.environ.get("BALLISTA_BENCH_LABEL", "run")
MAX_RUNS = 50
SEQUENCES = 30


def _calibrate() -> float:
    """Fixed integer-spin workload: a host-speed yardstick so gate
    comparisons across machines normalise out raw CPU speed."""
    started = time.perf_counter()
    acc = 0
    for i in range(2_000_000):
        acc = (acc + i) % 1_000_003
    assert acc >= 0
    return time.perf_counter() - started


def _micro(fn, n: int) -> float:
    """Mean microseconds per call over ``n`` calls."""
    started = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - started) / n * 1e6


def _micros() -> dict[str, float]:
    registry = default_registry()
    generator = CaseGenerator(default_types())
    machine = Machine(WINNT)
    executor = Executor(machine, generator)
    mut = registry.get("libc", "strcpy")
    case = TestCase("strcpy", 0, ("PTR_PAGE", "STR_SHORT"))
    return {
        "machine_boot_us": round(_micro(lambda: Machine(WINNT), 300), 2),
        "machine_reboot_us": round(_micro(machine.reboot, 300), 2),
        "process_spawn_us": round(_micro(machine.spawn_process, 300), 2),
        "single_case_us": round(
            _micro(lambda: executor.run_case(mut, case), 300), 2
        ),
    }


def _measure(cap: int) -> dict:
    spin = _calibrate()

    campaign = Campaign([WINNT], config=CampaignConfig(cap=cap))
    started = time.perf_counter()
    results = campaign.run()
    seconds = time.perf_counter() - started
    cases = results.total_cases()

    seq_config = CampaignConfig(cap=cap, mode="sequence", sequences=SEQUENCES)
    seq_campaign = Campaign([WINNT], config=seq_config)
    started = time.perf_counter()
    seq_results = seq_campaign.run()
    seq_seconds = time.perf_counter() - started
    seq_cases = seq_results.total_cases()

    return {
        "label": RUN_LABEL,
        "cap": cap,
        "cases": cases,
        "seconds": round(seconds, 3),
        "cases_per_sec": round(cases / seconds, 1),
        "seq_cases": seq_cases,
        "seq_seconds": round(seq_seconds, 3),
        "seq_cases_per_sec": round(seq_cases / seq_seconds, 1),
        "spin_seconds": round(spin, 4),
        "micros": _micros(),
    }


def _speedup(entry: dict, baseline: dict) -> float | None:
    """Host-normalised cases/second ratio vs the baseline (caps must
    match for the ratio to mean anything)."""
    if entry["cap"] != baseline["cap"]:
        return None
    here = entry["cases_per_sec"] * entry["spin_seconds"]
    there = baseline["cases_per_sec"] * baseline["spin_seconds"]
    return here / there if there else None


def _render(doc: dict) -> str:
    lines = [
        "Per-case hot-path throughput trajectory (serial, one core, "
        "WINNT)",
        "",
        f"{'label':<16} {'cap':>5} {'cases':>7} {'s':>8} {'cases/s':>9} "
        f"{'seq/s':>8} {'vs base':>8}",
    ]
    baseline = doc.get("baseline")
    entries = ([baseline] if baseline else []) + doc.get("runs", [])
    for entry in entries:
        ratio = (
            _speedup(entry, baseline)
            if baseline and entry is not baseline
            else None
        )
        vs = f"{ratio:7.2f}x" if ratio is not None else "       -"
        lines.append(
            f"{entry['label']:<16} {entry['cap']:>5} {entry['cases']:>7} "
            f"{entry['seconds']:>8.2f} {entry['cases_per_sec']:>9.1f} "
            f"{entry['seq_cases_per_sec']:>8.1f} {vs}"
        )
    micros = entries[-1]["micros"] if entries else {}
    if micros:
        lines.append("")
        lines.append("latest micro-timings (mean us/call):")
        for name in sorted(micros):
            lines.append(f"  {name:<20} {micros[name]:>10.2f}")
    return "\n".join(lines)


def test_per_case_throughput(artifact_dir, bench_cap):
    entry = _measure(bench_cap)

    json_path = artifact_dir / "throughput.json"
    if json_path.exists():
        doc = json.loads(json_path.read_text(encoding="utf-8"))
    else:
        doc = {"version": 1, "baseline": None, "runs": []}
    if doc.get("baseline") is None:
        entry["label"] = "baseline"
        doc["baseline"] = entry
    else:
        doc["runs"] = (doc.get("runs", []) + [entry])[-MAX_RUNS:]
    json_path.write_text(
        json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    (artifact_dir / "throughput.txt").write_text(
        _render(doc) + "\n", encoding="utf-8"
    )

    assert entry["cases"] > 0 and entry["seq_cases"] > 0
    if PERF_GATE and doc["baseline"] is not None and entry is not doc["baseline"]:
        ratio = _speedup(entry, doc["baseline"])
        assert ratio is not None, (
            f"perf gate needs matching caps: baseline cap "
            f"{doc['baseline']['cap']}, run cap {entry['cap']}"
        )
        assert ratio >= GATE_MIN_SPEEDUP, (
            f"hot-path regression: {ratio:.2f}x vs the recorded baseline "
            f"(gate: >= {GATE_MIN_SPEEDUP}x; baseline "
            f"{doc['baseline']['cases_per_sec']} cases/s, this run "
            f"{entry['cases_per_sec']} cases/s)"
        )
