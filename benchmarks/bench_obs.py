"""Measure the overhead of structured telemetry on a serial campaign.

The same campaign runs once bare and once with a
:class:`~repro.obs.recorder.JsonlRecorder` streaming every event
(per-case included) to disk, at ``BALLISTA_BENCH_CAP`` (default 200).
Both runs must produce byte-identical result-set documents -- telemetry
observes the campaign, it must never perturb it -- and the recorded run
must stay within 5% of the bare run when the bare run is long enough to
measure (>= 2s); shorter runs only report the ratio.  Timings land in
``benchmarks/out/obs.txt`` alongside the event-file size.
"""

from __future__ import annotations

import json
import time

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.results_io import results_to_dict
from repro.obs.recorder import JsonlRecorder
from repro.posix.linux import LINUX
from repro.win32.variants import WIN98, WINNT

VARIANTS = [WIN98, WINNT, LINUX]
MAX_OVERHEAD = 0.05
MIN_MEASURABLE_S = 2.0


def test_recorder_overhead_and_fidelity(artifact_dir, bench_cap, tmp_path):
    config = CampaignConfig(cap=bench_cap)

    started = time.perf_counter()
    bare_results = Campaign(VARIANTS, config=config).run()
    bare_s = time.perf_counter() - started

    events_path = tmp_path / "events.jsonl"
    recorder = JsonlRecorder(events_path)
    started = time.perf_counter()
    recorded_results = Campaign(VARIANTS, config=config).run(
        recorder=recorder
    )
    recorded_s = time.perf_counter() - started
    recorder.close()

    bare_doc = json.dumps(results_to_dict(bare_results), separators=(",", ":"))
    recorded_doc = json.dumps(
        results_to_dict(recorded_results), separators=(",", ":")
    )
    assert recorded_doc == bare_doc, (
        "telemetry must not perturb campaign results"
    )
    assert recorder.count > bare_results.total_cases(), (
        "per-case events missing from the stream"
    )

    overhead = (recorded_s - bare_s) / bare_s if bare_s else 0.0
    lines = [
        f"Telemetry recorder overhead, {len(VARIANTS)} variants, "
        f"cap {bench_cap}, serial",
        "",
        f"bare:     {bare_s:8.2f}s",
        f"recorded: {recorded_s:8.2f}s",
        f"overhead: {100 * overhead:8.2f}%",
        f"events:   {recorder.count:8d}"
        f" ({events_path.stat().st_size / 1024:.0f} KiB)",
        "output:   byte-identical",
    ]
    (artifact_dir / "obs.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
    if bare_s >= MIN_MEASURABLE_S:
        assert overhead <= MAX_OVERHEAD, (
            f"recorder overhead {100 * overhead:.2f}% exceeds "
            f"{100 * MAX_OVERHEAD:.0f}% (bare {bare_s:.2f}s vs "
            f"recorded {recorded_s:.2f}s)"
        )
