"""Benchmark the full static-analysis pass.

``repro lint`` gates every CI run and the pre-commit loop, so it must
stay interactive: the complete pass -- all five checkers over the whole
``src/repro`` tree plus the live-registry introspection -- is pinned
under :data:`BUDGET_S` seconds.  The budget is generous (a warm run is
well under a second) precisely so the pin only trips on algorithmic
regressions such as re-parsing files per checker or rebuilding the MuT
registry per rule, not on machine noise.  Timings land in
``benchmarks/out/lint.txt``.
"""

from __future__ import annotations

import time

from repro.lint import Project, all_checkers, run_lint

BUDGET_S = 5.0
ROUNDS = 3


def test_full_lint_pass_under_budget(artifact_dir):
    checkers = all_checkers()

    timings = []
    for _ in range(ROUNDS):
        project = Project()  # fresh: re-parse sources, rebuild registries
        started = time.perf_counter()
        result = run_lint(project, checkers=checkers)
        timings.append(time.perf_counter() - started)

    assert result.findings == [], "benchmark expects a clean tree"
    best = min(timings)
    worst = max(timings)
    assert worst < BUDGET_S, (
        f"full lint pass took {worst:.2f}s; budget is {BUDGET_S:.1f}s"
    )

    files = len(project.source_files())
    lines = [
        f"Full `repro lint` pass, {len(checkers)} checkers, "
        f"{files} source files, {ROUNDS} rounds",
        "",
        f"best:   {best:8.3f}s",
        f"worst:  {worst:8.3f}s",
        f"budget: {BUDGET_S:8.1f}s",
        f"findings: {len(result.findings)}",
    ]
    (artifact_dir / "lint.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
