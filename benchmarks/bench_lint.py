"""Benchmark the full static-analysis pass and its summary cache.

``repro lint`` gates every CI run and the pre-commit loop, so it must
stay interactive: the complete pass -- all nine checkers over the whole
``src/repro`` tree, the live-registry introspection, *and* the
interprocedural call-graph build -- is pinned under :data:`BUDGET_S`
seconds.  The budget is generous (a warm run is well under a second)
precisely so the pin only trips on algorithmic regressions such as
re-parsing files per checker or rebuilding the MuT registry per rule,
not on machine noise.

The second benchmark proves the content-hash summary cache
(:mod:`repro.lint.graph`) is live: a cold graph build extracts a
summary per file, a warm build loads them all from disk, and the warm
build must both (a) hit the cache for every file and (b) beat the cold
build's wall time.  Timings land in ``benchmarks/out/lint.txt``.
"""

from __future__ import annotations

import time

from repro.lint import Project, all_checkers, run_lint

BUDGET_S = 5.0
ROUNDS = 3


def test_full_lint_pass_under_budget(artifact_dir):
    checkers = all_checkers()

    timings = []
    for _ in range(ROUNDS):
        project = Project()  # fresh: re-parse sources, rebuild registries
        started = time.perf_counter()
        result = run_lint(project, checkers=checkers)
        timings.append(time.perf_counter() - started)

    assert result.findings == [], "benchmark expects a clean tree"
    best = min(timings)
    worst = max(timings)
    assert worst < BUDGET_S, (
        f"full lint pass took {worst:.2f}s; budget is {BUDGET_S:.1f}s"
    )

    files = len(project.source_files())
    lines = [
        f"Full `repro lint` pass, {len(checkers)} checkers, "
        f"{files} source files, {ROUNDS} rounds",
        "",
        f"best:   {best:8.3f}s",
        f"worst:  {worst:8.3f}s",
        f"budget: {BUDGET_S:8.1f}s",
        f"findings: {len(result.findings)}",
    ]
    (artifact_dir / "lint.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")


def test_graph_cache_warm_beats_cold(artifact_dir, tmp_path):
    cache = tmp_path / "lint-cache.json"

    cold_project = Project(cache_path=cache)
    started = time.perf_counter()
    cold_graph = cold_project.graph()
    cold_s = time.perf_counter() - started
    files = len(cold_project.source_files())
    assert cold_graph.cache_stats == {"hits": 0, "misses": files}

    warm_timings = []
    warm_graph = None
    for _ in range(ROUNDS):
        project = Project(cache_path=cache)
        started = time.perf_counter()
        warm_graph = project.graph()
        warm_timings.append(time.perf_counter() - started)
        assert warm_graph.cache_stats == {"hits": files, "misses": 0}, (
            "warm build must hit the summary cache for every file"
        )
    warm_s = min(warm_timings)
    assert warm_s < cold_s, (
        f"warm graph build ({warm_s:.3f}s) must beat the cold build "
        f"({cold_s:.3f}s); the content-hash cache is not paying for itself"
    )

    # Same graph either way: the cache changes cost, never results.
    assert len(warm_graph.functions) == len(cold_graph.functions)
    assert sum(len(v) for v in warm_graph.edges.values()) == sum(
        len(v) for v in cold_graph.edges.values()
    )

    with (artifact_dir / "lint.txt").open("a", encoding="utf-8") as fh:
        fh.write(
            "\n"
            f"Interprocedural graph build, {files} files "
            f"({len(cold_graph.functions)} functions, "
            f"{sum(len(v) for v in cold_graph.edges.values())} edges)\n"
            "\n"
            f"cold (extract all summaries): {cold_s:8.3f}s\n"
            f"warm (content-hash cache):    {warm_s:8.3f}s "
            f"(best of {ROUNDS})\n"
            f"speedup: {cold_s / warm_s:6.1f}x\n"
        )
