"""Benchmark fixtures.

The paper-scale campaign is expensive, so it runs once per benchmark
session (cap = ``BALLISTA_BENCH_CAP``, default 200; set it to 5000 for
the paper's full scale) and every per-table benchmark consumes the same
result set.  Rendered tables are also written to ``benchmarks/out/`` so
a benchmark run leaves the regenerated paper artefacts on disk.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import ALL_VARIANTS, Campaign, CampaignConfig

BENCH_CAP = int(os.environ.get("BALLISTA_BENCH_CAP", "200"))

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_cap() -> int:
    return BENCH_CAP


@pytest.fixture(scope="session")
def paper_results():
    """The full seven-variant campaign, shared by every benchmark."""
    campaign = Campaign(list(ALL_VARIANTS), config=CampaignConfig(cap=BENCH_CAP))
    return campaign.run()


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(directory: pathlib.Path, name: str, text: str) -> None:
    (directory / name).write_text(text + "\n", encoding="utf-8")
