"""Benchmark intra-variant sharding against the per-variant ceiling.

Variant-level fan-out (PR 2) can never use more workers than there are
variants -- a three-variant campaign leaves every core past the third
idle.  Intra-variant sharding breaks that ceiling: each variant's plan
is sliced into ``SHARDS`` deterministic slices and all slices run on
one work-stealing pool, so the useful worker count becomes
``variants x shards``.

Both runs must produce byte-identical result-set documents.  On a
machine with >= 8 cores the sharded run is required to beat the
per-variant-only run by at least 2x; on smaller machines the ratio is
only reported (there are no spare cores to steal onto).  Timings land
in ``benchmarks/out/shards.txt``.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.parallel import ParallelCampaign
from repro.core.campaign import CampaignConfig
from repro.core.results_io import results_to_dict
from repro.posix.linux import LINUX
from repro.win32.variants import WIN98, WINNT

VARIANTS = [WIN98, WINNT, LINUX]
SHARDS = 4


def test_shard_speedup_and_fidelity(artifact_dir, bench_cap):
    config = CampaignConfig(cap=bench_cap)
    cores = os.cpu_count() or 1

    # The ceiling: one worker per variant, idle cores beyond that.
    per_variant_jobs = min(len(VARIANTS), cores)
    started = time.perf_counter()
    per_variant_results = ParallelCampaign(
        VARIANTS, config=config, jobs=per_variant_jobs, shards=1
    ).run()
    per_variant_s = time.perf_counter() - started

    # The pool: variants x shards slices, workers sized to the box.
    sharded_jobs = min(len(VARIANTS) * SHARDS, cores)
    started = time.perf_counter()
    sharded_results = ParallelCampaign(
        VARIANTS, config=config, jobs=sharded_jobs, shards=SHARDS
    ).run()
    sharded_s = time.perf_counter() - started

    per_variant_doc = json.dumps(
        results_to_dict(per_variant_results), separators=(",", ":")
    )
    sharded_doc = json.dumps(
        results_to_dict(sharded_results), separators=(",", ":")
    )
    assert sharded_doc == per_variant_doc, (
        "sharded output must be byte-identical"
    )

    speedup = per_variant_s / sharded_s if sharded_s else float("inf")
    lines = [
        f"Intra-variant sharding, {len(VARIANTS)} variants x {SHARDS} "
        f"shards, cap {bench_cap}, {cores} cores",
        "",
        f"per-variant ({per_variant_jobs} workers): {per_variant_s:8.2f}s",
        f"sharded     ({sharded_jobs} workers): {sharded_s:8.2f}s",
        f"speedup:    {speedup:8.2f}x",
        f"cases:      {per_variant_results.total_cases():8d}",
        "output:     byte-identical",
    ]
    (artifact_dir / "shards.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
    if cores >= 8:
        assert speedup >= 2.0, (
            f"expected >= 2x over the per-variant ceiling on {cores} "
            f"cores, got {speedup:.2f}x (per-variant {per_variant_s:.2f}s "
            f"vs sharded {sharded_s:.2f}s)"
        )
