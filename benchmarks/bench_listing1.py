"""Benchmarks paper Listing 1 -- the single-test-case replay path --
across all six Windows variants."""

import pytest

from repro.core.campaign import run_single_case
from repro.core.crash_scale import CaseCode
from repro.win32.variants import WINDOWS_VARIANTS

LISTING1 = ("GetThreadContext", ["TH_CURRENT", "PTR_NULL"])

EXPECTED = {
    "win95": CaseCode.CATASTROPHIC,
    "win98": CaseCode.CATASTROPHIC,
    "win98se": CaseCode.CATASTROPHIC,
    "winnt": CaseCode.PASS_ERROR,
    "win2000": CaseCode.PASS_ERROR,
    "wince": CaseCode.CATASTROPHIC,
}


@pytest.mark.parametrize(
    "personality", WINDOWS_VARIANTS, ids=[p.key for p in WINDOWS_VARIANTS]
)
def test_listing1_single_case(benchmark, personality):
    outcome = benchmark(run_single_case, personality, *LISTING1)
    assert outcome.code is EXPECTED[personality.key]


def test_listing1_matrix(benchmark, artifact_dir):
    def matrix():
        return {
            p.key: run_single_case(p, *LISTING1).code.name
            for p in WINDOWS_VARIANTS
        }

    results = benchmark(matrix)
    lines = ["Listing 1: GetThreadContext(GetCurrentThread(), NULL)", ""]
    lines += [f"  {key:10s} {code}" for key, code in results.items()]
    (artifact_dir / "listing1.txt").write_text("\n".join(lines) + "\n")
    assert results == {k: v.name for k, v in EXPECTED.items()}
