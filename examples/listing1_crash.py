#!/usr/bin/env python3
"""Paper Listing 1: the one-line program that crashes Windows 95/98/CE.

    GetThreadContext(GetCurrentThread(), NULL);

"Listing 1 shows a representative test case that has crashed Windows 98
every time it has been run" -- this example replays that single test
case on every variant and prints the CRASH-scale outcome, then shows a
couple of sibling cases (valid context buffer; bad thread handle) to
demonstrate that the crash needs exactly this parameter combination.

Run:  python examples/listing1_crash.py
"""

from repro import ALL_VARIANTS, run_single_case


def replay(title: str, mut: str, values: list[str]) -> None:
    print(title)
    for personality in ALL_VARIANTS:
        if personality.api != "win32":
            continue
        outcome = run_single_case(personality, mut, values)
        marker = " <-- SYSTEM CRASH" if outcome.code.name == "CATASTROPHIC" else ""
        detail = f" ({outcome.detail})" if outcome.detail else ""
        print(f"  {personality.name:14s} -> {outcome.code.name}{detail}{marker}")
    print()


def main() -> None:
    replay(
        "GetThreadContext(GetCurrentThread(), NULL)   [paper Listing 1]",
        "GetThreadContext",
        ["TH_CURRENT", "PTR_NULL"],
    )
    replay(
        "GetThreadContext(GetCurrentThread(), &ctx)   [valid buffer]",
        "GetThreadContext",
        ["TH_CURRENT", "CTX_VALID"],
    )
    replay(
        "GetThreadContext(0x0BADF00D, NULL)           [bad handle first]",
        "GetThreadContext",
        ["H_GARBAGE", "PTR_NULL"],
    )


if __name__ == "__main__":
    main()
