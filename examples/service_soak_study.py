#!/usr/bin/env python3
"""Chaos soak for the multi-tenant campaign service.

The service's survival guarantee: under lossy links, dying workers,
vanishing clients, and a mid-run SIGTERM, every submitted campaign
still completes with results byte-identical to a serial in-process run.
This drill is the executable form of that guarantee (CI runs it as the
``service-soak`` job and ``cmp``-verifies the documents it writes).

Phase A (in-process): four tenants submit concurrently through
drop+dup chaos transports; one worker is SIGKILLed mid-run (sentinel
reap -> lease reassignment -> resume from the shard checkpoint); one
client disconnects mid-stream and reconnects, resuming its cursor
without duplicate rows.  Every tenant's streamed result set and the
matching serial run are written next to each other for ``cmp``.

Phase B (subprocess): a real ``python -m repro serve`` process takes a
submission, is SIGTERMed mid-run, drains gracefully (exit 0, queue
journal persisted), and a restarted serve on the same data directory
finishes the job -- the resubmission resolves idempotently to the same
job id.

Run:  python examples/service_soak_study.py [outdir]
Exit status 0 means every guarantee held.
"""

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro import ALL_VARIANTS, Campaign, CampaignConfig
from repro.core.results_io import save_results
from repro.obs.recorder import JsonlRecorder
from repro.service import CampaignService, ServiceClient
from repro.service.chaos import ChaosConfig, ChaosTransport

MUTS = ["GetThreadContext", "CloseHandle", "strcpy", "isalpha", "fclose"]
CAP = 40
TENANTS = {
    "t0": ["winnt"],
    "t1": ["win98"],
    "t2": ["linux"],
    "t3": ["wince"],
}


def serial_reference(outdir: pathlib.Path, tenant: str, keys: list) -> bytes:
    results = Campaign(
        [p for p in ALL_VARIANTS if p.key in keys],
        config=CampaignConfig(cap=CAP),
        muts=MUTS,
    ).run()
    path = outdir / f"serial-{tenant}.json"
    save_results(results, path)
    return path.read_bytes()


def wait_for_worker(service: CampaignService, timeout: float = 60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pids = service.worker_pids()
        if pids:
            return sorted(pids.items())[0]
        time.sleep(0.02)
    raise AssertionError("no worker ever spawned")


def phase_a(outdir: pathlib.Path) -> None:
    print("--- Phase A: chaos, SIGKILL, and a vanishing client ---")
    recorder = JsonlRecorder(outdir / "soak-events.jsonl")
    service = CampaignService(
        outdir / "data-a", max_workers=2, lease_s=5.0, recorder=recorder
    )
    host, port = service.listen()
    failures: list[str] = []

    def chaotic_tenant(index: int, tenant: str, keys: list) -> None:
        chaos = ChaosConfig(seed=4000 + index, drop_rate=0.05, dup_rate=0.05)
        client = ServiceClient.connect(
            host, port, wrap=lambda t: ChaosTransport(t, chaos)
        )
        try:
            job_id, _ = client.submit(
                keys, cap=CAP, muts=MUTS, tenant=tenant
            )
            if tenant == "t1":
                # This tenant plays the vanishing client: stream briefly,
                # drop the connection, reconnect, resume the cursor.
                state: dict = {}
                try:
                    client.stream(job_id, state=state, timeout=0.5)
                except Exception:
                    pass  # the expected mid-stream timeout
                client.close()
                client = ServiceClient.connect(
                    host, port, wrap=lambda t: ChaosTransport(t, chaos)
                )
                results = client.stream(job_id, state=state, timeout=300)
            else:
                results = client.stream(job_id, timeout=300)
            save_results(results, outdir / f"streamed-{tenant}.json")
        except Exception as exc:  # noqa: BLE001 - collected and reported
            failures.append(f"{tenant}: {type(exc).__name__}: {exc}")
        finally:
            client.close()

    threads = [
        threading.Thread(target=chaotic_tenant, args=(i, tenant, keys))
        for i, (tenant, keys) in enumerate(TENANTS.items())
    ]
    for thread in threads:
        thread.start()
    # The assassination: SIGKILL the first worker that appears.
    tag, pid = wait_for_worker(service)
    os.kill(pid, signal.SIGKILL)
    print(f"  SIGKILLed worker {tag} (pid {pid})")
    for thread in threads:
        thread.join(timeout=600)
    if any(thread.is_alive() for thread in threads):
        raise AssertionError("a tenant thread hung")
    if failures:
        raise AssertionError(f"tenant failures: {failures}")

    probe = ServiceClient.connect(host, port)
    stats = probe.queue_stats()
    probe.close()
    service.close()
    recorder.close()

    assert stats["jobs"].get("done") == len(TENANTS), stats
    assert stats["leases"]["reassigned"] >= 1, stats
    assert stats["leases"]["double_grants_refused"] == 0, stats
    for tenant, keys in TENANTS.items():
        streamed = (outdir / f"streamed-{tenant}.json").read_bytes()
        if streamed != serial_reference(outdir, tenant, keys):
            raise AssertionError(f"{tenant}: streamed != serial")
        print(f"  [{tenant}] byte-identical to serial run")
    print(
        f"  leases: {stats['leases']['reassigned']} reassigned, "
        f"0 double grants; all {len(TENANTS)} jobs done"
    )


def phase_b(outdir: pathlib.Path) -> None:
    print("--- Phase B: SIGTERM drain and restart ---")
    data = outdir / "data-b"
    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ, PYTHONPATH=str(src))

    def start_serve() -> tuple[subprocess.Popen, int]:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--data", str(data),
             "--port", "0", "--lease-timeout", "5"],
            stderr=subprocess.PIPE, env=env, text=True,
        )
        banner = proc.stderr.readline()
        port = int(banner.rsplit(":", 1)[1])
        return proc, port

    serve, port = start_serve()
    submit_cmd = [
        sys.executable, "-m", "repro", "submit", "--port", str(port),
        "--variants", "winnt", "--cap", str(CAP),
        "--muts", ",".join(MUTS), "--job-key", "soak-b",
        "--save", str(outdir / "streamed-b.json"), "--quiet",
    ]
    first = subprocess.Popen(
        submit_cmd, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    time.sleep(1.0)  # let the job start
    serve.send_signal(signal.SIGTERM)
    rc = serve.wait(timeout=60)
    serve.stderr.close()
    first.wait(timeout=60)  # the orphaned submit fails or finished; either way
    assert rc == 0, f"serve exited {rc} on SIGTERM"
    assert (data / "queue.json").exists(), "queue snapshot not persisted"
    print("  serve drained cleanly (exit 0), queue persisted")

    serve, port = start_serve()
    submit_cmd[5] = str(port)
    rc = subprocess.run(
        submit_cmd, env=env, stderr=subprocess.DEVNULL
    ).returncode
    assert rc == 0, f"resubmit after restart exited {rc}"
    serve.send_signal(signal.SIGTERM)
    assert serve.wait(timeout=60) == 0
    serve.stderr.close()

    streamed = (outdir / "streamed-b.json").read_bytes()
    if streamed != serial_reference(outdir, "b", ["winnt"]):
        raise AssertionError("phase B: streamed != serial")
    print("  restarted serve finished the job; byte-identical to serial run")


def main() -> int:
    if len(sys.argv) > 1:
        outdir = pathlib.Path(sys.argv[1])
        outdir.mkdir(parents=True, exist_ok=True)
        run(outdir)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            run(pathlib.Path(tmp))
    print("SOAK PASS: every campaign survived, byte-identical")
    return 0


def run(outdir: pathlib.Path) -> None:
    phase_a(outdir)
    print()
    phase_b(outdir)


if __name__ == "__main__":
    raise SystemExit(main())
