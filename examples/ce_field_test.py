#!/usr/bin/env python3
"""Windows CE field testing over the split client (paper section 3.2).

The Ballista client cannot run on the CE device itself, so testing is
split: generation/reporting on an "NT host", execution on the "CE
target" (an HP Jornada 820 in the paper), connected by a serial link.
The host starts each test process through the CE remote API and then
polls the target filesystem for the result file; a crashed target simply
stops answering, which the host records as a Catastrophic failure
before power-cycling the device.

This example tests the CE C-library stdio functions -- the group where
the paper found seventeen functions that crash the device through one
bad ``FILE*`` -- and reports the virtual wall-clock cost of the serial
protocol ("five to ten seconds per test case").

Run:  python examples/ce_field_test.py [cap]
"""

import sys

from repro import WINCE, Machine, default_registry
from repro.service import CEHostClient, CETargetAgent, SerialLink

STDIO_GROUPS = {"C file I/O management", "C stream I/O"}


def main() -> None:
    cap = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    registry = default_registry()
    plan = [
        m
        for m in registry.for_variant(WINCE)
        if m.group in STDIO_GROUPS and m.api == "libc"
    ]
    print(
        f"Split-client run: {len(plan)} CE stdio functions, "
        f"cap={cap} cases each"
    )
    print("host <= 115.2kbps serial => HP Jornada 820 (simulated)")
    print("-" * 64)

    link = SerialLink()
    device = Machine(WINCE)
    agent = CETargetAgent(device, link, registry=registry, cap=cap)
    host = CEHostClient(WINCE, link, agent, registry=registry, cap=cap)
    results = host.run(plan)

    crashed = results.catastrophic_muts("wince")
    for row in results.for_variant("wince"):
        status = "CATASTROPHIC (device down, rebooted)" if row.catastrophic else "ok"
        print(f"  {row.mut_name:12s} {len(row.codes):4d} cases   {status}")

    total_cases = results.total_cases()
    seconds_per_case = host.elapsed_ms / max(total_cases, 1) / 1000
    print("-" * 64)
    print(
        f"{total_cases} test cases, {len(crashed)} crashing functions, "
        f"{device.reboot_count} device reboots"
    )
    print(
        f"virtual host time: {host.elapsed_ms / 1000:.0f}s "
        f"(~{seconds_per_case:.1f}s per case -- the paper reports 'five to "
        "ten seconds per test case')"
    )
    print(f"serial transfer time alone: {link.transfer_ms / 1000:.1f}s")


if __name__ == "__main__":
    main()
