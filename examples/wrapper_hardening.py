#!/usr/bin/env python3
"""Hardening Windows CE with software wrappers (paper section 5).

"Developers who wish to use Windows CE in their systems would have to
generate software wrappers for each of the seventeen functions they use
to protect against a system crash because they only have access to the
interface, not the underlying implementation."

This example builds exactly those wrappers: a validating shim in front
of every CE C function that takes a ``FILE*``, which probes the pointer
against the C runtime's stream table before letting the call through.
It then runs the stdio MuTs on the CE target twice -- bare and wrapped
-- and shows the Catastrophic failures disappear while valid calls keep
working.

Run:  python examples/wrapper_hardening.py [cap]
"""

import sys

from repro import Campaign, CampaignConfig, MuTRegistry, WINCE, default_registry
from repro.core.mut import MuT

STDIO_GROUPS = {"C file I/O management", "C stream I/O"}


def wrap_file_pointer_call(mut: MuT) -> MuT:
    """A wrapper MuT that validates arguments before dispatch.

    The wrapper has interface access only.  Two checks suffice to keep
    the device up:

    * FILE* arguments must be live registered streams (the moral
      equivalent of the wrapper maintaining its own table of streams it
      opened) -- this stops the paper's "string buffer typecast to a
      file pointer" crashes;
    * buffer arguments must be probed for the full transfer length
      (IsBadWritePtr-style), because fread/fgets-class functions also
      stream data through caller buffers and on CE a fault there is a
      write into system state.
    """
    original = mut.call
    fileptr_positions = [
        i for i, t in enumerate(mut.param_types) if t == "fileptr"
    ]
    buffer_positions = [
        i for i, t in enumerate(mut.param_types) if t == "buffer"
    ]
    size_positions = [
        i for i, t in enumerate(mut.param_types) if t in ("size", "int_val")
    ]

    def wrapped(ctx, args):
        crt = ctx.crt
        for position in fileptr_positions:
            fp = args[position]
            state = crt._streams.get(fp & 0xFFFF_FFFF)
            if state is None or state.closed:
                crt._set_errno(9)  # EBADF -- graceful refusal
                return -1
        if buffer_positions:
            length = 1
            for position in size_positions:
                length = max(1, length) * max(1, args[position] & 0xFFFF_FFFF)
            length = min(length, 1 << 20)
            for position in buffer_positions:
                if not ctx.mem.is_mapped(args[position] & 0xFFFF_FFFF, length):
                    crt._set_errno(14)  # EFAULT -- graceful refusal
                    return -1
        return original(ctx, args)

    return MuT(
        mut.name,
        mut.api,
        mut.group,
        mut.param_types,
        wrapped,
        platforms=mut.platforms,
        exclude_platforms=mut.exclude_platforms,
        charset=mut.charset,
    )


def build_registries() -> tuple[MuTRegistry, MuTRegistry]:
    """(bare, wrapped) registries for the CE stdio functions."""
    source = default_registry()
    bare = MuTRegistry()
    wrapped = MuTRegistry()
    for mut in source.for_variant(WINCE):
        if mut.api != "libc" or mut.group not in STDIO_GROUPS:
            continue
        bare.register(mut)
        if "fileptr" in mut.param_types or "buffer" in mut.param_types:
            wrapped.register(wrap_file_pointer_call(mut))
        else:
            wrapped.register(mut)
    return bare, wrapped


def crash_report(results) -> tuple[int, int]:
    rows = results.for_variant("wince")
    crashed = sum(1 for r in rows if r.catastrophic)
    return crashed, len(rows)


def main() -> None:
    cap = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    bare, wrapped = build_registries()
    config = CampaignConfig(cap=cap)

    print(f"Windows CE stdio functions, cap={cap} cases per function")
    print("=" * 62)

    bare_results = Campaign([WINCE], registry=bare, config=config).run()
    crashed, total = crash_report(bare_results)
    print(f"bare API:    {crashed:2d} of {total} functions crash the device")
    for row in bare_results.catastrophic_muts("wince"):
        star = "*" if row.interference_crash else " "
        print(f"   {star} {row.mut_name}")

    wrapped_results = Campaign([WINCE], registry=wrapped, config=config).run()
    crashed_wrapped, _ = crash_report(wrapped_results)
    print(f"wrapped API: {crashed_wrapped:2d} of {total} functions crash the device")

    # The wrapper must not break legitimate use: valid-stream cases that
    # passed before must still pass.
    regressions = 0
    for row in wrapped_results.for_variant("wince"):
        bare_row = bare_results.get("wince", row.mut_name, api="libc")
        comparable = min(len(row.codes), len(bare_row.codes))
        for index in range(comparable):
            if bare_row.codes[index] == 0 and row.codes[index] not in (0, 1):
                regressions += 1
    print(f"regressions on previously-passing cases: {regressions}")
    print()
    if crashed_wrapped == 0 and regressions == 0:
        print(
            "Wrappers eliminated every Catastrophic failure without\n"
            "breaking legitimate callers -- interface-level hardening works."
        )
    else:
        print("Wrapper incomplete; see the lists above.")


if __name__ == "__main__":
    main()
