#!/usr/bin/env python3
"""Verifying an OS patch with regression diffing.

Suppose Microsoft ships a hypothetical "Windows 98 Second Edition SP2"
that adds kernel pointer probing to the five crash-prone system calls
and fixes the C runtime's shared-arena misdirection.  Before rolling it
onto a mission-critical fleet, QA reruns the identical Ballista campaign
on both builds and diffs the results:

* every Catastrophic failure must be FIXED;
* no new crashes, and no Abort-rate regressions;
* behaviour on valid inputs must be unchanged.

Because the case generator is deterministic, the two campaigns are
comparable case-by-case -- the diff below is exact, not statistical.

Run:  python examples/patch_verification.py [cap]
"""

import dataclasses
import sys

from repro import Campaign, CampaignConfig, WIN98SE
from repro.analysis.compare import compare_results

#: The patch: the Table 3 functions get probed kernel access, and the
#: corrupting paths are fixed outright.
WIN98SE_SP2 = dataclasses.replace(
    WIN98SE,
    name="Windows 98 SE SP2 (hypothetical)",
    raw_kernel_access=frozenset(),
    corrupting_access=frozenset(),
)


def main() -> None:
    cap = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    config = CampaignConfig(cap=cap)

    print(f"Baseline campaign: {WIN98SE.name} (cap={cap})")
    baseline = Campaign([WIN98SE], config=config).run()
    crashes = [r.mut_name for r in baseline.catastrophic_muts("win98se")]
    print(f"  catastrophic failures: {', '.join(sorted(crashes))}")

    print(f"Candidate campaign: {WIN98SE_SP2.name}")
    candidate = Campaign([WIN98SE_SP2], config=config).run()
    print(
        "  catastrophic failures: "
        f"{len(candidate.catastrophic_muts('win98se'))}"
    )

    print()
    report = compare_results(baseline, candidate)
    print(report.render())

    print()
    fixed = {d.mut_name for d in report.fixed_crashes()}
    introduced = report.introduced_crashes()
    louder = [d for d in report.changed() if d.abort_delta > 1e-9]
    if fixed >= set(crashes) and not introduced:
        print("VERDICT: ship it -- every crash fixed, none introduced.")
    else:
        missing = set(crashes) - fixed
        print(
            f"VERDICT: hold the release -- unfixed: {sorted(missing)}; "
            f"introduced: {[d.mut_name for d in introduced]}"
        )
    if louder:
        print()
        print(
            "Reviewer notes on the abort-rate increases "
            f"({len(louder)} MuTs):"
        )
        print(
            "  * the patched kernel converts misdirected shared-arena\n"
            "    writes into ordinary user-mode faults -- Silent failures\n"
            "    become (recoverable) Aborts, which is the point of the\n"
            "    fix (see strncpy);\n"
            "  * the baseline rebooted after every crash, wiping leaked\n"
            "    files; the patched build runs uninterrupted, so later\n"
            "    file-enumeration MuTs see a dirtier filesystem -- state\n"
            "    drift, not a code regression (see FindFirstFileA).\n"
            "  The per-case diff (MuTDiff.changed_cases) pinpoints both."
        )


if __name__ == "__main__":
    main()
