#!/usr/bin/env python3
"""Robustness under heavy load (paper section 5 future work).

"...nor did we test the systems under heavy loading conditions.  While
these are clearly potential sources of robustness problems, we elected
to limit testing to comparable situations..."  This example runs the
comparison the authors deferred: the same deterministic test cases on an
idle machine and on one under load (disk nearly full, shared system
arena carrying long-uptime residue), for a mix of file-creating and
arena-corrupting functions.

Expected findings (all mechanistic):

* file-creating calls hit the ``ERROR_DISK_FULL`` error paths under
  load -- robust implementations report it, so error-return rates rise;
* on the 9x family, the ``*`` interference crashes arrive **much
  earlier** under load, because the background residue has already
  consumed most of the machine's corruption tolerance;
* Windows NT absorbs the same load without a single crash.

Run:  python examples/heavy_load_study.py [cap]
"""

import sys

from repro import WIN98, WINNT
from repro.triage import run_load_comparison

TARGETS = [
    "fopen",
    "CreateFileA",
    "GetTempFileNameA",
    "strncpy",
    "fwrite",
    "DuplicateHandle",
    "GetThreadContext",
]


def main() -> None:
    cap = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    for personality in (WIN98, WINNT):
        report = run_load_comparison(personality, TARGETS, cap=cap)
        print(report.render())
        accelerated = report.accelerated_crashes()
        new = report.new_crashes()
        print()
        if accelerated or new:
            print(
                f"  under load, {len(accelerated)} crash(es) arrived earlier "
                f"and {len(new)} appeared that the idle run never hit."
            )
        else:
            print("  no crashes under load -- the kernel held.")
        print()


if __name__ == "__main__":
    main()
