#!/usr/bin/env python3
"""The Ballista testing service over real TCP sockets, both ways round.

Act 1 reproduces the paper's architecture: a central test server (the
CMU side) hands deterministic test plans to portable clients over an
ONC-RPC-style protocol; each client runs one OS variant and streams
results back.  Three clients (Windows 98, Windows NT, Linux) run
concurrently against one server on localhost, and the server-side
result set feeds the same report generators a local campaign would.

Act 2 inverts the topology with the multi-tenant campaign service: thin
clients submit campaign *specs* and the service itself runs the
workers, journals every job in a durable queue, leases shards with
heartbeat expiry, and streams plan-ordered result rows back.  Two
tenants share one service; each streamed result set is verified
byte-identical to the same campaign run serially in-process.

Run:  python examples/distributed_service.py [cap]
"""

import sys
import tempfile
import threading

from repro import ALL_VARIANTS, LINUX, WIN98, WINNT, Campaign, CampaignConfig
from repro.analysis import render_table1
from repro.core.results_io import results_to_dict
from repro.service import BallistaClient, BallistaServer, CampaignService, ServiceClient


def run_client(personality, host: str, port: int) -> None:
    client = BallistaClient.connect(personality, host, port)
    try:
        tested = client.run()
        print(f"  [{personality.key}] client done: {tested} MuTs tested")
    finally:
        client.close()


def act1_plan_pull(cap: int) -> None:
    """The paper's topology: the client executes, the server collects."""
    variants = [WIN98, WINNT, LINUX]
    server = BallistaServer(variants, cap=cap)
    host, port = server.listen()
    print(f"Ballista server listening on {host}:{port} (cap={cap})")

    threads = [
        threading.Thread(target=run_client, args=(p, host, port))
        for p in variants
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    server.join({p.key for p in variants})
    server.shutdown()

    print()
    print(render_table1(server.results))
    print()
    crashes = {
        p.key: [r.mut_name for r in server.results.catastrophic_muts(p.key)]
        for p in variants
    }
    for key, names in crashes.items():
        print(f"{key:8s} catastrophic: {', '.join(sorted(names)) or '(none)'}")


MUTS = ["GetThreadContext", "CloseHandle", "strcpy", "isalpha", "fclose"]


def act2_campaign_service(cap: int) -> None:
    """The inverted topology: the service executes, tenants stream."""
    with tempfile.TemporaryDirectory() as data_dir:
        service = CampaignService(data_dir, max_workers=2, lease_s=10.0)
        host, port = service.listen()
        print(f"campaign service listening on {host}:{port} (cap={cap})")
        try:
            for tenant, keys in (("alice", ["winnt"]), ("bob", ["win98"])):
                client = ServiceClient.connect(host, port)
                try:
                    job_id, created = client.submit(
                        keys, cap=cap, muts=MUTS, tenant=tenant
                    )
                    verb = "submitted" if created else "resumed"
                    print(f"  [{tenant}] {verb} {job_id} ({','.join(keys)})")
                    streamed = client.stream(job_id, timeout=300)
                finally:
                    client.close()
                serial = Campaign(
                    [p for p in ALL_VARIANTS if p.key in keys],
                    config=CampaignConfig(cap=cap),
                    muts=MUTS,
                ).run()
                identical = results_to_dict(streamed) == results_to_dict(serial)
                print(
                    f"  [{tenant}] {streamed.total_cases()} cases streamed; "
                    f"identical to serial run: {identical}"
                )
        finally:
            service.close()


def main() -> None:
    cap = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    print("=== Act 1: plan-pull (the paper's topology) ===")
    act1_plan_pull(cap)
    print()
    print("=== Act 2: multi-tenant campaign service ===")
    act2_campaign_service(cap)


if __name__ == "__main__":
    main()
