#!/usr/bin/env python3
"""The Ballista testing service over real TCP sockets.

Reproduces the paper's architecture: a central test server (the CMU
side) hands deterministic test plans to portable clients over an
ONC-RPC-style protocol; each client runs one OS variant and streams
results back.  Here three clients (Windows 98, Windows NT, Linux) run
concurrently against one server on localhost, and the server-side
result set feeds the same report generators a local campaign would.

Run:  python examples/distributed_service.py [cap]
"""

import sys
import threading

from repro import LINUX, WIN98, WINNT
from repro.analysis import render_table1
from repro.service import BallistaClient, BallistaServer


def run_client(personality, host: str, port: int) -> None:
    client = BallistaClient.connect(personality, host, port)
    try:
        tested = client.run()
        print(f"  [{personality.key}] client done: {tested} MuTs tested")
    finally:
        client.close()


def main() -> None:
    cap = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    variants = [WIN98, WINNT, LINUX]
    server = BallistaServer(variants, cap=cap)
    host, port = server.listen()
    print(f"Ballista server listening on {host}:{port} (cap={cap})")

    threads = [
        threading.Thread(target=run_client, args=(p, host, port))
        for p in variants
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    server.join({p.key for p in variants})
    server.shutdown()

    print()
    print(render_table1(server.results))
    print()
    crashes = {
        p.key: [r.mut_name for r in server.results.catastrophic_muts(p.key)]
        for p in variants
    }
    for key, names in crashes.items():
        print(f"{key:8s} catastrophic: {', '.join(sorted(names)) or '(none)'}")


if __name__ == "__main__":
    main()
