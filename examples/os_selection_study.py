#!/usr/bin/env python3
"""OS selection study for a mission-critical deployment.

The paper's motivation: "the United States Navy has adopted Windows NT
as the official OS to be incorporated into onboard computer systems" --
should it have?  This example runs the full seven-variant comparison and
prints the dependability evidence a systems engineer would want:

* the group-level failure-rate comparison (Figure 1),
* which functions can crash each OS outright (Table 3),
* estimated Silent failure rates (Figure 2),
* a summary verdict per OS.

Run:  python examples/os_selection_study.py [cap]
"""

import sys

from repro import ALL_VARIANTS, Campaign, CampaignConfig
from repro.analysis import render_figure1, render_figure2, render_table3
from repro.analysis.rates import summarize

DISPLAY = {
    "linux": "Linux",
    "win95": "Windows 95",
    "win98": "Windows 98",
    "win98se": "Windows 98 SE",
    "winnt": "Windows NT",
    "win2000": "Windows 2000",
    "wince": "Windows CE",
}


def verdict(results, variant: str) -> str:
    summary = summarize(results, variant)
    crashes = summary.muts_catastrophic
    if crashes:
        return (
            f"UNSUITABLE for unattended operation: {crashes} API functions "
            "can take the whole system down from an unprivileged task."
        )
    if summary.syscall_abort_rate < 0.05:
        return (
            "Strong candidate: no system crashes observed and system calls "
            "report exceptional inputs gracefully."
        )
    return (
        "Usable with task-restart supervision: no system crashes, but "
        f"{summary.syscall_abort_rate:.0%} of exceptional system-call "
        "inputs abort the calling task."
    )


def main() -> None:
    cap = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    print(f"Comparative robustness study across 7 OS variants (cap={cap})")
    print("=" * 70)
    results = Campaign(
        list(ALL_VARIANTS), config=CampaignConfig(cap=cap)
    ).run()

    print()
    print(render_figure1(results))
    print(render_table3(results))
    print(render_figure2(results))
    print()
    print("Engineering verdicts")
    print("-" * 70)
    for variant in ("linux", "winnt", "win2000", "win98", "win98se", "win95", "wince"):
        print(f"{DISPLAY[variant]:14s} {verdict(results, variant)}")
    print()
    print(
        "Note the paper's own caveat: 'While the choice of operating\n"
        "systems cannot be made solely on the basis of one set of tests,\n"
        "it is hoped that such results will form a starting point for\n"
        "comparing dependability across heterogeneous platforms.'"
    )


if __name__ == "__main__":
    main()
