#!/usr/bin/env python3
"""Quickstart: run a small Ballista campaign and print Table 1.

Tests two OS variants (Windows 98 and Windows NT) against the full MuT
registry at a small per-MuT cap, then prints the paper-style summary
table.  Expect Windows 98 to show Catastrophic failures (including the
famous ``GetThreadContext``) and Windows NT to show none.

Run:  python examples/quickstart.py [cap]
"""

import sys

from repro import Campaign, CampaignConfig, WIN98, WINNT
from repro.analysis import render_table1, render_table3


def main() -> None:
    cap = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    print(f"Running Ballista campaign (cap={cap} test cases per MuT)...")
    campaign = Campaign([WIN98, WINNT], config=CampaignConfig(cap=cap))
    results = campaign.run()

    print()
    print(render_table1(results))
    print()
    print(render_table3(results))
    print()
    total = results.total_cases()
    crashes = len(results.catastrophic_muts("win98"))
    print(
        f"Executed {total} test cases; Windows 98 crashed on {crashes} "
        f"functions, Windows NT on "
        f"{len(results.catastrophic_muts('winnt'))}."
    )


if __name__ == "__main__":
    main()
