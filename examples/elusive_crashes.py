#!/usr/bin/env python3
"""Reproducing the 'elusive' crashes outside the test harness.

"For several of the functions with Catastrophic failures we could not
isolate the system crash to a single test case.  We could repeatedly
crash the system by running the entire test harness for these functions,
but could not reproduce it when running the test cases independently."
(paper, section 4)  The authors listed finding such reproductions as
future work (section 5).  This example automates it:

1. replay shows the ``*`` crash needs the harness (a single test case
   does not reproduce it);
2. the campaign prefix that does crash is captured;
3. delta debugging (ddmin) shrinks it to a 1-minimal call sequence;
4. the sequence is rendered as a standalone repro program -- the
   artefact you could hand to Microsoft with the bug report.

Run:  python examples/elusive_crashes.py [function] [variant]
      (defaults: strncpy on Windows 98)
"""

import sys

from repro import WINDOWS_VARIANTS, run_single_case
from repro.triage import (
    capture_crash_prefix,
    minimize_crash_sequence,
    render_repro_program,
    replay_sequence,
)


def main() -> None:
    target = sys.argv[1] if len(sys.argv) > 1 else "strncpy"
    variant_key = sys.argv[2] if len(sys.argv) > 2 else "win98"
    personalities = {p.key: p for p in WINDOWS_VARIANTS}
    if variant_key not in personalities:
        raise SystemExit(
            f"unknown variant {variant_key!r}; choose from {sorted(personalities)}"
        )
    personality = personalities[variant_key]

    print(f"Target: {target} on {personality.name}")
    print("=" * 60)

    print("\n[1] Capture the crashing campaign prefix...")
    try:
        prefix = capture_crash_prefix(personality, target, cap=500)
    except KeyError:
        raise SystemExit(
            f"unknown function {target!r} -- pass a MuT name like "
            "'strncpy', 'fwrite', or 'DuplicateHandle'"
        )
    if prefix is None:
        print(f"    {target} does not crash {personality.name} within 500 cases.")
        return
    print(f"    campaign crashes at case #{len(prefix)} of the sequence")

    print("\n[2] The paper's observation: the final case alone is harmless...")
    final = prefix[-1]
    outcome = run_single_case(personality, final.mut_name, list(final.value_names))
    print(f"    {final.describe()}")
    print(f"    run as a single test program -> {outcome.code.name}")

    print("\n[3] Delta-debug the prefix down to a 1-minimal sequence...")
    replays = [0]

    def progress(count, size):
        replays[0] = count

    minimal = minimize_crash_sequence(personality, prefix, progress=progress)
    print(
        f"    {len(prefix)} cases -> {len(minimal)} cases "
        f"({replays[0]} deterministic replays)"
    )
    check = replay_sequence(personality, minimal)
    assert check.crashed, "minimal sequence must still crash"
    print(f"    verified: replaying the minimal sequence crashes at step "
          f"{check.crash_step}")

    print("\n[4] Standalone reproduction program:")
    print()
    print(render_repro_program(personality, minimal))


if __name__ == "__main__":
    main()
